"""Call-graph construction and traversal order for matrix aggregation.

The aggregation pass (Section IV of the paper) inlines callee call-transition
summaries into callers, so callees must be summarized first.  This module
derives the call graph from the CFGs, condenses strongly connected components
(recursion), and yields a bottom-up processing order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import ProgramStructureError
from .calls import CallKind
from .program import Program


@dataclass
class CallGraph:
    """Internal-call relationships of a program.

    Attributes:
        graph: directed graph; node = function name, edge caller -> callee.
        recursive_edges: call edges that participate in a cycle (an SCC of
            size > 1, or a self-call).  The aggregation pass treats these
            call sites as call-free pass-throughs, mirroring the paper's
            stance that recursion is learned dynamically from traces.
    """

    graph: nx.DiGraph
    recursive_edges: frozenset[tuple[str, str]] = field(default_factory=frozenset)

    def callees(self, function: str) -> list[str]:
        return sorted(self.graph.successors(function))

    def callers(self, function: str) -> list[str]:
        return sorted(self.graph.predecessors(function))

    def bottom_up_order(self) -> list[str]:
        """Functions ordered so every (non-recursive) callee precedes callers."""
        acyclic = nx.DiGraph(self.graph)
        acyclic.remove_edges_from(self.recursive_edges)
        order = list(nx.topological_sort(acyclic))
        order.reverse()
        return order

    def is_recursive_edge(self, caller: str, callee: str) -> bool:
        return (caller, callee) in self.recursive_edges


def build_call_graph(program: Program) -> CallGraph:
    """Derive the :class:`CallGraph` of ``program`` from its CFGs.

    Raises:
        ProgramStructureError: when an internal call site names a function
            that is not defined in the program.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(program.functions)
    for function in program.functions.values():
        for block in function.call_blocks():
            site = block.call
            assert site is not None
            if site.kind is not CallKind.INTERNAL:
                continue
            if site.is_indirect:
                # Function-pointer dispatch: no static call edge — the
                # paper's analysis leaves pointer targets to trace learning.
                continue
            if site.name not in program.functions:
                raise ProgramStructureError(
                    f"{function.name}: call to undefined function {site.name!r}"
                )
            graph.add_edge(function.name, site.name)

    recursive: set[tuple[str, str]] = set()
    for scc in nx.strongly_connected_components(graph):
        if len(scc) > 1:
            for src, dst in graph.edges():
                if src in scc and dst in scc:
                    recursive.add((src, dst))
    for node in graph.nodes():
        if graph.has_edge(node, node):
            recursive.add((node, node))
    return CallGraph(graph=graph, recursive_edges=frozenset(recursive))
