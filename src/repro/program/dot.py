"""Graphviz DOT export for CFGs and call graphs.

Inspection tooling: render a function's control-flow graph or a program's
call graph as DOT text for debugging analyses or documenting case studies.
Pure text generation — no graphviz dependency.
"""

from __future__ import annotations

from ..program.callgraph import CallGraph, build_call_graph
from ..program.calls import CallKind
from ..program.cfg import FunctionCFG
from ..program.program import Program

_KIND_COLORS = {
    CallKind.SYSCALL: "#c62828",
    CallKind.LIBCALL: "#1565c0",
    CallKind.INTERNAL: "#2e7d32",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def cfg_to_dot(cfg: FunctionCFG) -> str:
    """Render one function CFG as DOT.

    Call blocks are colored by call kind (syscalls red, libcalls blue,
    internal calls green); back edges are dashed.
    """
    lines = [f'digraph "{_escape(cfg.name)}" {{', "  node [shape=box];"]
    back = cfg.back_edges()
    for block_id, block in sorted(cfg.blocks.items()):
        if block.call is None:
            label = f"b{block_id}"
            attrs = ""
        else:
            site = block.call
            if site.is_indirect:
                label = f"b{block_id}: (*ptr)({', '.join(site.targets)})"
            else:
                label = f"b{block_id}: {site.name}"
            color = _KIND_COLORS[site.kind]
            attrs = f', color="{color}", fontcolor="{color}"'
        shape = ', peripheries=2' if block_id == cfg.entry else ""
        lines.append(f'  n{block_id} [label="{_escape(label)}"{attrs}{shape}];')
    for src, dst in cfg.edges():
        style = ' [style=dashed, label="back"]' if (src, dst) in back else ""
        lines.append(f"  n{src} -> n{dst}{style};")
    lines.append("}")
    return "\n".join(lines)


def call_graph_to_dot(program: Program, call_graph: CallGraph | None = None) -> str:
    """Render a program's call graph as DOT.

    Recursive edges are dashed; the entry function is double-bordered;
    wrapper functions (name prefix ``sys_``) are grouped visually by color.
    """
    if call_graph is None:
        call_graph = build_call_graph(program)
    lines = [f'digraph "{_escape(program.name)}" {{', "  node [shape=ellipse];"]
    for name in sorted(program.functions):
        attrs = []
        if name == program.entry_function:
            attrs.append("peripheries=2")
        if name.startswith("sys_"):
            attrs.append('color="#c62828"')
        rendered = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{_escape(name)}"{rendered};')
    for src, dst in sorted(call_graph.graph.edges()):
        style = (
            " [style=dashed]" if call_graph.is_recursive_edge(src, dst) else ""
        )
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}"{style};')
    lines.append("}")
    return "\n".join(lines)
