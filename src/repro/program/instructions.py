"""A toy instruction set with a byte-level encoding.

The ROP-gadget experiment (Table III of the paper) scans a binary for
``[SYSCALL ... RET]`` gadget sequences, including gadgets that only exist at
*unintended* instruction offsets.  To reproduce that mechanism without real
x86 binaries, this module defines a minimal fixed-format ISA:

* single-byte opcodes, zero or one operand byte;
* a ``SYSCALL`` instruction and a ``RET`` instruction, so gadget scanning is
  meaningful;
* plenty of opcode space left *unassigned*, so a scan started mid-operand
  usually desynchronizes and aborts — exactly how unintended x86 gadgets
  behave.
"""

from __future__ import annotations

from dataclasses import dataclass

#: opcode byte -> (mnemonic, operand byte count)
OPCODES: dict[int, tuple[str, int]] = {
    0x90: ("nop", 0),
    0x05: ("syscall", 0),
    0xC3: ("ret", 0),
    0xE8: ("call", 2),
    0xB8: ("mov_imm", 1),
    0x01: ("add", 1),
    0x29: ("sub", 1),
    0x39: ("cmp", 1),
    0x74: ("je", 1),
    0xEB: ("jmp", 1),
    0x50: ("push", 0),
    0x58: ("pop", 0),
    0x8B: ("load", 1),
    0x89: ("store", 1),
    0x31: ("xor", 1),
}

SYSCALL_OPCODE = 0x05
RET_OPCODE = 0xC3
CALL_OPCODE = 0xE8

#: opcodes that can serve as generic filler instructions
FILLER_OPCODES: tuple[int, ...] = (0x90, 0xB8, 0x01, 0x29, 0x39, 0x50, 0x58, 0x8B, 0x89, 0x31)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        offset: byte offset in the image where the instruction starts.
        opcode: opcode byte.
        mnemonic: symbolic name.
        operands: operand bytes (possibly empty).
    """

    offset: int
    opcode: int
    mnemonic: str
    operands: bytes

    @property
    def size(self) -> int:
        return 1 + len(self.operands)

    @property
    def is_ret(self) -> bool:
        return self.opcode == RET_OPCODE

    @property
    def is_syscall(self) -> bool:
        return self.opcode == SYSCALL_OPCODE

    def __str__(self) -> str:  # pragma: no cover - debug helper
        ops = " " + self.operands.hex() if self.operands else ""
        return f"{self.offset:#06x}: {self.mnemonic}{ops}"


def decode_one(image: bytes, offset: int) -> Instruction | None:
    """Decode a single instruction at ``offset``.

    Returns ``None`` when the byte is not a valid opcode or its operands run
    past the end of the image — the scan desynchronized.
    """
    if offset >= len(image):
        return None
    opcode = image[offset]
    entry = OPCODES.get(opcode)
    if entry is None:
        return None
    mnemonic, operand_count = entry
    end = offset + 1 + operand_count
    if end > len(image):
        return None
    return Instruction(
        offset=offset,
        opcode=opcode,
        mnemonic=mnemonic,
        operands=bytes(image[offset + 1 : end]),
    )


def decode_window(image: bytes, offset: int, max_instructions: int) -> list[Instruction]:
    """Decode up to ``max_instructions`` consecutive instructions.

    Stops early at an undecodable byte or at a ``RET`` (a gadget never
    extends past its terminating return).
    """
    out: list[Instruction] = []
    cursor = offset
    for _ in range(max_instructions):
        ins = decode_one(image, cursor)
        if ins is None:
            break
        out.append(ins)
        cursor += ins.size
        if ins.is_ret:
            break
    return out
