"""Control-flow graph representation (Definition 1 of the paper).

A :class:`FunctionCFG` is a directed graph whose nodes are basic blocks and
whose edges are control transfers.  A basic block may contain at most one
call site (system call, library call, or internal call) — the paper's static
analysis only cares about call-bearing nodes, so richer blocks are split by
the builder before they reach the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ProgramStructureError
from .calls import CallKind, classify_call


#: Pseudo-name of indirect (function-pointer) call sites.
INDIRECT_CALL = "*indirect*"


@dataclass(frozen=True)
class CallSite:
    """A call made by a basic block.

    Attributes:
        name: called symbol (syscall name, libcall name, or internal
            function name), or :data:`INDIRECT_CALL` for a function-pointer
            dispatch.
        kind: classification of the called symbol.
        targets: candidate callees of an indirect site.  Static analysis
            deliberately ignores them — the paper's stance is that function
            pointers "will be learned from program traces" — but the
            executor dispatches through them and validation checks they
            exist.
    """

    name: str
    kind: CallKind
    targets: tuple[str, ...] = ()

    @classmethod
    def of(cls, name: str) -> "CallSite":
        """Build a call site, classifying ``name`` against the call tables."""
        return cls(name=name, kind=classify_call(name))

    @classmethod
    def indirect(cls, targets: Iterable[str]) -> "CallSite":
        """Build an indirect call site dispatching over ``targets``."""
        target_tuple = tuple(targets)
        if not target_tuple:
            raise ProgramStructureError("indirect call needs at least one target")
        return cls(name=INDIRECT_CALL, kind=CallKind.INTERNAL, targets=target_tuple)

    @property
    def observable(self) -> bool:
        """True when the call is a syscall or libcall (emits a trace event)."""
        return self.kind is not CallKind.INTERNAL

    @property
    def is_indirect(self) -> bool:
        return self.name == INDIRECT_CALL


@dataclass
class BasicBlock:
    """A CFG node: a run of straight-line instructions with ≤ 1 call site.

    Attributes:
        block_id: identifier unique within the enclosing function.
        call: the call site made by the block, or ``None`` for plain blocks.
        weight: relative size of the block in toy-ISA instructions; used by
            the binary layout pass when emitting the address-space image.
    """

    block_id: int
    call: CallSite | None = None
    weight: int = 4

    @property
    def is_call(self) -> bool:
        return self.call is not None


class FunctionCFG:
    """The control-flow graph of one function.

    The graph has a single entry block.  Exit blocks (no successors) model
    function returns.  Self-loops and arbitrary cycles are allowed: the
    static-analysis passes remove back edges (Section IV of the paper: loop
    behaviour is learned from traces), while the trace executor walks the
    cyclic graph directly.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: dict[int, BasicBlock] = {}
        self._succs: dict[int, list[int]] = {}
        self._preds: dict[int, list[int]] = {}
        self._entry: int | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(
        self,
        call: str | None = None,
        weight: int = 4,
        site: CallSite | None = None,
    ) -> int:
        """Add a block; the first block added becomes the entry.

        Args:
            call: symbol called by the block, or ``None``.
            weight: toy-instruction count for binary layout.
            site: pre-built call site (e.g. :meth:`CallSite.indirect`);
                mutually exclusive with ``call``.

        Returns:
            The new block id.
        """
        if call is not None and site is not None:
            raise ProgramStructureError("pass either call or site, not both")
        block_id = self._next_id
        self._next_id += 1
        if site is None and call is not None:
            site = CallSite.of(call)
        self._blocks[block_id] = BasicBlock(block_id=block_id, call=site, weight=weight)
        self._succs[block_id] = []
        self._preds[block_id] = []
        if self._entry is None:
            self._entry = block_id
        return block_id

    def add_edge(self, src: int, dst: int) -> None:
        """Add a control-flow edge ``src -> dst``."""
        if src not in self._blocks or dst not in self._blocks:
            raise ProgramStructureError(
                f"{self.name}: edge ({src} -> {dst}) references unknown block"
            )
        if dst in self._succs[src]:
            return
        self._succs[src].append(dst)
        self._preds[dst].append(src)

    def set_entry(self, block_id: int) -> None:
        """Override the entry block (defaults to the first block added)."""
        if block_id not in self._blocks:
            raise ProgramStructureError(f"{self.name}: unknown entry block {block_id}")
        self._entry = block_id

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entry(self) -> int:
        if self._entry is None:
            raise ProgramStructureError(f"{self.name}: function has no blocks")
        return self._entry

    @property
    def blocks(self) -> dict[int, BasicBlock]:
        return self._blocks

    def block(self, block_id: int) -> BasicBlock:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ProgramStructureError(
                f"{self.name}: unknown block {block_id}"
            ) from None

    def successors(self, block_id: int) -> list[int]:
        return self._succs[block_id]

    def predecessors(self, block_id: int) -> list[int]:
        return self._preds[block_id]

    def exit_blocks(self) -> list[int]:
        """Blocks with no successors (function returns)."""
        return [b for b, succ in self._succs.items() if not succ]

    def edges(self) -> Iterator[tuple[int, int]]:
        for src, succ in self._succs.items():
            for dst in succ:
                yield (src, dst)

    def call_blocks(self) -> list[BasicBlock]:
        """All blocks that make a call, in block-id order."""
        return [b for _, b in sorted(self._blocks.items()) if b.is_call]

    def calls(self, kind: CallKind | None = None) -> list[CallSite]:
        """All call sites, optionally filtered by kind."""
        sites = [b.call for b in self.call_blocks() if b.call is not None]
        if kind is None:
            return sites
        return [s for s in sites if s.kind is kind]

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FunctionCFG({self.name!r}, blocks={len(self._blocks)}, "
            f"edges={sum(len(s) for s in self._succs.values())})"
        )

    # ------------------------------------------------------------------
    # Structural analysis helpers
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> set[int]:
        """Blocks reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succs[node])
        return seen

    def back_edges(self) -> set[tuple[int, int]]:
        """Return the back edges found by an iterative DFS from the entry.

        Removing these edges leaves an acyclic graph, which is what the
        probability-forecast pass operates on (Equation 1 is defined
        top-down from the function entry).
        """
        color: dict[int, int] = {}  # 0 = in progress, 1 = done
        back: set[tuple[int, int]] = set()
        stack: list[tuple[int, Iterator[int]]] = []
        entry = self.entry
        color[entry] = 0
        stack.append((entry, iter(self._succs[entry])))
        while stack:
            node, it = stack[-1]
            advanced = False
            for child in it:
                state = color.get(child)
                if state == 0:
                    back.add((node, child))
                elif state is None:
                    color[child] = 0
                    stack.append((child, iter(self._succs[child])))
                    advanced = True
                    break
            if not advanced:
                color[node] = 1
                stack.pop()
        return back

    def forward_topological_order(self) -> list[int]:
        """Topological order of reachable blocks after back-edge removal."""
        back = self.back_edges()
        reachable = self.reachable_blocks()
        indeg = {b: 0 for b in reachable}
        for src, dst in self.edges():
            if (src, dst) in back or src not in reachable:
                continue
            indeg[dst] += 1
        order: list[int] = []
        frontier = [b for b, d in indeg.items() if d == 0]
        while frontier:
            node = frontier.pop()
            order.append(node)
            for child in self._succs[node]:
                if (node, child) in back:
                    continue
                indeg[child] -= 1
                if indeg[child] == 0:
                    frontier.append(child)
        if len(order) != len(reachable):
            raise ProgramStructureError(
                f"{self.name}: cycle remains after back-edge removal"
            )
        return order

    def validate(self) -> None:
        """Check basic structural invariants, raising on violation."""
        if self._entry is None:
            raise ProgramStructureError(f"{self.name}: function has no blocks")
        if not self.exit_blocks():
            raise ProgramStructureError(f"{self.name}: function has no exit block")
        unreachable = set(self._blocks) - self.reachable_blocks()
        if unreachable:
            raise ProgramStructureError(
                f"{self.name}: unreachable blocks {sorted(unreachable)}"
            )


def count_edges(cfg: FunctionCFG) -> int:
    """Total number of edges in ``cfg``."""
    return sum(len(cfg.successors(b)) for b in cfg.blocks)


def linear_cfg(name: str, call_names: Iterable[str]) -> FunctionCFG:
    """Build a straight-line CFG that makes ``call_names`` in order.

    Convenience used heavily by tests and examples.
    """
    cfg = FunctionCFG(name)
    prev = cfg.add_block()
    for call in call_names:
        node = cfg.add_block(call=call)
        cfg.add_edge(prev, node)
        prev = node
    tail = cfg.add_block()
    cfg.add_edge(prev, tail)
    return cfg
