"""Tables of observable call names and call-kind classification.

The paper monitors two event families: Linux *system calls* (collected with
``strace`` in the original work) and *glibc library calls* (collected with
``ltrace``).  Our synthetic programs draw their call sites from the tables
below so that generated traces look like the traces of the real programs the
paper evaluates (grep, gzip, bash, proftpd, nginx, ...).

Internal (user-defined) function calls are a third kind: they appear in CFGs
and drive aggregation, but are never observation symbols.
"""

from __future__ import annotations

import enum


class CallKind(enum.Enum):
    """Classification of a call site inside a basic block."""

    SYSCALL = "syscall"
    LIBCALL = "libcall"
    INTERNAL = "internal"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: System calls used by the synthetic corpus.  The selection mirrors what the
#: paper's utility and server programs actually issue (file I/O, memory
#: management, signals, process control, and sockets for the servers).
SYSCALLS: tuple[str, ...] = (
    "read",
    "write",
    "open",
    "openat",
    "close",
    "stat",
    "fstat",
    "lstat",
    "lseek",
    "mmap",
    "munmap",
    "brk",
    "rt_sigaction",
    "rt_sigprocmask",
    "ioctl",
    "access",
    "pipe",
    "dup2",
    "getpid",
    "socket",
    "connect",
    "accept",
    "bind",
    "listen",
    "sendto",
    "recvfrom",
    "setsockopt",
    "fork",
    "clone",
    "execve",
    "exit_group",
    "wait4",
    "kill",
    "uname",
    "fcntl",
    "getdents",
    "getcwd",
    "chdir",
    "rename",
    "mkdir",
    "rmdir",
    "unlink",
    "chmod",
    "chown",
    "umask",
    "gettimeofday",
    "getuid",
    "setuid",
    "futex",
    "epoll_wait",
    "epoll_ctl",
    "writev",
    "select",
    "poll",
    "nanosleep",
)

#: glibc library calls used by the synthetic corpus.
LIBCALLS: tuple[str, ...] = (
    "malloc",
    "calloc",
    "realloc",
    "free",
    "memcpy",
    "memmove",
    "memset",
    "memcmp",
    "strlen",
    "strcmp",
    "strncmp",
    "strcpy",
    "strncpy",
    "strcat",
    "strchr",
    "strrchr",
    "strstr",
    "strtok",
    "strdup",
    "sprintf",
    "snprintf",
    "printf",
    "fprintf",
    "vfprintf",
    "sscanf",
    "fopen",
    "fclose",
    "fread",
    "fwrite",
    "fgets",
    "fputs",
    "fputc",
    "fgetc",
    "fflush",
    "fseek",
    "ftell",
    "feof",
    "getc",
    "putc",
    "puts",
    "atoi",
    "atol",
    "strtol",
    "strtoul",
    "getenv",
    "setenv",
    "qsort",
    "bsearch",
    "regcomp",
    "regexec",
    "regfree",
    "isalpha",
    "isdigit",
    "isspace",
    "tolower",
    "toupper",
    "setlocale",
    "localeconv",
    "gettext",
    "abort",
    "exit",
    "atexit",
    "signal",
    "longjmp",
    "setjmp",
    "time",
    "localtime",
    "strftime",
    "rand",
    "srand",
    "getopt",
    "getopt_long",
    "perror",
    "opendir",
    "readdir",
    "closedir",
    "dlopen",
    "dlsym",
    "gethostbyname",
    "inet_ntoa",
    "htons",
    "ntohs",
    "crypt",
    "gcry_cipher_encrypt",
)

_SYSCALL_SET = frozenset(SYSCALLS)
_LIBCALL_SET = frozenset(LIBCALLS)


def classify_call(name: str) -> CallKind:
    """Return the :class:`CallKind` of ``name``.

    Names in neither table are treated as internal (user-defined) functions,
    matching how the paper's toolchain separates ``strace``/``ltrace`` events
    from ordinary calls.
    """
    if name in _SYSCALL_SET:
        return CallKind.SYSCALL
    if name in _LIBCALL_SET:
        return CallKind.LIBCALL
    return CallKind.INTERNAL


def is_observable(name: str) -> bool:
    """True when ``name`` is a syscall or libcall (an observation symbol)."""
    return name in _SYSCALL_SET or name in _LIBCALL_SET


def observable_names(kind: CallKind) -> tuple[str, ...]:
    """Return the full name table for an observable :class:`CallKind`."""
    if kind is CallKind.SYSCALL:
        return SYSCALLS
    if kind is CallKind.LIBCALL:
        return LIBCALLS
    raise ValueError(f"{kind} is not an observable call kind")
