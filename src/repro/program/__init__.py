"""Program substrate: toy IR, CFGs, call graph, corpus, and binary layout.

This package is the synthetic stand-in for the real binaries + Dyninst
toolchain the paper uses.  See DESIGN.md §2 for the substitution argument.
"""

from .builder import FunctionBuilder, ProgramBuilder
from .callgraph import CallGraph, build_call_graph
from .calls import (
    LIBCALLS,
    SYSCALLS,
    CallKind,
    classify_call,
    is_observable,
    observable_names,
)
from .cfg import INDIRECT_CALL, BasicBlock, CallSite, FunctionCFG, linear_cfg
from .dot import call_graph_to_dot, cfg_to_dot
from .corpus import (
    ALL_PROGRAMS,
    PROGRAM_SPECS,
    SERVER_PROGRAMS,
    UTILITY_PROGRAMS,
    CorpusSpec,
    load_corpus,
    load_program,
    make_paper_example,
    wrapper_name,
)
from .image import BinaryImage, SyscallSite, layout_libc, layout_program
from .instructions import Instruction, decode_one, decode_window
from .metrics import FunctionMetrics, ProgramMetrics, function_metrics, program_metrics
from .program import Program, context_label, split_label

__all__ = [
    "ALL_PROGRAMS",
    "INDIRECT_CALL",
    "call_graph_to_dot",
    "cfg_to_dot",
    "LIBCALLS",
    "PROGRAM_SPECS",
    "SERVER_PROGRAMS",
    "SYSCALLS",
    "UTILITY_PROGRAMS",
    "BasicBlock",
    "BinaryImage",
    "CallGraph",
    "CallKind",
    "CallSite",
    "CorpusSpec",
    "FunctionBuilder",
    "FunctionCFG",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "SyscallSite",
    "build_call_graph",
    "classify_call",
    "context_label",
    "decode_one",
    "decode_window",
    "FunctionMetrics",
    "ProgramMetrics",
    "function_metrics",
    "program_metrics",
    "is_observable",
    "layout_libc",
    "layout_program",
    "linear_cfg",
    "load_corpus",
    "load_program",
    "make_paper_example",
    "observable_names",
    "split_label",
    "wrapper_name",
]
