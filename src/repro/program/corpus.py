"""Synthetic evaluation corpus: the paper's eight programs, reconstructed.

The original evaluation analyses real Linux binaries (flex, grep, gzip, sed,
bash, vim, proftpd, nginx) with Dyninst.  Those binaries — and Dyninst — are
not available here, so this module *synthesizes* programs with the same
structural properties the paper's results depend on:

* **Syscall funnelling.**  System calls are made through a small number of
  wrapper functions (glibc-style), so the set of distinct ``syscall@caller``
  labels is barely larger than the set of distinct syscall names.  This is
  why context sensitivity helps syscall models only mildly (Section V-C).
* **Libcall diversity.**  Library calls are invoked directly from many user
  functions, so the context-labeled libcall alphabet is much larger than the
  bare-name alphabet — the regime where CMarkov shines.
* **Program shape.**  Utilities are option-parse / work-loop / cleanup
  pipelines; servers are accept-loop daemons with per-request handlers.

Each program is generated deterministically from a per-program seed, and a
``scale`` knob grows or shrinks the function count so experiments can run at
laptop speed or closer to paper scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..errors import ProgramStructureError
from .builder import FunctionBuilder, ProgramBuilder
from .program import Program

#: Names of the six SIR utility programs evaluated in the paper.
UTILITY_PROGRAMS: tuple[str, ...] = ("flex", "grep", "gzip", "sed", "bash", "vim")
#: Names of the two server programs evaluated in the paper.
SERVER_PROGRAMS: tuple[str, ...] = ("proftpd", "nginx")
#: All corpus programs.
ALL_PROGRAMS: tuple[str, ...] = UTILITY_PROGRAMS + SERVER_PROGRAMS


@dataclass(frozen=True)
class CorpusSpec:
    """Generation parameters for one synthetic program.

    Attributes:
        name: program name.
        seed: RNG seed (per-program, so corpora are reproducible).
        n_leaf: number of leaf utility functions (libcall-heavy).
        n_mid: number of mid-level functions (call leaves + wrappers).
        n_phase: number of top-level phase functions called from ``main``.
        libcall_pool: libcall names this program uses.
        syscall_pool: syscall names this program uses.
        double_wrapped: syscalls that get two wrapper functions instead of
            one (adds mild caller diversity for a few syscalls, as real
            programs have e.g. both buffered and raw read paths).
        server: if True, ``main`` is an accept/event loop daemon.
        n_handlers: size of the program's function-pointer dispatch table
            (bash builtins, nginx/proftpd request handlers); 0 disables it.
            Dispatch targets are invisible to static analysis — the paper's
            "function pointers ... learned from program traces" regime.
        loc: lines-of-code metadata (descriptive only).
        size_kb: binary-size metadata (descriptive only).
    """

    name: str
    seed: int
    n_leaf: int
    n_mid: int
    n_phase: int
    libcall_pool: tuple[str, ...]
    syscall_pool: tuple[str, ...]
    double_wrapped: tuple[str, ...] = ()
    server: bool = False
    n_handlers: int = 0
    loc: int = 10_000
    size_kb: int = 500

    def scaled(self, scale: float) -> "CorpusSpec":
        """Return a copy with function counts multiplied by ``scale``."""
        if scale <= 0:
            raise ProgramStructureError(f"scale must be positive, got {scale}")
        return dataclasses.replace(
            self,
            n_leaf=max(2, round(self.n_leaf * scale)),
            n_mid=max(1, round(self.n_mid * scale)),
            n_phase=max(1, round(self.n_phase * scale)),
        )


def _pool(names: tuple[str, ...], *extra: str) -> tuple[str, ...]:
    seen: dict[str, None] = dict.fromkeys(names)
    for name in extra:
        seen.setdefault(name)
    return tuple(seen)


_FILE_SYS = ("open", "openat", "read", "write", "close", "stat", "fstat", "lseek")
_MEM_SYS = ("brk", "mmap", "munmap")
_SIG_SYS = ("rt_sigaction", "rt_sigprocmask")
_PROC_SYS = ("fork", "execve", "wait4", "exit_group", "getpid")
_NET_SYS = (
    "socket",
    "bind",
    "listen",
    "accept",
    "connect",
    "sendto",
    "recvfrom",
    "setsockopt",
)

_STR_LIB = (
    "strlen",
    "strcmp",
    "strncmp",
    "strcpy",
    "strncpy",
    "strchr",
    "strstr",
    "strdup",
    "strcat",
)
_MEM_LIB = ("malloc", "calloc", "realloc", "free", "memcpy", "memset", "memcmp")
_IO_LIB = (
    "fopen",
    "fclose",
    "fread",
    "fwrite",
    "fgets",
    "fputs",
    "fputc",
    "fgetc",
    "fflush",
    "printf",
    "fprintf",
    "sprintf",
    "snprintf",
    "puts",
    "perror",
)
_CTYPE_LIB = ("isalpha", "isdigit", "isspace", "tolower", "toupper")
_MISC_LIB = ("getenv", "atoi", "strtol", "qsort", "exit", "atexit", "getopt")

PROGRAM_SPECS: dict[str, CorpusSpec] = {
    "flex": CorpusSpec(
        name="flex",
        seed=101,
        n_leaf=14,
        n_mid=6,
        n_phase=4,
        libcall_pool=_pool(_STR_LIB, *_MEM_LIB, *_IO_LIB[:8], "qsort", "getopt", "exit"),
        syscall_pool=_pool(_FILE_SYS, *_MEM_SYS, "uname", "exit_group"),
        double_wrapped=("read",),
        loc=16_000,
        size_kb=900,
    ),
    "grep": CorpusSpec(
        name="grep",
        seed=102,
        n_leaf=12,
        n_mid=5,
        n_phase=3,
        libcall_pool=_pool(
            ("regcomp", "regexec", "regfree"),
            *_STR_LIB,
            *_MEM_LIB[:5],
            "fgets",
            "printf",
            "fprintf",
            "getopt_long",
            "setlocale",
            "exit",
        ),
        syscall_pool=_pool(_FILE_SYS, "brk", "mmap", "getdents", "exit_group"),
        double_wrapped=("read", "open"),
        loc=10_000,
        size_kb=600,
    ),
    "gzip": CorpusSpec(
        name="gzip",
        seed=103,
        n_leaf=10,
        n_mid=4,
        n_phase=3,
        libcall_pool=_pool(
            _MEM_LIB,
            "strlen",
            "strcpy",
            "strcmp",
            "fprintf",
            "sprintf",
            "perror",
            "atoi",
            "exit",
            "signal",
        ),
        syscall_pool=_pool(
            _FILE_SYS,
            "brk",
            "uname",
            "rt_sigaction",
            "unlink",
            "chmod",
            "chown",
            "gettimeofday",
            "exit_group",
        ),
        double_wrapped=("write",),
        loc=8_000,
        size_kb=400,
    ),
    "sed": CorpusSpec(
        name="sed",
        seed=104,
        n_leaf=11,
        n_mid=5,
        n_phase=3,
        libcall_pool=_pool(
            ("regcomp", "regexec"),
            *_STR_LIB[:7],
            *_MEM_LIB[:5],
            "fgets",
            "fputs",
            "fopen",
            "fclose",
            "printf",
            "getopt",
            "exit",
        ),
        syscall_pool=_pool(_FILE_SYS, "brk", "rename", "unlink", "exit_group"),
        loc=12_000,
        size_kb=500,
    ),
    "bash": CorpusSpec(
        name="bash",
        seed=105,
        n_leaf=26,
        n_mid=12,
        n_phase=6,
        libcall_pool=_pool(
            _STR_LIB,
            *_MEM_LIB,
            *_IO_LIB,
            *_CTYPE_LIB,
            *_MISC_LIB,
            "setenv",
            "signal",
            "longjmp",
            "setjmp",
            "opendir",
            "readdir",
            "closedir",
            "time",
        ),
        syscall_pool=_pool(
            _FILE_SYS,
            *_MEM_SYS,
            *_SIG_SYS,
            *_PROC_SYS,
            "pipe",
            "dup2",
            "ioctl",
            "getcwd",
            "chdir",
            "getuid",
            "kill",
        ),
        double_wrapped=("read", "write", "open"),
        n_handlers=4,  # builtin-command dispatch
        loc=70_000,
        size_kb=1_600,
    ),
    "vim": CorpusSpec(
        name="vim",
        seed=106,
        n_leaf=22,
        n_mid=10,
        n_phase=5,
        libcall_pool=_pool(
            _STR_LIB,
            *_MEM_LIB,
            *_IO_LIB[:10],
            *_CTYPE_LIB,
            "setlocale",
            "getenv",
            "time",
            "localtime",
            "strftime",
            "exit",
            "signal",
        ),
        syscall_pool=_pool(
            _FILE_SYS,
            *_MEM_SYS,
            *_SIG_SYS,
            "ioctl",
            "access",
            "select",
            "getcwd",
            "rename",
            "unlink",
            "exit_group",
        ),
        double_wrapped=("read", "write"),
        loc=90_000,
        size_kb=2_200,
    ),
    "proftpd": CorpusSpec(
        name="proftpd",
        seed=107,
        n_leaf=20,
        n_mid=9,
        n_phase=5,
        libcall_pool=_pool(
            _STR_LIB,
            *_MEM_LIB,
            "snprintf",
            "sprintf",
            "fprintf",
            "fopen",
            "fclose",
            "fgets",
            "crypt",
            "gethostbyname",
            "inet_ntoa",
            "htons",
            "time",
            "strftime",
            "getenv",
            "signal",
            "exit",
        ),
        syscall_pool=_pool(
            _NET_SYS,
            *_FILE_SYS,
            *_SIG_SYS,
            "fork",
            "wait4",
            "dup2",
            "chdir",
            "getcwd",
            "rename",
            "mkdir",
            "rmdir",
            "unlink",
            "chmod",
            "getdents",
            "setuid",
            "getuid",
            "exit_group",
        ),
        double_wrapped=("read", "write"),
        server=True,
        n_handlers=3,  # FTP command handlers
        loc=68_000,
        size_kb=2_800,
    ),
    "nginx": CorpusSpec(
        name="nginx",
        seed=108,
        n_leaf=18,
        n_mid=8,
        n_phase=4,
        libcall_pool=_pool(
            ("memcpy", "memset", "memcmp", "malloc", "free", "calloc"),
            "strlen",
            "strncmp",
            "strchr",
            "snprintf",
            "sprintf",
            "time",
            "localtime",
            "strftime",
            "htons",
            "ntohs",
            "inet_ntoa",
            "getenv",
            "exit",
            "qsort",
        ),
        syscall_pool=_pool(
            _NET_SYS,
            "epoll_wait",
            "epoll_ctl",
            "writev",
            *_FILE_SYS,
            "mmap",
            "munmap",
            "brk",
            "rt_sigaction",
            "clone",
            "futex",
            "exit_group",
        ),
        double_wrapped=("read",),
        server=True,
        n_handlers=5,  # HTTP module handlers
        loc=110_000,
        size_kb=3_000,
    ),
}


def wrapper_name(syscall: str, variant: int = 0) -> str:
    """Name of the ``variant``-th wrapper function for ``syscall``."""
    return f"sys_{syscall}" if variant == 0 else f"sys_{syscall}_{variant}"


class _Generator:
    """Stateful generator that assembles one program from a spec."""

    def __init__(self, spec: CorpusSpec) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        self.pb = ProgramBuilder(spec.name)
        self.wrappers: dict[str, list[str]] = {}
        self.leaves: list[str] = []
        self.mids: list[str] = []
        self.phases: list[str] = []
        self.handlers: list[str] = []
        self.dispatcher: str | None = None

    # -- random helpers -------------------------------------------------
    def _pick(self, pool: tuple[str, ...] | list[str], k: int = 1) -> list[str]:
        idx = self.rng.integers(0, len(pool), size=k)
        return [pool[i] for i in idx]

    def _libs(self, k: int) -> list[str]:
        return self._pick(self.spec.libcall_pool, k)

    # -- construction phases --------------------------------------------
    def build(self) -> Program:
        self._make_wrappers()
        self._make_leaves()
        self._make_handlers()
        self._make_mids()
        self._make_phases()
        self._make_main()
        program = self.pb.build()
        program.metadata.update(
            {
                "loc": self.spec.loc,
                "size_kb": self.spec.size_kb,
                "server": self.spec.server,
                "seed": self.spec.seed,
            }
        )
        return program

    def _make_wrappers(self) -> None:
        """glibc-style wrappers: (almost) the only homes of raw syscalls."""
        for syscall in self.spec.syscall_pool:
            variants = 2 if syscall in self.spec.double_wrapped else 1
            self.wrappers[syscall] = []
            for variant in range(variants):
                name = wrapper_name(syscall, variant)
                fb = self.pb.function(name)
                # Error-checking shape: maybe log through a libcall on the
                # failure arm, always issue the syscall itself.
                fb.call(syscall)
                if self.rng.random() < 0.5:
                    fb.branch(["perror"], empty_arm=True)
                self.wrappers[syscall].append(name)

    def _wrapper_for(self, syscall: str) -> str:
        options = self.wrappers[syscall]
        return options[int(self.rng.integers(0, len(options)))]

    def _make_leaves(self) -> None:
        """Leaf utilities: libcall-dense, occasionally hit a wrapper."""
        for i in range(self.spec.n_leaf):
            name = f"{self.spec.name}_leaf_{i}"
            self.leaves.append(name)
            fb = self.pb.function(name)
            for _ in range(int(self.rng.integers(2, 5))):
                self._emit_element(fb, call_pool=self._leaf_pool())

    def _leaf_pool(self) -> list[str]:
        pool = list(self._libs(6))
        if self.rng.random() < 0.45:
            pool.append(self._wrapper_for(self._pick(self.spec.syscall_pool)[0]))
        return pool

    def _make_handlers(self) -> None:
        """Dispatch-table targets reached only through a function pointer."""
        if self.spec.n_handlers <= 0:
            return
        for i in range(self.spec.n_handlers):
            name = f"{self.spec.name}_handler_{i}"
            self.handlers.append(name)
            fb = self.pb.function(name)
            for _ in range(int(self.rng.integers(2, 4))):
                self._emit_element(fb, call_pool=self._leaf_pool())
        self.dispatcher = f"{self.spec.name}_dispatch"
        fb = self.pb.function(self.dispatcher)
        fb.seq(*self._libs(1))
        fb.indirect(*self.handlers)

    def _make_mids(self) -> None:
        """Mid-level functions: orchestrate leaves, wrappers and libcalls."""
        for i in range(self.spec.n_mid):
            name = f"{self.spec.name}_mid_{i}"
            self.mids.append(name)
            fb = self.pb.function(name)
            for _ in range(int(self.rng.integers(2, 5))):
                pool = list(self._libs(3))
                pool.extend(self._pick(self.leaves, 2))
                if self.rng.random() < 0.6:
                    pool.append(
                        self._wrapper_for(self._pick(self.spec.syscall_pool)[0])
                    )
                self._emit_element(fb, call_pool=pool)

    def _make_phases(self) -> None:
        """Top-level phases: mostly sequencing of mid-level functions."""
        for i in range(self.spec.n_phase):
            name = f"{self.spec.name}_phase_{i}"
            self.phases.append(name)
            fb = self.pb.function(name)
            fb.seq(*self._libs(1))
            for _ in range(int(self.rng.integers(2, 4))):
                pool = list(self._pick(self.mids, 2)) + self._libs(2)
                self._emit_element(fb, call_pool=pool)

    def _make_main(self) -> None:
        spec = self.spec
        fb = self.pb.function("main")
        # Startup: memory + signal setup through wrappers, env probing.
        startup: list[str] = []
        if "brk" in self.wrappers:
            startup.append(self._wrapper_for("brk"))
        if "uname" in self.wrappers:
            startup.append(self._wrapper_for("uname"))
        if "rt_sigaction" in self.wrappers:
            startup.extend([self._wrapper_for("rt_sigaction")] * 2)
        startup.extend(["getenv", "malloc"])
        fb.seq(*[c for c in startup if self._known(c)])
        if spec.server:
            self._server_main(fb)
        else:
            self._utility_main(fb)
        # Cleanup and exit.
        tail: list[str] = ["free"] if self._known("free") else []
        if "exit_group" in self.wrappers:
            tail.append(self._wrapper_for("exit_group"))
        if tail:
            fb.seq(*tail)

    def _utility_main(self, fb: FunctionBuilder) -> None:
        if self._known("getopt"):
            fb.loop(["getopt"], may_skip=True)
        elif self._known("getopt_long"):
            fb.loop(["getopt_long"], may_skip=True)
        # Main work loop over inputs: run the phases (plus the dispatch
        # table, when the program has one — e.g. bash builtins).
        body = list(self.phases)
        if self.dispatcher is not None:
            body.append(self.dispatcher)
        fb.loop(body, may_skip=False)

    def _server_main(self, fb: FunctionBuilder) -> None:
        setup = []
        for syscall in ("socket", "setsockopt", "bind", "listen"):
            if syscall in self.wrappers:
                setup.append(self._wrapper_for(syscall))
        if setup:
            fb.seq(*setup)
        # Event loop: accept/epoll, then dispatch request phases.
        loop_body: list[str] = []
        if "epoll_wait" in self.wrappers:
            loop_body.append(self._wrapper_for("epoll_wait"))
        if "accept" in self.wrappers:
            loop_body.append(self._wrapper_for("accept"))
        loop_body.extend(self.phases)
        if self.dispatcher is not None:
            loop_body.append(self.dispatcher)
        fb.loop(loop_body, may_skip=False)

    def _known(self, call: str) -> bool:
        return (
            call in self.spec.libcall_pool
            or call in self.spec.syscall_pool
            or any(call in ws for ws in self.wrappers.values())
        )

    # -- element emission --------------------------------------------------
    def _emit_element(self, fb: FunctionBuilder, call_pool: list[str]) -> None:
        """Emit one random structural element drawn from ``call_pool``."""
        roll = self.rng.random()
        if roll < 0.45:
            fb.seq(*self._pick(call_pool, int(self.rng.integers(1, 4))))
        elif roll < 0.8:
            arms = [
                self._pick(call_pool, int(self.rng.integers(1, 3)))
                for _ in range(int(self.rng.integers(2, 4)))
            ]
            fb.branch(*arms, empty_arm=bool(self.rng.random() < 0.5))
        else:
            fb.loop(
                self._pick(call_pool, int(self.rng.integers(1, 3))),
                may_skip=bool(self.rng.random() < 0.7),
            )


def load_program(name: str, scale: float = 1.0) -> Program:
    """Generate one of the eight corpus programs.

    Args:
        name: a member of :data:`ALL_PROGRAMS`.
        scale: multiplies leaf/mid/phase function counts; 1.0 is the
            laptop-speed default, larger values approach paper scale.

    Returns:
        A validated :class:`Program`.
    """
    try:
        spec = PROGRAM_SPECS[name]
    except KeyError:
        raise ProgramStructureError(
            f"unknown corpus program {name!r}; choose from {ALL_PROGRAMS}"
        ) from None
    return _Generator(spec.scaled(scale)).build()


def load_corpus(scale: float = 1.0) -> dict[str, Program]:
    """Generate the full eight-program corpus."""
    return {name: load_program(name, scale=scale) for name in ALL_PROGRAMS}


def make_paper_example() -> Program:
    """The running example of the paper's Figure 1 / Section II-C.

    Two user functions: ``g`` reads input then (conditionally) executes a
    command, ``f`` reads and writes.  The normal context-sensitive sequence
    is ``read@g -> read@f -> write@f -> execve@g``.
    """
    pb = ProgramBuilder("paper-example")
    pb.function("f").seq("read", "write")
    pb.function("g").seq("read", "f").branch(["execve"], empty_arm=True)
    pb.function("main").seq("g")
    return pb.build()
