"""Fluent construction of function CFGs and whole programs.

The synthetic-corpus generators (:mod:`repro.program.corpus`) assemble the
eight evaluation programs out of three structural elements — straight-line
call sequences, conditional branches, and loops — which this module provides
as a small builder DSL:

    >>> pb = ProgramBuilder("demo")
    >>> f = pb.function("main")
    >>> _ = f.seq("getenv", "malloc").branch(["read", "write"], ["printf"])
    >>> _ = f.loop(["fgets", "strlen"]).seq("free", "exit_group")
    >>> program = pb.build()
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ProgramStructureError
from .cfg import FunctionCFG
from .program import Program


class FunctionBuilder:
    """Incrementally grows one :class:`FunctionCFG`.

    The builder keeps a *cursor*: the set of dangling blocks that the next
    element attaches to.  ``finish()`` (called automatically by
    :meth:`ProgramBuilder.build`) joins the cursor into a single exit block.
    """

    def __init__(self, cfg: FunctionCFG) -> None:
        self._cfg = cfg
        entry = cfg.add_block()
        self._cursor: list[int] = [entry]
        self._finished = False

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------
    def seq(self, *calls: str) -> "FunctionBuilder":
        """Append a straight-line sequence of call blocks."""
        self._check_open()
        for name in calls:
            node = self._cfg.add_block(call=name)
            self._attach(node)
            self._cursor = [node]
        return self

    def branch(
        self, *arms: Sequence[str], empty_arm: bool = False
    ) -> "FunctionBuilder":
        """Append a conditional branch.

        Each arm is a sequence of call names (an empty sequence is a plain
        fall-through arm).  ``empty_arm=True`` adds an extra empty arm, the
        common "condition not taken" shape.
        """
        self._check_open()
        if not arms and not empty_arm:
            raise ProgramStructureError("branch needs at least one arm")
        head = self._cfg.add_block()
        self._attach(head)
        arm_lists = [list(arm) for arm in arms]
        if empty_arm:
            arm_lists.append([])
        join = self._cfg.add_block()
        for arm in arm_lists:
            prev = head
            for name in arm:
                node = self._cfg.add_block(call=name)
                self._cfg.add_edge(prev, node)
                prev = node
            self._cfg.add_edge(prev, join)
        self._cursor = [join]
        return self

    def loop(self, body: Sequence[str], may_skip: bool = True) -> "FunctionBuilder":
        """Append a loop whose body makes ``body`` calls in order.

        The loop head is a test block: one edge enters the body, one exits.
        The body's last block has a back edge to the head.  With
        ``may_skip=False`` the body is forced to execute at least once
        (do-while shape).
        """
        self._check_open()
        if not body:
            raise ProgramStructureError("loop body must make at least one call")
        head = self._cfg.add_block()
        self._attach(head)
        prev = head
        first_body: int | None = None
        for name in body:
            node = self._cfg.add_block(call=name)
            self._cfg.add_edge(prev, node)
            if first_body is None:
                first_body = node
            prev = node
        self._cfg.add_edge(prev, head)  # back edge
        after = self._cfg.add_block()
        if may_skip:
            self._cfg.add_edge(head, after)
        else:
            self._cfg.add_edge(prev, after)
        self._cursor = [after]
        return self

    def call(self, name: str) -> "FunctionBuilder":
        """Append a single call block (alias for one-element :meth:`seq`)."""
        return self.seq(name)

    def indirect(self, *targets: str) -> "FunctionBuilder":
        """Append a function-pointer dispatch over ``targets``.

        Static analysis treats the site as call-free (the paper learns
        pointer behaviour from traces); the executor picks a target at
        runtime.
        """
        from .cfg import CallSite

        self._check_open()
        node = self._cfg.add_block(site=CallSite.indirect(targets))
        self._attach(node)
        self._cursor = [node]
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> FunctionCFG:
        """Seal the function with a single exit block and return its CFG.

        The exit block is weightless: a function whose last real block makes
        a syscall compiles to ``... SYSCALL; RET``, the classic 2-instruction
        gadget shape the Table III scan must be able to find.
        """
        if not self._finished:
            exit_block = self._cfg.add_block(weight=0)
            self._attach(exit_block)
            self._cursor = [exit_block]
            self._finished = True
        return self._cfg

    @property
    def cfg(self) -> FunctionCFG:
        return self._cfg

    def _attach(self, node: int) -> None:
        for open_block in self._cursor:
            self._cfg.add_edge(open_block, node)

    def _check_open(self) -> None:
        if self._finished:
            raise ProgramStructureError(
                f"{self._cfg.name}: cannot extend a finished function"
            )


class ProgramBuilder:
    """Builds a :class:`Program` out of :class:`FunctionBuilder` functions."""

    def __init__(self, name: str, entry_function: str = "main") -> None:
        self._program = Program(name=name, entry_function=entry_function)
        self._builders: dict[str, FunctionBuilder] = {}

    def function(self, name: str) -> FunctionBuilder:
        """Open (or reopen) the builder for function ``name``."""
        if name in self._builders:
            return self._builders[name]
        builder = FunctionBuilder(FunctionCFG(name))
        self._builders[name] = builder
        return builder

    def build(self, validate: bool = True) -> Program:
        """Finish every function and return the validated program."""
        for builder in self._builders.values():
            cfg = builder.finish()
            if cfg.name not in self._program.functions:
                self._program.add_function(cfg)
        if validate:
            self._program.validate()
        return self._program
