"""Whole-program container: a named set of function CFGs with an entry point.

This is the analysis subject — the synthetic stand-in for the stripped
binaries the paper feeds to Dyninst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ProgramStructureError
from .calls import CallKind
from .cfg import FunctionCFG


@dataclass
class Program:
    """A program under analysis.

    Attributes:
        name: program identifier (``"gzip"``, ``"proftpd"``, ...).
        functions: function name -> CFG.
        entry_function: name of the function where execution starts.
        metadata: free-form descriptive values (lines of code, binary size)
            used by the reporting layer to mimic the paper's setup tables.
    """

    name: str
    functions: dict[str, FunctionCFG] = field(default_factory=dict)
    entry_function: str = "main"
    metadata: dict[str, object] = field(default_factory=dict)

    def add_function(self, cfg: FunctionCFG) -> None:
        """Register ``cfg``; function names must be unique."""
        if cfg.name in self.functions:
            raise ProgramStructureError(f"duplicate function {cfg.name!r}")
        self.functions[cfg.name] = cfg

    def function(self, name: str) -> FunctionCFG:
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramStructureError(
                f"{self.name}: unknown function {name!r}"
            ) from None

    @property
    def entry(self) -> FunctionCFG:
        return self.function(self.entry_function)

    def iter_functions(self) -> Iterator[FunctionCFG]:
        for name in sorted(self.functions):
            yield self.functions[name]

    # ------------------------------------------------------------------
    # Statistics used by reports and the corpus self-checks
    # ------------------------------------------------------------------
    def distinct_calls(self, kind: CallKind, context: bool = True) -> set[str]:
        """Distinct observable calls of ``kind``.

        With ``context=True`` each call is labeled ``name@caller`` (1-level
        calling context, Section II-C); otherwise bare names are returned.
        """
        labels: set[str] = set()
        for function in self.functions.values():
            for site in function.calls(kind):
                if context:
                    labels.add(f"{site.name}@{function.name}")
                else:
                    labels.add(site.name)
        return labels

    def total_blocks(self) -> int:
        return sum(len(f) for f in self.functions.values())

    def total_edges(self) -> int:
        return sum(
            len(f.successors(b)) for f in self.functions.values() for b in f.blocks
        )

    def total_branches(self) -> int:
        """Number of conditional branch edges (edges out of multi-successor
        blocks), the denominator for branch coverage in Table I."""
        total = 0
        for function in self.functions.values():
            for block_id in function.blocks:
                succ = function.successors(block_id)
                if len(succ) > 1:
                    total += len(succ)
        return total

    def validate(self) -> None:
        """Validate every function plus whole-program invariants."""
        if self.entry_function not in self.functions:
            raise ProgramStructureError(
                f"{self.name}: entry function {self.entry_function!r} undefined"
            )
        for function in self.functions.values():
            function.validate()
            for block in function.call_blocks():
                site = block.call
                assert site is not None
                if site.is_indirect:
                    missing = [t for t in site.targets if t not in self.functions]
                    if missing:
                        raise ProgramStructureError(
                            f"{function.name}: indirect call targets "
                            f"{missing} are undefined"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Program({self.name!r}, functions={len(self.functions)}, "
            f"blocks={self.total_blocks()})"
        )


def context_label(call_name: str, caller: str) -> str:
    """The 1-level calling-context label ``call_name@caller`` (Section II-C)."""
    return f"{call_name}@{caller}"


def split_label(label: str) -> tuple[str, str | None]:
    """Split a possibly context-labeled symbol into ``(name, caller|None)``."""
    name, sep, caller = label.partition("@")
    return (name, caller if sep else None)
