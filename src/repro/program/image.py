"""Binary-image layout: flatten a :class:`Program` into a byte image.

The layout pass assigns every function a contiguous extent in a flat address
space and emits toy-ISA bytes for its blocks.  The resulting
:class:`BinaryImage` supports the two queries the evaluation needs:

* the gadget scanner (:mod:`repro.gadgets`) walks the raw bytes looking for
  ``[SYSCALL ... RET]`` sequences at *every* byte offset, intended or not;
* the context-compatibility filter maps an address back to the enclosing
  function (the ``addr2line`` role from the paper's toolchain) and checks
  whether a syscall at that address is an intended, statically-known site.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from ..errors import ProgramStructureError
from .calls import SYSCALLS, CallKind
from .instructions import (
    CALL_OPCODE,
    FILLER_OPCODES,
    OPCODES,
    RET_OPCODE,
    SYSCALL_OPCODE,
)
from .program import Program


@dataclass(frozen=True)
class SyscallSite:
    """An intended syscall instruction emitted by the layout pass."""

    address: int
    syscall: str
    function: str


@dataclass
class BinaryImage:
    """A laid-out program image.

    Attributes:
        name: program name.
        data: raw bytes.
        extents: function name -> (start, end) half-open byte extent.
        syscall_sites: every intended syscall instruction.
    """

    name: str
    data: bytes
    extents: dict[str, tuple[int, int]]
    syscall_sites: list[SyscallSite] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._starts = sorted((start, end, name) for name, (start, end) in self.extents.items())
        self._start_keys = [s for s, _, _ in self._starts]
        self._sites_by_addr = {site.address: site for site in self.syscall_sites}

    def function_at(self, address: int) -> str | None:
        """Map ``address`` to the enclosing function name (addr2line role)."""
        idx = bisect.bisect_right(self._start_keys, address) - 1
        if idx < 0:
            return None
        start, end, name = self._starts[idx]
        if start <= address < end:
            return name
        return None

    def intended_syscall_at(self, address: int) -> SyscallSite | None:
        """The intended syscall site at ``address``, if the layout emitted one."""
        return self._sites_by_addr.get(address)

    def __len__(self) -> int:
        return len(self.data)


# Fixed syscall numbers for the toy ABI: index in the syscall table.
SYSCALL_NUMBERS: dict[str, int] = {name: i for i, name in enumerate(SYSCALLS)}


def layout_program(
    program: Program,
    data_bytes: int = 512,
    base_address: int = 0x1000,
    seed: int | None = None,
) -> BinaryImage:
    """Emit a :class:`BinaryImage` for ``program``.

    Blocks are emitted in block-id order per function; functions in sorted
    name order.  Call blocks become ``MOV imm; SYSCALL`` (for syscalls) or a
    ``CALL`` instruction (for libcalls and internal calls).  Each function
    ends with ``RET``.  A trailing pseudo-``.rodata`` region of seeded random
    bytes provides the unintended-gadget surface.

    Args:
        program: the program to lay out.
        data_bytes: size of the trailing data region.
        base_address: address of the first function byte.
        seed: RNG seed for filler instructions and the data region;
            defaults to the program's corpus seed (or 0).
    """
    if seed is None:
        seed = int(program.metadata.get("seed", 0))  # type: ignore[arg-type]
    rng = np.random.default_rng(seed ^ 0x5EED)
    out = bytearray()
    extents: dict[str, tuple[int, int]] = {}
    sites: list[SyscallSite] = []

    def emit_filler(count: int) -> None:
        for _ in range(count):
            opcode = int(FILLER_OPCODES[int(rng.integers(0, len(FILLER_OPCODES)))])
            out.append(opcode)
            _, operand_count = OPCODES[opcode]
            for _ in range(operand_count):
                out.append(int(rng.integers(0, 256)))

    for function in program.iter_functions():
        start = base_address + len(out)
        for block_id in sorted(function.blocks):
            block = function.block(block_id)
            emit_filler(block.weight // 2)
            if block.call is None:
                continue
            if block.call.kind is CallKind.SYSCALL:
                number = SYSCALL_NUMBERS.get(block.call.name, 0)
                out.append(0xB8)  # mov_imm syscall number
                out.append(number & 0xFF)
                sites.append(
                    SyscallSite(
                        address=base_address + len(out),
                        syscall=block.call.name,
                        function=function.name,
                    )
                )
                out.append(SYSCALL_OPCODE)
            else:
                out.append(CALL_OPCODE)
                out.append(int(rng.integers(0, 256)))
                out.append(int(rng.integers(0, 256)))
        out.append(RET_OPCODE)
        extents[function.name] = (start, base_address + len(out))

    if data_bytes < 0:
        raise ProgramStructureError("data_bytes must be non-negative")
    out.extend(int(b) for b in rng.integers(0, 256, size=data_bytes))

    return BinaryImage(
        name=program.name,
        data=bytes(out),
        extents=extents,
        syscall_sites=sites,
    )


def layout_libc(seed: int = 0x11BC, data_bytes: int = 2048) -> BinaryImage:
    """Lay out a standalone pseudo-``libc.so`` image (Table III's last row).

    The image holds one wrapper-like routine per syscall in the table plus a
    large data region, mirroring how real gadget surveys find most syscall
    gadgets inside libc.
    """
    from .builder import ProgramBuilder  # local import to avoid a cycle

    pb = ProgramBuilder("libc.so", entry_function="libc_start_main")
    pb.function("libc_start_main").seq("brk")
    for syscall in SYSCALLS:
        pb.function(f"__{syscall}").call(syscall)
    program = pb.build()
    program.metadata["seed"] = seed
    return layout_program(program, data_bytes=data_bytes)
