"""Program complexity metrics: validating and reporting corpus realism.

The paper characterizes its subjects by size (lines of code, binary size);
reviewers of a synthetic corpus additionally want structural evidence that
the generated programs are program-shaped.  This module computes the
standard static metrics per function and per program:

* cyclomatic complexity (``E - N + 2`` per connected CFG);
* call-site counts by kind (syscall / libcall / internal / indirect);
* branching factor and loop counts;
* caller diversity per observable call — the quantity the paper's
  libcall-vs-syscall asymmetry rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .calls import CallKind
from .cfg import FunctionCFG
from .program import Program


@dataclass(frozen=True)
class FunctionMetrics:
    """Static metrics of one function."""

    name: str
    n_blocks: int
    n_edges: int
    cyclomatic_complexity: int
    n_loops: int
    n_branches: int
    calls_by_kind: dict[str, int]

    @property
    def total_call_sites(self) -> int:
        return sum(self.calls_by_kind.values())


@dataclass
class ProgramMetrics:
    """Aggregate metrics of a whole program."""

    program: str
    functions: dict[str, FunctionMetrics] = field(default_factory=dict)
    caller_diversity: dict[str, int] = field(default_factory=dict)

    @property
    def total_complexity(self) -> int:
        return sum(f.cyclomatic_complexity for f in self.functions.values())

    @property
    def mean_complexity(self) -> float:
        if not self.functions:
            return 0.0
        return self.total_complexity / len(self.functions)

    @property
    def max_complexity(self) -> int:
        return max(
            (f.cyclomatic_complexity for f in self.functions.values()), default=0
        )

    def mean_caller_diversity(self, kind: CallKind) -> float:
        """Average number of distinct callers per observable call name."""
        relevant = {
            name: callers
            for name, callers in self.caller_diversity.items()
            if _kind_of(name) is kind
        }
        if not relevant:
            return 0.0
        return sum(relevant.values()) / len(relevant)


def _kind_of(name: str) -> CallKind:
    from .calls import classify_call

    return classify_call(name)


def function_metrics(cfg: FunctionCFG) -> FunctionMetrics:
    """Compute static metrics of one function CFG."""
    n_blocks = len(cfg)
    n_edges = sum(len(cfg.successors(b)) for b in cfg.blocks)
    branches = sum(1 for b in cfg.blocks if len(cfg.successors(b)) > 1)
    calls: dict[str, int] = {
        "syscall": 0,
        "libcall": 0,
        "internal": 0,
        "indirect": 0,
    }
    for block in cfg.call_blocks():
        site = block.call
        assert site is not None
        if site.is_indirect:
            calls["indirect"] += 1
        else:
            calls[site.kind.value] += 1
    return FunctionMetrics(
        name=cfg.name,
        n_blocks=n_blocks,
        n_edges=n_edges,
        cyclomatic_complexity=n_edges - n_blocks + 2,
        n_loops=len(cfg.back_edges()),
        n_branches=branches,
        calls_by_kind=calls,
    )


def program_metrics(program: Program) -> ProgramMetrics:
    """Compute metrics for every function plus caller-diversity counts."""
    metrics = ProgramMetrics(program=program.name)
    callers: dict[str, set[str]] = {}
    for function in program.iter_functions():
        metrics.functions[function.name] = function_metrics(function)
        for site in function.calls():
            if site.observable:
                callers.setdefault(site.name, set()).add(function.name)
    metrics.caller_diversity = {
        name: len(functions) for name, functions in callers.items()
    }
    return metrics
