"""Scaled forward/backward recursions, batched over equal-length sequences.

The evaluation works on fixed-length 15-call segments, thousands at a time,
so both recursions are vectorized across the batch axis: one (B, N) matrix
product per time step instead of a Python loop per sequence.

Scaling follows Rabiner: the forward variable is renormalized at every step
and the per-step normalizers (``scales``) carry the likelihood, so
``log P(O | λ) = Σ_t log scale_t`` without underflow.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..errors import ModelError
from .model import HiddenMarkovModel

#: Floor applied to per-step normalizers so a zero-probability observation
#: yields a very negative — but finite — log-likelihood.
SCALE_FLOOR = 1e-300

#: Telemetry bucket bounds for raw per-sequence ``log P(O | λ)`` (a normal
#: 15-call segment typically lands in the -40..0 range; anomalies below).
LOGLIK_BUCKETS: tuple[float, ...] = (
    -500.0, -200.0, -100.0, -75.0, -50.0, -40.0, -30.0, -25.0,
    -20.0, -15.0, -10.0, -7.5, -5.0, -2.5, -1.0, 0.0,
)


def _check_obs(model: HiddenMarkovModel, obs: np.ndarray) -> np.ndarray:
    obs = np.asarray(obs)
    if obs.ndim == 1:
        obs = obs[None, :]
    if obs.ndim != 2:
        raise ModelError(f"observations must be (B, T), got shape {obs.shape}")
    if obs.size and (obs.min() < 0 or obs.max() >= model.n_symbols):
        raise ModelError("observation index out of alphabet range")
    return obs


def forward(
    model: HiddenMarkovModel, obs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Scaled forward pass.

    Args:
        model: the HMM.
        obs: (B, T) integer observation array (or (T,) for one sequence).

    Returns:
        ``(alpha, scales)`` where ``alpha`` has shape (B, T, N) with each
        ``alpha[b, t]`` normalized to sum 1, and ``scales`` has shape (B, T)
        holding the normalizers.
    """
    obs = _check_obs(model, obs)
    batch, length = obs.shape
    n = model.n_states
    alpha = np.empty((batch, length, n))
    scales = np.empty((batch, length))

    emission_t = model.emission.T  # (M, N): emission_t[o] = B[:, o]
    current = model.initial[None, :] * emission_t[obs[:, 0]]
    norm = current.sum(axis=1)
    norm = np.maximum(norm, SCALE_FLOOR)
    alpha[:, 0] = current / norm[:, None]
    scales[:, 0] = norm
    for t in range(1, length):
        current = (alpha[:, t - 1] @ model.transition) * emission_t[obs[:, t]]
        norm = current.sum(axis=1)
        norm = np.maximum(norm, SCALE_FLOOR)
        alpha[:, t] = current / norm[:, None]
        scales[:, t] = norm
    return alpha, scales


def backward(
    model: HiddenMarkovModel, obs: np.ndarray, scales: np.ndarray
) -> np.ndarray:
    """Scaled backward pass using the forward pass's normalizers.

    Returns:
        ``beta`` of shape (B, T, N), scaled so that
        ``alpha[b, t] * beta[b, t]`` is proportional to the state posterior.
    """
    obs = _check_obs(model, obs)
    batch, length = obs.shape
    n = model.n_states
    beta = np.empty((batch, length, n))
    beta[:, length - 1] = 1.0
    emission_t = model.emission.T
    for t in range(length - 2, -1, -1):
        weighted = beta[:, t + 1] * emission_t[obs[:, t + 1]]
        beta[:, t] = (weighted @ model.transition.T) / scales[:, t + 1][:, None]
    return beta


def log_likelihood(model: HiddenMarkovModel, obs: np.ndarray) -> np.ndarray:
    """Per-sequence ``log P(O | λ)``, shape (B,).

    When telemetry is on, every scored sequence's log-likelihood lands in
    the ``hmm.forward.loglik`` histogram (:data:`LOGLIK_BUCKETS`) — the
    scoring distribution the ISSUE's perf work reads.  The inner
    :func:`forward`/:func:`backward` recursions stay uninstrumented: they
    are the EM hot loop.
    """
    _, scales = forward(model, obs)
    loglik = np.log(scales).sum(axis=1)
    if telemetry.enabled():
        telemetry.counter_add("hmm.forward.calls")
        telemetry.counter_add("hmm.forward.sequences", int(loglik.shape[0]))
        telemetry.observe_many(
            "hmm.forward.loglik", loglik.tolist(), boundaries=LOGLIK_BUCKETS
        )
    return loglik


def log_likelihood_ragged(
    model: HiddenMarkovModel, sequences: "list[np.ndarray]"
) -> np.ndarray:
    """Per-sequence ``log P(O | λ)`` for sequences of *unequal* lengths.

    The batched :func:`log_likelihood` requires one shared length — fine for
    the paper's fixed 15-call segments, but the detection service drains a
    micro-batch of windows collected from many sessions, and those may mix
    lengths (e.g. tenants running different window sizes).  This entry point
    groups the batch by length and runs **one** vectorized forward pass per
    length group, so a drain still costs O(#distinct lengths) forward calls
    rather than O(batch).

    Scores come back aligned with the input order, and each value is
    bit-identical to what :func:`log_likelihood` returns for the same
    length group (it *is* the same call).

    Args:
        model: the HMM.
        sequences: encoded observation rows (1-D int arrays / lists), each
            of length >= 1.

    Returns:
        (len(sequences),) float array of log-likelihoods.
    """
    out = np.empty(len(sequences))
    if not sequences:
        return out
    by_length: dict[int, list[int]] = {}
    rows = [np.asarray(seq) for seq in sequences]
    for position, row in enumerate(rows):
        if row.ndim != 1 or row.shape[0] == 0:
            raise ModelError("each ragged sequence must be 1-D and non-empty")
        by_length.setdefault(row.shape[0], []).append(position)
    for length, positions in by_length.items():
        obs = np.stack([rows[position] for position in positions])
        out[positions] = log_likelihood(model, obs)
    return out


def posterior_states(
    model: HiddenMarkovModel, obs: np.ndarray
) -> np.ndarray:
    """State posteriors ``γ[b, t, i] = P[q_t = i | O_b, λ]``, shape (B, T, N)."""
    obs = _check_obs(model, obs)
    alpha, scales = forward(model, obs)
    beta = backward(model, obs, scales)
    gamma = alpha * beta
    totals = gamma.sum(axis=2, keepdims=True)
    totals = np.maximum(totals, SCALE_FLOOR)
    return gamma / totals
