"""Scaled forward/backward recursions, batched over equal-length sequences.

The evaluation works on fixed-length 15-call segments, thousands at a time,
so both recursions are vectorized across the batch axis: one (B, N) matrix
product per time step instead of a Python loop per sequence.

Scaling follows Rabiner: the forward variable is renormalized at every step
and the per-step normalizers (``scales``) carry the likelihood, so
``log P(O | λ) = Σ_t log scale_t`` without underflow.

Bulk scoring routes through :mod:`repro.hmm.kernels`: the tiled,
scales-only :func:`~repro.hmm.kernels.score_sequences` kernel is
bit-identical to running :func:`forward` and summing ``log(scales)`` but
never materializes the (B, T, N) forward variables, and
:func:`~repro.hmm.kernels.log_likelihood_unique` (re-exported here) scores
each *distinct* window once.  The full recursions below remain the
reference path for consumers that need the forward/backward variables
themselves (posteriors, Viterbi explanations, tests).
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..errors import ModelError
from .kernels import (
    LOGLIK_BUCKETS,
    SCALE_FLOOR,
    check_obs as _check_obs,
    log_likelihood_unique,
    score_sequences,
)
from .model import HiddenMarkovModel

__all__ = [
    "LOGLIK_BUCKETS",
    "SCALE_FLOOR",
    "backward",
    "forward",
    "log_likelihood",
    "log_likelihood_ragged",
    "log_likelihood_unique",
    "posterior_states",
]


def forward(
    model: HiddenMarkovModel, obs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Scaled forward pass.

    Args:
        model: the HMM.
        obs: (B, T) integer observation array (or (T,) for one sequence).

    Returns:
        ``(alpha, scales)`` where ``alpha`` has shape (B, T, N) with each
        ``alpha[b, t]`` normalized to sum 1, and ``scales`` has shape (B, T)
        holding the normalizers.
    """
    obs = _check_obs(model, obs)
    batch, length = obs.shape
    n = model.n_states
    alpha = np.empty((batch, length, n))
    scales = np.empty((batch, length))

    emission_t = model.emission.T  # (M, N): emission_t[o] = B[:, o]
    current = model.initial[None, :] * emission_t[obs[:, 0]]
    norm = current.sum(axis=1)
    norm = np.maximum(norm, SCALE_FLOOR)
    alpha[:, 0] = current / norm[:, None]
    scales[:, 0] = norm
    for t in range(1, length):
        current = (alpha[:, t - 1] @ model.transition) * emission_t[obs[:, t]]
        norm = current.sum(axis=1)
        norm = np.maximum(norm, SCALE_FLOOR)
        alpha[:, t] = current / norm[:, None]
        scales[:, t] = norm
    return alpha, scales


def backward(
    model: HiddenMarkovModel, obs: np.ndarray, scales: np.ndarray
) -> np.ndarray:
    """Scaled backward pass using the forward pass's normalizers.

    Returns:
        ``beta`` of shape (B, T, N), scaled so that
        ``alpha[b, t] * beta[b, t]`` is proportional to the state posterior.
    """
    obs = _check_obs(model, obs)
    batch, length = obs.shape
    n = model.n_states
    beta = np.empty((batch, length, n))
    beta[:, length - 1] = 1.0
    emission_t = model.emission.T
    for t in range(length - 2, -1, -1):
        weighted = beta[:, t + 1] * emission_t[obs[:, t + 1]]
        beta[:, t] = (weighted @ model.transition.T) / scales[:, t + 1][:, None]
    return beta


def log_likelihood(model: HiddenMarkovModel, obs: np.ndarray) -> np.ndarray:
    """Per-sequence ``log P(O | λ)``, shape (B,).

    Runs the tiled scales-only kernel
    (:func:`repro.hmm.kernels.score_sequences`) — bit-identical to the full
    :func:`forward` recursion, without materializing the forward variables.

    When telemetry is on, every scored sequence's log-likelihood lands in
    the ``hmm.forward.loglik`` histogram (:data:`LOGLIK_BUCKETS`) — the
    scoring distribution the ISSUE's perf work reads.  The inner
    recursions stay uninstrumented: they are the EM hot loop.
    """
    obs = _check_obs(model, obs)
    loglik = score_sequences(model, obs)
    if telemetry.enabled():
        telemetry.counter_add("hmm.forward.calls")
        telemetry.counter_add("hmm.forward.sequences", int(loglik.shape[0]))
        telemetry.observe_many(
            "hmm.forward.loglik", loglik.tolist(), boundaries=LOGLIK_BUCKETS
        )
    return loglik


def log_likelihood_ragged(
    model: HiddenMarkovModel, sequences: "list[np.ndarray]"
) -> np.ndarray:
    """Per-sequence ``log P(O | λ)`` for sequences of *unequal* lengths.

    The batched :func:`log_likelihood` requires one shared length — fine for
    the paper's fixed 15-call segments, but the detection service drains a
    micro-batch of windows collected from many sessions, and those may mix
    lengths (e.g. tenants running different window sizes).  This entry point
    groups the batch by length and scores each length group with **one**
    duplicate-aware pass (:func:`repro.hmm.kernels.log_likelihood_unique`),
    so a drain costs O(#distinct lengths) passes rather than O(batch), and
    identical windows *within* a group — common when many sessions watch
    the same hot code path — are scored once.

    Scores come back aligned with the input order, and each value is
    bit-identical to what :func:`log_likelihood` returns for the same
    length group (rows are scored independently, so deduplication cannot
    perturb them).

    Args:
        model: the HMM.
        sequences: encoded observation rows (1-D int arrays / lists), each
            of length >= 1.

    Returns:
        (len(sequences),) float array of log-likelihoods.
    """
    out = np.empty(len(sequences))
    if not sequences:
        return out
    by_length: dict[int, list[int]] = {}
    rows = [np.asarray(seq) for seq in sequences]
    for position, row in enumerate(rows):
        if row.ndim != 1 or row.shape[0] == 0:
            raise ModelError("each ragged sequence must be 1-D and non-empty")
        by_length.setdefault(row.shape[0], []).append(position)
    for length, positions in by_length.items():
        obs = np.stack([rows[position] for position in positions])
        out[positions] = log_likelihood_unique(model, obs)
    return out


def posterior_states(
    model: HiddenMarkovModel, obs: np.ndarray
) -> np.ndarray:
    """State posteriors ``γ[b, t, i] = P[q_t = i | O_b, λ]``, shape (B, T, N)."""
    obs = _check_obs(model, obs)
    alpha, scales = forward(model, obs)
    beta = backward(model, obs, scales)
    gamma = alpha * beta
    totals = gamma.sum(axis=2, keepdims=True)
    totals = np.maximum(totals, SCALE_FLOOR)
    return gamma / totals
