"""Fused, zero-allocation numpy kernels for the HMM hot paths.

This module is the lowest layer of :mod:`repro.hmm`: everything here takes
already-validated integer observation arrays and writes into preallocated
buffers.  :mod:`repro.hmm.forward` and :mod:`repro.hmm.baumwelch` build the
public API on top of it.

Three things live here:

* :class:`EMWorkspace` + :func:`em_forward`/:func:`em_update` — the
  Baum-Welch E-step split into a forward phase and an update phase.  Every
  per-timestep buffer (the forward variables, per-step normalizers, the
  emission-probability gathers, the ξ and emission accumulators) is
  allocated once per :func:`~repro.hmm.baumwelch.train` call and reused
  across iterations via ``out=``-style writes.  The forward phase returns
  the weighted mean training log-likelihood as a by-product, so the train
  loop never needs a separate monitoring pass over the training set.
* :func:`score_sequences` — a tiled, scales-only forward pass for bulk
  scoring.  It keeps only a (tile, N) working set instead of materializing
  the full (B, T, N) forward variables, and is **batch-invariant**: every
  matmul runs at a fixed (tile, N) shape (partial tiles are padded), so a
  row's score is a pure function of the row's content — scoring any subset
  of a batch is bit-identical to scoring the full batch.
* :func:`log_likelihood_unique` — duplicate-aware scoring: hash rows,
  score each distinct window once, scatter the results back through the
  inverse index.  Sliding windows over repetitive call streams (the eval
  runners' exploit windows, the service's drain batches) are often mostly
  duplicates, so this multiplies bulk-scoring throughput on top of the
  tiled kernel.  Telemetry stays multiplicity-weighted: the scattered
  (full-batch) scores land in the ``hmm.forward.loglik`` histogram, not
  just the unique ones.
* :class:`StreamingState` + :func:`streaming_step` — the incremental
  O(N²)-per-event forward filter for live feeds: the normalized forward
  (belief) state is carried across events in preallocated buffers and a
  ring buffer keeps the last ``window`` per-step log scale factors, so a
  sliding W-call surprisal costs one belief update per event instead of
  re-running the W-step recursion.  Bit-identical to replaying the
  unfused filter (``StreamingScorer``'s verbatim legacy path) — pinned by
  ``tests/test_streaming_incremental.py`` and the exit-1 gate in
  ``benchmarks/bench_streaming_forward.py``.
* :func:`score_fleet` / :func:`log_likelihood_fleet` — cross-detector
  batched scoring for the service drain: same-shape (N, M) detectors'
  transition/emission tensors are stacked into (D, ·, ·) operands and the
  whole fleet's windows walk the recursion through batched 3-D matmuls —
  a handful of kernel launches per drain instead of one GEMM sequence per
  detector, bit-identical per row to :func:`score_sequences`.

Bit-identity notes (the contracts ``tests/test_kernels.py`` pins):

* ξ is accumulated with one ordered GEMM per timestep over precomputed
  contiguous operands.  A single ``einsum('bti,btj->ij')`` over (B, T-1, N)
  operands was measured *slower* than the GEMM loop on OpenBLAS (einsum
  does not dispatch to BLAS for this contraction) and changes the
  floating-point reduction order; the loop is both faster and reproducible
  against a per-timestep reference.
* Emission statistics are accumulated per timestep with per-state
  ``np.bincount`` — bit-identical to ``np.add.at`` (both add in index
  order) and several times faster.  ``np.add.reduceat`` is *not*
  bit-identical (pairwise summation) and is not used.
* Per-step normalizers are stored batch-major, shape (B, T), so the final
  ``np.log(scales).sum(axis=1)`` reduces in exactly the order the
  unfused implementation used.
* BLAS GEMM results are only reproducible per-row at a *fixed* operand
  shape: a single row dispatches to gemv, odd row counts trigger edge
  micro-kernels for some N (observed at N mod 8 in {1, 2, 3}, N ≥ 17),
  and different size regimes pick different blockings — all with
  last-bit differences.  The scoring kernel therefore pins its GEMM
  height (see :func:`score_sequences`); the EM kernels are compared
  against a reference with identical operand shapes and layouts.
* Per-row GEMM results *are* stable across heights once the height is a
  multiple of :data:`FLEET_GEMM_UNIT` (= 8): measured over N in 2..64,
  ``(X @ A)[:h]`` differs from ``X[:h] @ A`` only at h in {1, 2, 3, 5}
  (gemv and the odd-row edge kernels above), and a batched 3-D
  ``np.matmul`` is bit-identical per (H, N) slice to the 2-D call.  That
  is what lets :func:`score_fleet` pad each drain's slice height to a
  multiple of 8 instead of :data:`SCORE_TILE` and stay bit-identical to
  the 512-row tiles — the property is re-verified at runtime by the
  bench's exit-1 gate and the differential suites, so a BLAS that
  breaks it fails loudly instead of scoring differently.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..errors import ModelError
from . import backends
from .model import HiddenMarkovModel

#: Floor applied to per-step normalizers so a zero-probability observation
#: yields a very negative — but finite — log-likelihood.
SCALE_FLOOR = 1e-300

#: Telemetry bucket bounds for raw per-sequence ``log P(O | λ)`` (a normal
#: 15-call segment typically lands in the -40..0 range; anomalies below).
LOGLIK_BUCKETS: tuple[float, ...] = (
    -500.0, -200.0, -100.0, -75.0, -50.0, -40.0, -30.0, -25.0,
    -20.0, -15.0, -10.0, -7.5, -5.0, -2.5, -1.0, 0.0,
)

#: Rows per tile in :func:`score_sequences`.  Chosen so one tile's working
#: set (a few (tile, N) float panels) stays cache-resident; per-row results
#: are independent of the tile size.
SCORE_TILE = 512

#: Fixed seed for the row-hash multipliers in :func:`log_likelihood_unique`
#: — deterministic across processes, so serial and parallel runs dedup (and
#: therefore score) identically.
_DEDUP_SEED = 0x5EED_CA11

#: GEMM heights that are a multiple of this are per-row bit-identical to
#: any other multiple (including :data:`SCORE_TILE`) on the BLAS builds we
#: target — see the module docstring.  :func:`score_fleet` pads its slice
#: height up to this unit.
FLEET_GEMM_UNIT = 8

__all__ = [
    "FLEET_GEMM_UNIT",
    "LOGLIK_BUCKETS",
    "SCALE_FLOOR",
    "SCORE_TILE",
    "EMWorkspace",
    "StreamingState",
    "check_obs",
    "em_forward",
    "em_step",
    "em_update",
    "log_likelihood_fleet",
    "log_likelihood_unique",
    "score_fleet",
    "score_sequences",
    "streaming_rebind",
    "streaming_recent",
    "streaming_reset",
    "streaming_step",
    "streaming_step_with",
]


def check_obs(model: HiddenMarkovModel, obs: np.ndarray) -> np.ndarray:
    """Validate and normalize an observation array to (B, T) int form."""
    obs = np.asarray(obs)
    if obs.ndim == 1:
        obs = obs[None, :]
    if obs.ndim != 2:
        raise ModelError(f"observations must be (B, T), got shape {obs.shape}")
    if obs.size and (obs.min() < 0 or obs.max() >= model.n_symbols):
        raise ModelError("observation index out of alphabet range")
    return obs


# ---------------------------------------------------------------------------
# Bulk scoring
# ---------------------------------------------------------------------------


def score_sequences(
    model: HiddenMarkovModel, obs: np.ndarray, tile: int = SCORE_TILE
) -> np.ndarray:
    """Per-sequence ``log P(O | λ)`` via a tiled, scales-only forward pass.

    Every row's score is a pure function of that row's content: the
    recursion runs in tiles of *exactly* ``tile`` rows — a partial final
    tile is padded with throwaway rows — so every matmul the kernel issues
    has the same (tile, N) shape no matter how large the batch is.  BLAS
    GEMM results are only reproducible per-row when the operand shapes
    match (a gemv-dispatched single row, or the odd-row edge kernels some
    N trigger, accumulate in a different order), so the fixed tile height
    is what makes scoring *batch-invariant*: scoring a subset of rows is
    bit-identical to scoring them inside any larger batch.
    :func:`log_likelihood_unique` relies on exactly this property.

    It never materializes the (B, T, N) forward variables — each tile
    walks the recursion with a (tile, N) working set written in place.

    Dispatch seam: if a non-default kernel backend is active (see
    :mod:`repro.hmm.backends`) and accepts the call, its — probed
    bit-identical — result is returned; otherwise the numpy path runs.

    ``obs`` must already be validated (see :func:`check_obs`).
    """
    backend = backends.active_backend()
    if backend.dispatches:
        out = backend.score_sequences(model, obs, tile)
        if out is not None:
            return out
    return _score_sequences_numpy(model, obs, tile)


def _score_sequences_numpy(
    model: HiddenMarkovModel, obs: np.ndarray, tile: int = SCORE_TILE
) -> np.ndarray:
    """The numpy batch scorer — also the compiled backend's oracle."""
    batch, length = obs.shape
    out = np.empty(batch)
    if batch == 0 or length == 0:
        out[:] = 0.0
        return out
    emission_t = np.ascontiguousarray(model.emission.T)  # (M, N)
    initial = model.initial[None, :]
    transition = model.transition
    n = model.n_states
    tile = max(int(tile), 1)
    alpha = np.empty((tile, n))
    product = np.empty((tile, n))
    gather = np.empty((tile, n))
    scales = np.empty((tile, length))
    padded: np.ndarray | None = None
    for start in range(0, batch, tile):
        stop = min(start + tile, batch)
        rows = stop - start
        if rows == tile:
            block = obs[start:stop]
        else:
            # Partial tile: pad with symbol-0 rows so the GEMM height stays
            # fixed; the padding's scores are computed and discarded.
            if padded is None:
                padded = np.zeros((tile, length), dtype=obs.dtype)
            padded[:rows] = obs[start:stop]
            padded[rows:] = 0
            block = padded
        np.take(emission_t, block[:, 0], axis=0, out=gather)
        np.multiply(initial, gather, out=alpha)
        norm = scales[:, 0]
        np.sum(alpha, axis=1, out=norm)
        np.maximum(norm, SCALE_FLOOR, out=norm)
        alpha /= norm[:, None]
        for t in range(1, length):
            np.matmul(alpha, transition, out=product)
            np.take(emission_t, block[:, t], axis=0, out=gather)
            np.multiply(product, gather, out=alpha)
            norm = scales[:, t]
            np.sum(alpha, axis=1, out=norm)
            np.maximum(norm, SCALE_FLOOR, out=norm)
            alpha /= norm[:, None]
        np.log(scales, out=scales)
        np.sum(scales[:rows], axis=1, out=out[start:stop])
    return out


_MULTIPLIER_CACHE: dict[int, np.ndarray] = {}


def _hash_multipliers(length: int) -> np.ndarray:
    """Fixed odd 64-bit row-hash multipliers for a given row length.

    Cached per length (a benign race: concurrent fills compute the same
    deterministic vector) so repeated dedup calls skip the RNG setup.
    """
    multipliers = _MULTIPLIER_CACHE.get(length)
    if multipliers is None:
        rng = np.random.default_rng(_DEDUP_SEED)
        multipliers = rng.integers(
            1, np.iinfo(np.int64).max, size=length, dtype=np.int64
        ) | np.int64(1)
        _MULTIPLIER_CACHE[length] = multipliers
    return multipliers


def _dedup_rows(obs: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Find duplicate rows: ``(unique_rows, inverse)`` or ``None``.

    Rows are keyed by a 64-bit multiplicative hash (wraparound int64
    arithmetic with fixed odd multipliers — deterministic across
    processes), which costs one GEMV-shaped pass instead of
    ``np.unique(axis=0)``'s lexicographic sort over full rows.  The
    candidate grouping is then *verified* by materializing the
    representative rows; a hash collision (vanishingly unlikely) falls
    back to the exact structured ``np.unique``.  Returns ``None`` when
    deduplication cannot help (fewer than two rows, or all rows unique).
    """
    batch = obs.shape[0]
    if batch < 2:
        return None
    keys = (obs.astype(np.int64, copy=False) * _hash_multipliers(obs.shape[1])).sum(
        axis=1
    )
    _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    if first.size == batch:
        return None
    unique_rows = obs[first]
    if not np.array_equal(unique_rows[inverse], obs):  # pragma: no cover
        unique_rows, inverse = np.unique(obs, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        if unique_rows.shape[0] == batch:
            return None
    return unique_rows, inverse


def _record_score_telemetry(
    loglik: np.ndarray, batch: int, n_unique: int
) -> None:
    """Duplicate-aware scoring telemetry for one scored batch.

    Shared by :func:`log_likelihood_unique` and (per fleet entry)
    :func:`log_likelihood_fleet`, so the fused cross-detector drain emits
    exactly the counters the per-detector path would have.
    """
    telemetry.counter_add("hmm.forward.calls")
    telemetry.counter_add("hmm.forward.sequences", batch)
    telemetry.observe_many(
        "hmm.forward.loglik", loglik.tolist(), boundaries=LOGLIK_BUCKETS
    )
    telemetry.counter_add("hmm.score.dedup.calls")
    telemetry.counter_add("hmm.score.dedup.sequences", batch)
    telemetry.counter_add("hmm.score.dedup.unique", int(n_unique))
    if batch:
        telemetry.gauge_set("hmm.score.unique_ratio", n_unique / batch)


def log_likelihood_unique(
    model: HiddenMarkovModel, obs: np.ndarray
) -> np.ndarray:
    """Duplicate-aware ``log P(O | λ)``, bit-identical to plain scoring.

    Hashes rows, scores each distinct window once with
    :func:`score_sequences`, and scatters the result back through the
    inverse index.  Because the scoring kernel is batch-invariant (fixed
    GEMM height; a row's score depends only on the row's content), the
    scattered scores are bit-identical to scoring the full batch —
    duplicates just stop paying for the recursion more than once.

    Telemetry stays multiplicity-weighted: the *scattered* per-sequence
    scores land in the ``hmm.forward.loglik`` histogram and the
    ``hmm.forward.sequences`` counter, exactly as if every row had been
    scored; ``hmm.score.unique_ratio`` reports how much of the batch was
    distinct (1.0 = no duplicates).
    """
    obs = check_obs(model, obs)
    dedup = _dedup_rows(obs)
    if dedup is None:
        loglik = score_sequences(model, obs)
        n_unique = obs.shape[0]
    else:
        unique_rows, inverse = dedup
        loglik = score_sequences(model, unique_rows)[inverse]
        n_unique = unique_rows.shape[0]
    if telemetry.enabled():
        _record_score_telemetry(loglik, int(obs.shape[0]), n_unique)
    return loglik


# ---------------------------------------------------------------------------
# Cross-detector (fleet) batched scoring
# ---------------------------------------------------------------------------


def score_fleet(
    models: "list[HiddenMarkovModel]", obs_list: "list[np.ndarray]"
) -> "list[np.ndarray]":
    """Per-sequence ``log P(O | λ_d)`` for many same-shape models at once.

    The service's fused drain path: instead of walking the scaled forward
    recursion once per detector (D separate (tile, N) GEMM sequences), the
    fleet's transition/emission tensors are stacked into (D, N, N) /
    (D, M, N) operands and every timestep is **one** batched 3-D
    ``np.matmul`` over a (D, H, N) working set — a handful of kernel
    launches per drain, regardless of fleet size.

    Bit-identity with :func:`score_sequences` (and therefore with the
    per-detector drain) rests on the height-invariance property in the
    module docstring: each model's rows sit in a (H, N) slice whose height
    H is the fleet's max batch padded up to a multiple of
    :data:`FLEET_GEMM_UNIT`, and per-slice batched-matmul results equal
    the 2-D calls the tiled kernel issues.  ``tests/test_kernels.py`` and
    the exit-1 gate in ``benchmarks/bench_streaming_forward.py`` enforce
    this at runtime.

    Args:
        models: fleet sharing one ``(n_states, n_symbols)`` shape.
        obs_list: one validated (B_d, T) int array per model — one shared
            length T, per-model batch sizes.

    Returns:
        One (B_d,) score array per model, aligned with ``models``.
    """
    if not models or len(models) != len(obs_list):
        raise ModelError("score_fleet needs one observation batch per model")
    n, m = models[0].n_states, models[0].n_symbols
    length = obs_list[0].shape[1]
    for model, obs in zip(models, obs_list):
        if model.n_states != n or model.n_symbols != m:
            raise ModelError(
                "score_fleet requires same-shape models; mixed-shape fleets "
                "must be scored per shape group"
            )
        if obs.ndim != 2 or obs.shape[1] != length:
            raise ModelError("score_fleet requires one shared window length")
        if obs.shape[0] == 0:
            raise ModelError("score_fleet batches must be non-empty")
    if length == 0:
        return [np.zeros(obs.shape[0]) for obs in obs_list]
    backend = backends.active_backend()
    if backend.dispatches:
        out = backend.score_fleet(models, obs_list)
        if out is not None:
            return out
    return _score_fleet_numpy(models, obs_list)


def _score_fleet_numpy(
    models: "list[HiddenMarkovModel]", obs_list: "list[np.ndarray]"
) -> "list[np.ndarray]":
    """The numpy fleet contraction — also the compiled backend's oracle.

    Inputs must already satisfy :func:`score_fleet`'s validation (same
    shape, shared non-zero length, non-empty batches).
    """
    n = models[0].n_states
    length = obs_list[0].shape[1]
    fleet = len(models)
    batches = [obs.shape[0] for obs in obs_list]
    height = -(-max(batches) // FLEET_GEMM_UNIT) * FLEET_GEMM_UNIT
    # Padding rows are symbol 0, exactly like score_sequences' partial
    # tiles: their scores are computed and discarded.
    block = np.zeros((fleet, height, length), dtype=np.int64)
    for d, obs in enumerate(obs_list):
        block[d, : obs.shape[0]] = obs
    transition = np.stack([model.transition for model in models])
    emission_t = np.stack(
        [np.ascontiguousarray(model.emission.T) for model in models]
    )  # (D, M, N)
    initial = np.stack([model.initial for model in models])[:, None, :]
    didx = np.arange(fleet)[:, None]

    alpha = np.empty((fleet, height, n))
    product = np.empty((fleet, height, n))
    scales = np.empty((fleet, height, length))
    np.multiply(initial, emission_t[didx, block[:, :, 0]], out=alpha)
    norm = scales[:, :, 0]
    np.sum(alpha, axis=2, out=norm)
    np.maximum(norm, SCALE_FLOOR, out=norm)
    alpha /= norm[:, :, None]
    for t in range(1, length):
        np.matmul(alpha, transition, out=product)
        np.multiply(product, emission_t[didx, block[:, :, t]], out=alpha)
        norm = scales[:, :, t]
        np.sum(alpha, axis=2, out=norm)
        np.maximum(norm, SCALE_FLOOR, out=norm)
        alpha /= norm[:, :, None]
    np.log(scales, out=scales)
    return [np.sum(scales[d, :rows], axis=1) for d, rows in enumerate(batches)]


def log_likelihood_fleet(
    models: "list[HiddenMarkovModel]", obs_list: "list[np.ndarray]"
) -> "list[np.ndarray]":
    """Duplicate-aware fleet scoring — the fused drain's entry point.

    Per model: validate, hash-dedup the batch (:func:`_dedup_rows`), then
    score every model's *distinct* rows in one :func:`score_fleet`
    contraction and scatter back through the inverse indices.  Each
    model's scattered scores — and its telemetry — are bit-identical to
    what a :func:`log_likelihood_unique` call per model would produce;
    only the kernel-launch count changes.
    """
    if not models or len(models) != len(obs_list):
        raise ModelError(
            "log_likelihood_fleet needs one observation batch per model"
        )
    uniques: list[np.ndarray] = []
    inverses: list[np.ndarray | None] = []
    checked: list[np.ndarray] = []
    for model, obs in zip(models, obs_list):
        obs = check_obs(model, obs)
        checked.append(obs)
        dedup = _dedup_rows(obs)
        if dedup is None:
            uniques.append(obs)
            inverses.append(None)
        else:
            unique_rows, inverse = dedup
            uniques.append(unique_rows)
            inverses.append(inverse)
    scored = score_fleet(models, uniques)
    out: list[np.ndarray] = []
    for obs, unique_scores, inverse in zip(checked, scored, inverses):
        loglik = unique_scores if inverse is None else unique_scores[inverse]
        if telemetry.enabled():
            _record_score_telemetry(
                loglik, int(obs.shape[0]), int(unique_scores.shape[0])
            )
        out.append(loglik)
    return out


# ---------------------------------------------------------------------------
# Incremental streaming forward
# ---------------------------------------------------------------------------


class StreamingState:
    """Carried state for the incremental O(N²)-per-event forward filter.

    Owns everything the per-event update touches, preallocated once:

    * ``belief`` — the normalized forward (filtering) distribution
      ``P[state | history]``;
    * ``ring`` — the last ``window`` per-step **surprisals**
      (``-log scale_t``, the negated log scale factors of the scaled
      forward recursion) in a ring buffer; ``pos`` is the next write slot
      and ``count`` the events since the last reset;
    * contiguous scratch (``predictive``/``joint``/``ordered``) and a
      row-major emission transpose, so :func:`streaming_step` allocates
      nothing.

    The state belongs to exactly one model at a time: after a warm-swap,
    :func:`streaming_rebind` must run before the next step — it restarts
    the belief from the new model's initial distribution (the old
    posterior lives over the old model's renumbered/resized hidden
    states) while the surprisal ring survives for windowed continuity.
    """

    __slots__ = (
        "window",
        "belief",
        "started",
        "ring",
        "count",
        "pos",
        "emission_t",
        "predictive",
        "joint",
        "ordered",
        "backend_ctx",
    )

    def __init__(self, model: HiddenMarkovModel, window: int) -> None:
        if window <= 0:
            raise ModelError("window must be positive")
        n = model.n_states
        self.window = int(window)
        self.belief = model.initial.copy()
        self.started = False
        self.ring = np.zeros(self.window)
        self.count = 0
        self.pos = 0
        self.emission_t = np.ascontiguousarray(model.emission.T)
        self.predictive = np.empty(n)
        self.joint = np.empty(n)
        self.ordered = np.empty(self.window)
        #: Opaque per-backend cache (e.g. the compiled backend's pointer
        #: pack); invalidated by reset/rebind and on model/buffer change.
        self.backend_ctx = None


def streaming_step(
    model: HiddenMarkovModel, state: StreamingState, index: int
) -> float:
    """Consume one encoded symbol; returns its surprise.

    One belief update — a (N,)@(N, N) product, an elementwise emission
    gather/multiply, one normalization — written into ``state``'s
    preallocated buffers.  Operation order matches the unfused
    ``StreamingScorer`` filter exactly (``@`` *is* ``np.matmul``; the
    emission row is the same values as the strided column slice), so the
    returned surprisals and the carried belief are bit-identical to the
    legacy path.

    Dispatch seam: an active non-default backend (see
    :mod:`repro.hmm.backends`) may serve the step — with identical state
    bookkeeping and probed bit-identical results — before the numpy
    path runs.
    """
    backend = backends.active_backend()
    if backend.dispatches:
        out = backend.streaming_step(model, state, index)
        if out is not None:
            return out
    return _streaming_step_numpy(model, state, index)


def streaming_step_with(
    backend, model: HiddenMarkovModel, state: StreamingState, index: int
) -> float:
    """:func:`streaming_step` under an *explicit* backend.

    The per-event entry point for callers that carry their own backend
    choice (``StreamingScorer(kernel_backend=...)``): dispatching through
    a held backend instance skips the thread-local scope push/pop that
    :func:`~repro.hmm.backends.backend_scope` would cost per event.
    ``backend=None`` means "plain numpy", bypassing the ambient scope.
    """
    if backend is not None and backend.dispatches:
        out = backend.streaming_step(model, state, index)
        if out is not None:
            return out
    return _streaming_step_numpy(model, state, index)


def _streaming_step_numpy(
    model: HiddenMarkovModel, state: StreamingState, index: int
) -> float:
    """The numpy streaming step — also the compiled backend's oracle."""
    if state.started:
        np.matmul(state.belief, model.transition, out=state.predictive)
        predictive = state.predictive
    else:
        predictive = state.belief
        state.started = True
    np.multiply(predictive, state.emission_t[index], out=state.joint)
    total = float(state.joint.sum())
    total = max(total, SCALE_FLOOR)
    np.divide(state.joint, total, out=state.belief)
    surprise = -float(np.log(total))
    state.ring[state.pos] = surprise
    state.pos += 1
    if state.pos == state.window:
        state.pos = 0
    state.count += 1
    return surprise


def streaming_recent(state: StreamingState) -> np.ndarray:
    """The last ``min(count, window)`` surprisals, oldest first.

    Stream order matters for bit-identity: ``np.mean`` reduces pairwise in
    element order, and the legacy path's deque holds the surprisals in
    arrival order.  Before the ring wraps this is a contiguous prefix
    view; after wraparound the two ring halves are copied (oldest half
    first) into the preallocated ``ordered`` buffer — O(window) scalar
    copies, no allocation.
    """
    if state.count < state.window:
        return state.ring[: state.count]
    if state.pos == 0:
        return state.ring
    split = state.window - state.pos
    state.ordered[:split] = state.ring[state.pos :]
    state.ordered[split:] = state.ring[: state.pos]
    return state.ordered


def streaming_reset(model: HiddenMarkovModel, state: StreamingState) -> None:
    """Restart the filter in place (process restart / trace gap)."""
    np.copyto(state.belief, model.initial)
    state.started = False
    state.count = 0
    state.pos = 0
    state.backend_ctx = None


def streaming_rebind(model: HiddenMarkovModel, state: StreamingState) -> None:
    """Invalidate the carried forward state for a warm-swapped model.

    The belief restarts from the new model's initial distribution and the
    emission transpose / scratch buffers are rebuilt (reallocated only if
    the state count changed); the surprisal ring, ``count``, and ``pos``
    are deliberately kept so the windowed score stays continuous across
    the swap.
    """
    n = model.n_states
    if state.belief.shape[0] != n:
        state.belief = np.empty(n)
        state.predictive = np.empty(n)
        state.joint = np.empty(n)
    np.copyto(state.belief, model.initial)
    state.started = False
    state.emission_t = np.ascontiguousarray(model.emission.T)
    state.backend_ctx = None


# ---------------------------------------------------------------------------
# Baum-Welch E-step
# ---------------------------------------------------------------------------


class EMWorkspace:
    """Preallocated buffers for the fused Baum-Welch E-step.

    Lifecycle: :meth:`bind` once per :func:`~repro.hmm.baumwelch.train`
    call (allocation is skipped when the batch shape matches the previous
    binding), then alternate :func:`em_forward` / :func:`em_update` across
    iterations — every pass writes into the same buffers, so the EM loop
    allocates nothing per iteration beyond the (small) updated parameter
    matrices themselves.

    A workspace holds statistics for exactly one model at a time:
    :func:`em_update` refuses to run unless :func:`em_forward` was called
    for the same model since the last update, which is what makes sharing
    one workspace across many ``train()`` calls safe.
    """

    def __init__(self) -> None:
        self._shape_key: tuple[int, int, int, int] | None = None
        self._pending: HiddenMarkovModel | None = None
        self._passes_served = 0

    def bind(
        self,
        model: HiddenMarkovModel,
        obs: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Attach a training batch; (re)allocate buffers only on shape change."""
        batch, length = obs.shape
        n, m = model.n_states, model.n_symbols
        key = (batch, length, n, m)
        if key != self._shape_key:
            self._shape_key = key
            self.emit_obs = np.empty((length, batch, n))
            self.alpha = np.empty((length, batch, n))
            self.scales = np.empty((batch, length))
            self.log_scales = np.empty((batch, length))
            self.row_loglik = np.empty(batch)
            self.product = np.empty((batch, n))
            self.weighted_alpha = np.empty((batch, n))
            self.right = np.empty((batch, n))
            self.ab = np.empty((batch, n))
            self.beta_a = np.empty((batch, n))
            self.beta_b = np.empty((batch, n))
            self.gamma_norm = np.empty(batch)
            self.coeff = np.empty(batch)
            self.contrib = np.empty((batch, n))
            self.xi = np.empty((n, n))
            self.xi_step = np.empty((n, n))
            self.emit_sum = np.empty((n, m))
        # Timestep-major observation copy: every per-t index column the
        # kernels touch becomes contiguous.
        self.obs_t = np.ascontiguousarray(obs.T)
        self.weights = np.asarray(weights, dtype=float)
        self.weights_col = self.weights[:, None]
        self._pending = None
        self._passes_served = 0


def em_forward(model: HiddenMarkovModel, workspace: EMWorkspace) -> float:
    """Forward phase of one EM iteration.

    Fills the workspace's timestep-major forward variables, per-step
    normalizers, and emission gathers for ``model``, and returns the
    weighted mean training log-likelihood of the bound batch under
    ``model`` — the convergence-monitor value, obtained for free instead
    of via a second forward pass.
    """
    ws = workspace
    if ws._shape_key is None:
        raise ModelError("EMWorkspace.bind() must be called before em_forward")
    length = ws.obs_t.shape[0]
    emission_t = np.ascontiguousarray(model.emission.T)  # (M, N)
    np.take(emission_t, ws.obs_t, axis=0, out=ws.emit_obs)
    current = ws.alpha[0]
    np.multiply(model.initial[None, :], ws.emit_obs[0], out=current)
    norm = ws.scales[:, 0]
    np.sum(current, axis=1, out=norm)
    np.maximum(norm, SCALE_FLOOR, out=norm)
    current /= norm[:, None]
    for t in range(1, length):
        current = ws.alpha[t]
        np.matmul(ws.alpha[t - 1], model.transition, out=current)
        np.multiply(current, ws.emit_obs[t], out=current)
        norm = ws.scales[:, t]
        np.sum(current, axis=1, out=norm)
        np.maximum(norm, SCALE_FLOOR, out=norm)
        current /= norm[:, None]
    np.log(ws.scales, out=ws.log_scales)
    np.sum(ws.log_scales, axis=1, out=ws.row_loglik)
    loglik = float(np.average(ws.row_loglik, weights=ws.weights))
    if ws._passes_served:
        telemetry.counter_add("hmm.em.workspace_reuses")
    ws._passes_served += 1
    ws._pending = model
    return loglik


def em_update(
    model: HiddenMarkovModel,
    workspace: EMWorkspace,
    config,
) -> HiddenMarkovModel:
    """Backward/accumulate/M phase of one EM iteration.

    Consumes the statistics :func:`em_forward` left in the workspace for
    ``model`` and returns the re-estimated model.  The backward recursion,
    ξ accumulation, and emission statistics are fused into a single
    reverse sweep over timesteps — no (B, T, N) backward or posterior
    array is ever materialized.
    """
    ws = workspace
    if ws._pending is not model:
        raise ModelError(
            "em_update requires em_forward() on the same model first "
            "(the workspace holds per-timestep statistics for exactly one "
            "forward phase at a time)"
        )
    length = ws.obs_t.shape[0]
    n, m = model.n_states, model.n_symbols
    transition = model.transition
    transition_t = np.ascontiguousarray(transition.T)
    ws.xi.fill(0.0)
    ws.emit_sum.fill(0.0)
    initial_raw: np.ndarray | None = None

    def accumulate(t: int, ab: np.ndarray) -> None:
        """Fold timestep ``t``'s posterior numerators (γ before
        normalization) into the emission statistics — and, at t=0, the
        initial-distribution numerator."""
        nonlocal initial_raw
        np.sum(ab, axis=1, out=ws.gamma_norm)
        np.maximum(ws.gamma_norm, SCALE_FLOOR, out=ws.gamma_norm)
        np.divide(ws.weights, ws.gamma_norm, out=ws.coeff)
        np.multiply(ab, ws.coeff[:, None], out=ws.contrib)
        observed = ws.obs_t[t]
        for i in range(n):
            ws.emit_sum[i] += np.bincount(
                observed, weights=ws.contrib[:, i], minlength=m
            )
        if t == 0:
            initial_raw = ws.contrib.sum(axis=0)

    # t = T-1: β is all ones, so the posterior numerator is α itself.
    accumulate(length - 1, ws.alpha[length - 1])
    beta_next, beta_current = ws.beta_a, ws.beta_b
    beta_next.fill(1.0)
    for t in range(length - 2, -1, -1):
        scale_next = ws.scales[:, t + 1][:, None]
        np.multiply(beta_next, ws.emit_obs[t + 1], out=ws.product)
        np.divide(ws.product, scale_next, out=ws.right)
        np.multiply(ws.alpha[t], ws.weights_col, out=ws.weighted_alpha)
        np.matmul(ws.weighted_alpha.T, ws.right, out=ws.xi_step)
        ws.xi += ws.xi_step
        np.matmul(ws.right, transition_t, out=beta_current)
        np.multiply(ws.alpha[t], beta_current, out=ws.ab)
        accumulate(t, ws.ab)
        beta_next, beta_current = beta_current, beta_next

    np.multiply(ws.xi, transition, out=ws.xi)
    # The M-step allocates fresh parameter matrices: they become the new
    # model's owned arrays and must not alias reusable workspace buffers.
    new_transition = ws.xi + config.transition_floor
    new_transition /= new_transition.sum(axis=1, keepdims=True)
    new_emission = ws.emit_sum + config.emission_floor
    new_emission /= new_emission.sum(axis=1, keepdims=True)
    if config.update_initial:
        new_initial = np.maximum(initial_raw, 0.0)
        new_initial = new_initial / new_initial.sum()
    else:
        new_initial = model.initial
    ws._pending = None
    return HiddenMarkovModel(
        transition=new_transition,
        emission=new_emission,
        initial=new_initial,
        symbols=model.symbols,
        state_labels=model.state_labels,
    )


def em_step(
    model: HiddenMarkovModel,
    obs: np.ndarray,
    weights: np.ndarray,
    config,
    workspace: EMWorkspace | None = None,
) -> tuple[HiddenMarkovModel, float]:
    """One full EM iteration (bind + forward + update).

    Returns ``(updated_model, loglik)`` where ``loglik`` is the weighted
    mean training log-likelihood under the *input* model — the same
    contract the unfused ``_em_step`` had.  Convenience wrapper for tests
    and one-shot callers; :func:`~repro.hmm.baumwelch.train` drives the
    phases directly so one bind serves every iteration.
    """
    ws = workspace if workspace is not None else EMWorkspace()
    ws.bind(model, obs, weights)
    loglik = em_forward(model, ws)
    return em_update(model, ws, config), loglik
