"""Hidden Markov model substrate: parameters, inference, and EM training.

Implemented from scratch on numpy (the paper used the Jahmm Java library):
scaled forward/backward, batched Baum-Welch with a held-out termination set,
and random initialization for the Regular baselines.
"""

from .baumwelch import TrainingConfig, TrainingReport, train
from .forward import (
    backward,
    forward,
    log_likelihood,
    log_likelihood_ragged,
    log_likelihood_unique,
    posterior_states,
)
from .kernels import EMWorkspace
from .model import UNKNOWN_SYMBOL, HiddenMarkovModel, ensure_alphabet_with_unknown
from .random_init import random_model
from .serialize import load_model, save_model
from .viterbi import (
    DecodedPath,
    PositionExplanation,
    explain_segment,
    most_suspicious_positions,
    viterbi,
)

__all__ = [
    "UNKNOWN_SYMBOL",
    "DecodedPath",
    "EMWorkspace",
    "HiddenMarkovModel",
    "PositionExplanation",
    "TrainingConfig",
    "TrainingReport",
    "backward",
    "ensure_alphabet_with_unknown",
    "explain_segment",
    "forward",
    "load_model",
    "log_likelihood",
    "log_likelihood_ragged",
    "log_likelihood_unique",
    "most_suspicious_positions",
    "posterior_states",
    "random_model",
    "save_model",
    "train",
    "viterbi",
]
