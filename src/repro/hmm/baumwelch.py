"""Batched Baum-Welch (EM) training over fixed-length segments.

The paper trains every compared model with "standard HMM procedures": EM on
normal 15-call segments, with 20 % of the normal data held out as a
*termination set* — training stops when the held-out likelihood stops
improving (Section V-A).  Deduplicated segments carry multiplicity weights
so the statistics match the raw trace distribution without redundant work.

Each EM iteration costs ``O(B · T · N²)`` — the ``T · S²`` per-sequence cost
the paper quotes — which is why the state reduction of
:mod:`repro.reduction` translates directly into training speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..errors import ModelError
from .forward import SCALE_FLOOR, backward, forward, log_likelihood
from .model import HiddenMarkovModel


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs for Baum-Welch training.

    Attributes:
        max_iterations: hard EM iteration cap.
        min_improvement: minimum gain in mean held-out log-likelihood per
            iteration to count as "significant improvement".
        patience: number of consecutive non-improving iterations tolerated
            before stopping (the paper stops at "no significant
            improvement on the termination data set").
        emission_floor: probability floor mixed into emission rows after
            each M-step, so unseen symbols stay representable.
        transition_floor: same for transition rows.
        update_initial: whether EM re-estimates π (statically-initialized
            models may want to keep the analysis-derived π).
    """

    max_iterations: int = 30
    min_improvement: float = 1e-3
    patience: int = 2
    emission_floor: float = 1e-6
    transition_floor: float = 1e-8
    update_initial: bool = True


@dataclass
class TrainingReport:
    """What happened during one training run."""

    iterations: int = 0
    train_log_likelihood: list[float] = field(default_factory=list)
    holdout_log_likelihood: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_holdout(self) -> float:
        return self.holdout_log_likelihood[-1] if self.holdout_log_likelihood else float("-inf")


def _em_step(
    model: HiddenMarkovModel,
    obs: np.ndarray,
    weights: np.ndarray,
    config: TrainingConfig,
) -> tuple[HiddenMarkovModel, float]:
    """One EM iteration; returns the updated model and the weighted mean
    log-likelihood of ``obs`` under the *input* model."""
    batch, length = obs.shape
    n, m = model.n_states, model.n_symbols

    alpha, scales = forward(model, obs)
    beta = backward(model, obs, scales)
    loglik = float(np.average(np.log(scales).sum(axis=1), weights=weights))

    gamma = alpha * beta  # (B, T, N)
    gamma_norm = np.maximum(gamma.sum(axis=2, keepdims=True), SCALE_FLOOR)
    gamma = gamma / gamma_norm

    emission_t = model.emission.T  # (M, N)
    w = weights[:, None]

    # Transition numerator: Σ_b Σ_t w_b · ξ_t(i, j).
    xi_sum = np.zeros((n, n))
    for t in range(length - 1):
        right = beta[:, t + 1] * emission_t[obs[:, t + 1]] / scales[:, t + 1][:, None]
        xi_sum += (alpha[:, t] * w).T @ right
    xi_sum *= model.transition

    # Emission numerator: Σ w_b γ_t(i) for each observed symbol.
    emit_sum = np.zeros((n, m))
    weighted_gamma = gamma * w[:, :, None]
    flat_obs = obs.reshape(-1)
    flat_gamma = weighted_gamma.reshape(-1, n)
    np.add.at(emit_sum.T, flat_obs, flat_gamma)

    # M-step with floors.
    new_a = xi_sum + config.transition_floor
    new_a /= new_a.sum(axis=1, keepdims=True)
    new_b = emit_sum + config.emission_floor
    new_b /= new_b.sum(axis=1, keepdims=True)
    if config.update_initial:
        new_pi = np.average(gamma[:, 0], axis=0, weights=weights)
        new_pi = np.maximum(new_pi, 0)
        new_pi /= new_pi.sum()
    else:
        new_pi = model.initial

    updated = HiddenMarkovModel(
        transition=new_a,
        emission=new_b,
        initial=new_pi,
        symbols=model.symbols,
        state_labels=model.state_labels,
    )
    return updated, loglik


def train(
    model: HiddenMarkovModel,
    train_obs: np.ndarray,
    holdout_obs: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    config: TrainingConfig | None = None,
) -> tuple[HiddenMarkovModel, TrainingReport]:
    """Train ``model`` with Baum-Welch.

    Args:
        model: initial model (random or statically initialized).
        train_obs: (B, T) encoded training segments.
        holdout_obs: encoded termination set; when ``None`` the training-set
            likelihood is monitored instead.
        weights: per-segment multiplicities (defaults to 1).
        config: training knobs.

    Returns:
        ``(best_model, report)`` — the model snapshot with the best
        held-out likelihood, not necessarily the last iterate.
    """
    config = config or TrainingConfig()
    train_obs = np.asarray(train_obs)
    if train_obs.ndim != 2 or train_obs.shape[0] == 0:
        raise ModelError("train_obs must be a non-empty (B, T) array")
    if weights is None:
        weights = np.ones(train_obs.shape[0])
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (train_obs.shape[0],):
        raise ModelError("weights must align with training segments")

    if holdout_obs is not None and len(holdout_obs):
        monitor, monitor_weights = holdout_obs, None
    else:
        # No termination set: monitor the (weighted) training likelihood so
        # the convergence signal matches what EM actually optimizes.
        monitor, monitor_weights = train_obs, weights

    def monitor_ll(m: HiddenMarkovModel) -> float:
        return float(np.average(log_likelihood(m, monitor), weights=monitor_weights))

    report = TrainingReport()
    best_model = model
    best_holdout = monitor_ll(model)
    report.holdout_log_likelihood.append(best_holdout)
    stale = 0

    current = model
    with telemetry.span(
        "hmm.train", states=model.n_states, segments=int(train_obs.shape[0])
    ):
        telemetry.counter_add("hmm.train.runs")
        for iteration in range(config.max_iterations):
            with telemetry.span("hmm.train.iteration", iteration=iteration):
                current, train_ll = _em_step(current, train_obs, weights, config)
                holdout_ll = monitor_ll(current)
            report.iterations += 1
            report.train_log_likelihood.append(train_ll)
            report.holdout_log_likelihood.append(holdout_ll)
            telemetry.counter_add("hmm.train.iterations")
            telemetry.gauge_set("hmm.train.holdout_loglik", holdout_ll)
            if holdout_ll > best_holdout + config.min_improvement:
                best_holdout = holdout_ll
                best_model = current
                stale = 0
            else:
                stale += 1
                if stale >= config.patience:
                    report.converged = True
                    telemetry.counter_add("hmm.train.converged")
                    break
    return best_model, report
