"""Batched Baum-Welch (EM) training over fixed-length segments.

The paper trains every compared model with "standard HMM procedures": EM on
normal 15-call segments, with 20 % of the normal data held out as a
*termination set* — training stops when the held-out likelihood stops
improving (Section V-A).  Deduplicated segments carry multiplicity weights
so the statistics match the raw trace distribution without redundant work.

Each EM iteration costs ``O(B · T · N²)`` — the ``T · S²`` per-sequence cost
the paper quotes — which is why the state reduction of
:mod:`repro.reduction` translates directly into training speedups.

The E-step itself lives in :mod:`repro.hmm.kernels`: an
:class:`~repro.hmm.kernels.EMWorkspace` preallocates every per-timestep
buffer once per :func:`train` call, :func:`~repro.hmm.kernels.em_forward`
returns the training log-likelihood as a by-product of the forward phase,
and :func:`~repro.hmm.kernels.em_update` fuses the backward recursion with
the ξ/emission accumulation.  When no termination set is given, the train
loop *pipelines* the phases — the forward pass that opens iteration k+1 is
the convergence monitor for iteration k — so the training set is walked
exactly once per iteration instead of twice (see ``docs/perf.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..errors import ModelError
from .forward import log_likelihood
from .kernels import EMWorkspace, em_forward, em_update
from .model import HiddenMarkovModel


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs for Baum-Welch training.

    Attributes:
        max_iterations: hard EM iteration cap.
        min_improvement: minimum gain in mean held-out log-likelihood per
            iteration to count as "significant improvement".
        patience: number of consecutive non-improving iterations tolerated
            before stopping (the paper stops at "no significant
            improvement on the termination data set").
        emission_floor: probability floor mixed into emission rows after
            each M-step, so unseen symbols stay representable.
        transition_floor: same for transition rows.
        update_initial: whether EM re-estimates π (statically-initialized
            models may want to keep the analysis-derived π).
    """

    max_iterations: int = 30
    min_improvement: float = 1e-3
    patience: int = 2
    emission_floor: float = 1e-6
    transition_floor: float = 1e-8
    update_initial: bool = True


@dataclass
class TrainingReport:
    """What happened during one training run."""

    iterations: int = 0
    train_log_likelihood: list[float] = field(default_factory=list)
    holdout_log_likelihood: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_holdout(self) -> float:
        return self.holdout_log_likelihood[-1] if self.holdout_log_likelihood else float("-inf")


def train(
    model: HiddenMarkovModel,
    train_obs: np.ndarray,
    holdout_obs: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    config: TrainingConfig | None = None,
    workspace: EMWorkspace | None = None,
) -> tuple[HiddenMarkovModel, TrainingReport]:
    """Train ``model`` with Baum-Welch.

    Args:
        model: initial model (random or statically initialized).
        train_obs: (B, T) encoded training segments.
        holdout_obs: encoded termination set; when ``None`` the training-set
            likelihood is monitored instead — at no extra cost, since the
            E-step's forward phase yields it as a by-product.
        weights: per-segment multiplicities (defaults to 1).
        config: training knobs.
        workspace: optional :class:`~repro.hmm.kernels.EMWorkspace` to
            reuse across ``train()`` calls (e.g. cross-validation folds of
            the same shape skip reallocation); a private one is created
            when omitted.  A workspace never leaks state between calls —
            binding resets it.

    Returns:
        ``(best_model, report)`` — the model snapshot with the best
        held-out likelihood, not necessarily the last iterate.
    """
    config = config or TrainingConfig()
    train_obs = np.asarray(train_obs)
    if train_obs.ndim != 2 or train_obs.shape[0] == 0:
        raise ModelError("train_obs must be a non-empty (B, T) array")
    if weights is None:
        weights = np.ones(train_obs.shape[0])
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (train_obs.shape[0],):
        raise ModelError("weights must align with training segments")

    ws = workspace if workspace is not None else EMWorkspace()
    ws.bind(model, train_obs, weights)

    report = TrainingReport()
    best_model = model
    best_holdout = float("-inf")
    stale = 0

    def record(current: HiddenMarkovModel, train_ll: float, holdout_ll: float) -> bool:
        """Book-keep one completed iteration; True means stop (converged)."""
        nonlocal best_model, best_holdout, stale
        report.iterations += 1
        report.train_log_likelihood.append(train_ll)
        report.holdout_log_likelihood.append(holdout_ll)
        telemetry.counter_add("hmm.train.iterations")
        telemetry.gauge_set("hmm.train.holdout_loglik", holdout_ll)
        if holdout_ll > best_holdout + config.min_improvement:
            best_holdout = holdout_ll
            best_model = current
            stale = 0
            return False
        stale += 1
        if stale >= config.patience:
            report.converged = True
            telemetry.counter_add("hmm.train.converged")
            return True
        return False

    current = model
    with telemetry.span(
        "hmm.train", states=model.n_states, segments=int(train_obs.shape[0])
    ):
        telemetry.counter_add("hmm.train.runs")
        if holdout_obs is not None and len(holdout_obs):

            def monitor_ll(m: HiddenMarkovModel) -> float:
                return float(np.average(log_likelihood(m, holdout_obs)))

            best_holdout = monitor_ll(model)
            report.holdout_log_likelihood.append(best_holdout)
            for iteration in range(config.max_iterations):
                with telemetry.span("hmm.train.iteration", iteration=iteration):
                    train_ll = em_forward(current, ws)
                    current = em_update(current, ws, config)
                    holdout_ll = monitor_ll(current)
                if record(current, train_ll, holdout_ll):
                    break
        else:
            # No termination set: monitor the (weighted) training likelihood
            # so the convergence signal matches what EM actually optimizes.
            # The phases are pipelined — the forward pass that opens
            # iteration k+1 *is* the monitor value for iteration k — so
            # each iteration walks the training set once, not twice.
            monitor_value = em_forward(current, ws)
            best_holdout = monitor_value
            report.holdout_log_likelihood.append(monitor_value)
            for iteration in range(config.max_iterations):
                with telemetry.span("hmm.train.iteration", iteration=iteration):
                    train_ll = monitor_value
                    current = em_update(current, ws, config)
                    monitor_value = em_forward(current, ws)
                if record(current, train_ll, monitor_value):
                    break
    return best_model, report
