"""Model persistence: save/load trained HMMs.

Training a CMarkov model costs minutes; scoring costs microseconds.  A
deployment trains once (per program release) and ships the model to the
monitoring hosts, so the parameters need a stable on-disk format.  We use a
single ``.npz`` archive holding the three parameter arrays plus a JSON
header with the alphabet and state labels.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ModelError
from .model import HiddenMarkovModel

#: Format version written into every archive; bump on layout changes.
FORMAT_VERSION = 1


def save_model(model: HiddenMarkovModel, path: str | Path) -> None:
    """Write ``model`` to ``path`` (``.npz`` archive)."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "symbols": list(model.symbols),
        "state_labels": list(model.state_labels) if model.state_labels else None,
    }
    np.savez_compressed(
        path,
        transition=model.transition,
        emission=model.emission,
        initial=model.initial,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    )


def load_model(path: str | Path) -> HiddenMarkovModel:
    """Read a model previously written by :func:`save_model`.

    Raises:
        ModelError: on a missing file, wrong format version, or an archive
            whose parameters fail validation.
    """
    path = Path(path)
    if not path.exists():
        # numpy appends .npz when saving if absent; mirror that on load.
        alternative = path.with_suffix(path.suffix + ".npz")
        if alternative.exists():
            path = alternative
        else:
            raise ModelError(f"model file {path} does not exist")
    try:
        archive = np.load(path)
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except (OSError, ValueError, KeyError) as exc:
        raise ModelError(f"cannot read model archive {path}: {exc}") from exc
    if header.get("format_version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format version {header.get('format_version')}"
        )
    state_labels = header.get("state_labels")
    return HiddenMarkovModel(
        transition=archive["transition"],
        emission=archive["emission"],
        initial=archive["initial"],
        symbols=tuple(header["symbols"]),
        state_labels=tuple(state_labels) if state_labels else None,
    )
