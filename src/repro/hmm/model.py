"""Hidden Markov model parameter container.

The paper's models are discrete-observation HMMs ``λ = (A, B, π)`` over an
alphabet of call labels.  This container is deliberately dumb: construction
and validation live here; the forward/backward/Baum-Welch machinery lives in
sibling modules; the *initialization* of parameters (random for the Regular
models, static-analysis-derived for STILO/CMarkov) lives in
:mod:`repro.reduction.initializer` and :mod:`repro.hmm.random_init`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError

#: Reserved symbol for observations outside the training alphabet.  Unseen
#: symbols are anomalous by construction; giving them an explicit low-mass
#: alphabet slot keeps likelihoods finite and comparable.
UNKNOWN_SYMBOL = "<unk>"


@dataclass
class HiddenMarkovModel:
    """A discrete HMM.

    Attributes:
        transition: ``A``, shape (N, N); ``A[i, j] = P[state j | state i]``.
        emission: ``B``, shape (N, M); ``B[i, m] = P[symbol m | state i]``.
        initial: ``π``, shape (N,).
        symbols: the observation alphabet (length M).  If it contains
            :data:`UNKNOWN_SYMBOL`, unseen symbols encode to that slot.
        state_labels: optional descriptive label(s) per hidden state — for
            statically-initialized models, the call (or call cluster) the
            state represents.
    """

    transition: np.ndarray
    emission: np.ndarray
    initial: np.ndarray
    symbols: tuple[str, ...]
    state_labels: tuple[str, ...] | None = None
    _symbol_index: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.transition = np.asarray(self.transition, dtype=float)
        self.emission = np.asarray(self.emission, dtype=float)
        self.initial = np.asarray(self.initial, dtype=float)
        self._symbol_index.update({s: i for i, s in enumerate(self.symbols)})
        self.validate()

    # ------------------------------------------------------------------
    # Shape / stochasticity checks
    # ------------------------------------------------------------------
    def validate(self, atol: float = 1e-6) -> None:
        n, m = self.n_states, self.n_symbols
        if self.transition.shape != (n, n):
            raise ModelError(f"transition shape {self.transition.shape} != ({n},{n})")
        if self.emission.shape != (n, m):
            raise ModelError(f"emission shape {self.emission.shape} != ({n},{m})")
        if self.initial.shape != (n,):
            raise ModelError(f"initial shape {self.initial.shape} != ({n},)")
        if len(self._symbol_index) != m:
            raise ModelError("duplicate symbols in alphabet")
        for name, array in (
            ("transition", self.transition),
            ("emission", self.emission),
            ("initial", self.initial),
        ):
            if np.any(array < -atol) or not np.all(np.isfinite(array)):
                raise ModelError(f"{name} has negative or non-finite entries")
        if not np.allclose(self.transition.sum(axis=1), 1.0, atol=atol):
            raise ModelError("transition rows must sum to 1")
        if not np.allclose(self.emission.sum(axis=1), 1.0, atol=atol):
            raise ModelError("emission rows must sum to 1")
        if not np.isclose(self.initial.sum(), 1.0, atol=atol):
            raise ModelError("initial distribution must sum to 1")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.initial.shape[0]

    @property
    def n_symbols(self) -> int:
        return len(self.symbols)

    @property
    def unknown_index(self) -> int | None:
        return self._symbol_index.get(UNKNOWN_SYMBOL)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_symbol(self, symbol: str) -> int:
        """Map one symbol to its alphabet index (UNK fallback if present)."""
        index = self._symbol_index.get(symbol)
        if index is not None:
            return index
        unk = self.unknown_index
        if unk is None:
            raise ModelError(
                f"symbol {symbol!r} not in alphabet and no {UNKNOWN_SYMBOL} slot"
            )
        return unk

    def encode(self, sequences: Iterable[Sequence[str]]) -> np.ndarray:
        """Encode equal-length symbol sequences into an (B, T) int array."""
        encoded = [[self.encode_symbol(s) for s in seq] for seq in sequences]
        if not encoded:
            raise ModelError("no sequences to encode")
        lengths = {len(seq) for seq in encoded}
        if len(lengths) != 1:
            raise ModelError(f"sequences must share one length, got {sorted(lengths)}")
        return np.asarray(encoded, dtype=np.int64)

    def copy(self) -> "HiddenMarkovModel":
        return HiddenMarkovModel(
            transition=self.transition.copy(),
            emission=self.emission.copy(),
            initial=self.initial.copy(),
            symbols=self.symbols,
            state_labels=self.state_labels,
        )


def ensure_alphabet_with_unknown(symbols: Sequence[str]) -> tuple[str, ...]:
    """Return ``symbols`` with :data:`UNKNOWN_SYMBOL` appended if absent."""
    if UNKNOWN_SYMBOL in symbols:
        return tuple(symbols)
    return tuple(symbols) + (UNKNOWN_SYMBOL,)
