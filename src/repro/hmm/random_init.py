"""Random HMM initialization — the Regular-basic / Regular-context baseline.

"The regular model randomly chooses the initial HMM parameters, including
the initial transition probabilities, initial emission probabilities, and
the initial distribution of hidden states" with one hidden state per
distinct observed call (Section V-A).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from .model import HiddenMarkovModel, ensure_alphabet_with_unknown


def _random_stochastic(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Random row-stochastic matrix via a flat Dirichlet per row."""
    matrix = rng.gamma(shape=1.0, scale=1.0, size=(rows, cols))
    matrix = np.maximum(matrix, 1e-12)
    return matrix / matrix.sum(axis=1, keepdims=True)


def random_model(
    symbols: Sequence[str],
    n_states: int | None = None,
    seed: int = 0,
) -> HiddenMarkovModel:
    """Build a randomly-initialized HMM over ``symbols``.

    Args:
        symbols: observed alphabet (the :data:`~repro.hmm.model.UNKNOWN_SYMBOL`
            slot is appended automatically).
        n_states: number of hidden states; defaults to the alphabet size,
            matching the paper's regular-model setup.
        seed: RNG seed for reproducible baselines.
    """
    alphabet = ensure_alphabet_with_unknown(symbols)
    if n_states is None:
        n_states = len(symbols)
    if n_states <= 0:
        raise ModelError("n_states must be positive")
    rng = np.random.default_rng(seed)
    transition = _random_stochastic(rng, n_states, n_states)
    emission = _random_stochastic(rng, n_states, len(alphabet))
    initial = _random_stochastic(rng, 1, n_states)[0]
    return HiddenMarkovModel(
        transition=transition,
        emission=emission,
        initial=initial,
        symbols=alphabet,
    )
