"""Pluggable kernel backends for the HMM hot paths.

:mod:`repro.hmm.kernels` owns the numpy implementations of the three hot
kernels — the tiled scales-only batch scorer, the fleet contraction, and
the incremental streaming step.  This package adds a *dispatch seam* in
front of them: a named registry of :class:`KernelBackend` objects, where
a backend may claim any subset of the kernels and every unclaimed (or
declined) call falls through to the numpy path.

Two backends ship in-tree:

* ``numpy`` — the default; claims nothing, every call takes the existing
  numpy path untouched.
* ``compiled`` — :mod:`repro.hmm.backends.compiled`; builds a small C
  library with the host toolchain at first use and dispatches through
  ``ctypes``.  Bit-identity with the numpy path is **proved, not
  assumed**: the backend probes each (kernel, n_states) combination
  against the numpy implementation at first use and silently declines
  shapes that do not reproduce numpy's bits.  A missing toolchain (or a
  failed build/probe) degrades to numpy with a one-time
  :class:`RuntimeWarning` and a ``hmm.backend.fallback`` counter — never
  an exception, never a changed score.

Selection surface (first match wins):

1. an explicit :func:`backend_scope` / :func:`use_backend` call (the
   service drain and ``StreamingScorer`` use scopes under the hood);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the ``numpy`` default.

Unknown names raise :class:`~repro.errors.KernelBackendError` — a typo'd
backend should fail loudly at selection time, only *unavailable* (but
known) backends fall back.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator

from ... import telemetry
from ...errors import KernelBackendError

#: Environment variable consulted by :func:`resolve_backend` when no
#: explicit name is given (CLI ``--kernel-backend`` and
#: ``ServiceConfig.kernel_backend`` both take precedence by passing the
#: name explicitly).
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

__all__ = [
    "BACKEND_ENV",
    "KernelBackend",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "backend_scope",
    "register_backend",
    "resolve_backend",
    "use_backend",
]


class KernelBackend:
    """A (possibly partial) implementation of the three hot kernels.

    Each kernel method returns the computed result, or ``None`` to
    decline the call — the dispatch wrappers in
    :mod:`repro.hmm.kernels` then run the numpy path.  ``dispatches`` is
    a cheap pre-filter: the wrappers skip the method calls entirely when
    it is ``False``, so the default backend adds one attribute load to
    the hot path and nothing else.
    """

    name = "base"
    #: Whether the dispatch wrappers should consult this backend at all.
    dispatches = False

    def score_sequences(self, model, obs, tile):
        """Batch scorer; return a (B,) score array or ``None``."""
        return None

    def score_fleet(self, models, obs_list):
        """Fleet scorer; return a list of (B_d,) arrays or ``None``.

        Called with already-validated same-shape models and non-empty
        batches of one shared, non-zero window length.
        """
        return None

    def streaming_step(self, model, state, index):
        """One streaming event; return the surprise float or ``None``.

        A non-``None`` return must leave ``state`` exactly as the numpy
        step would: belief updated, ring written, ``pos``/``count``
        advanced, ``started`` set.
        """
        return None


class NumpyBackend(KernelBackend):
    """The default backend: every call takes the existing numpy path."""

    name = "numpy"
    dispatches = False


_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_DEFAULT: KernelBackend | None = None
_LOCK = threading.Lock()
_LOCAL = threading.local()
_WARNED: set[str] = set()


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory runs at most once, lazily, on first resolution; it may
    raise :class:`~repro.errors.KernelBackendError` (or anything else)
    to signal the backend is unavailable on this host, in which case
    resolution falls back to numpy via :func:`_note_fallback`.
    """
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names (registration, not availability: a name
    being listed does not guarantee its factory will succeed here)."""
    return tuple(sorted(_REGISTRY))


def _note_fallback(reason: str) -> None:
    """Record a degraded-to-numpy event: one-time warning + counter."""
    telemetry.counter_add("hmm.backend.fallback")
    with _LOCK:
        if reason in _WARNED:
            return
        _WARNED.add(reason)
    warnings.warn(
        f"kernel backend falling back to numpy: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend name to a (cached) instance.

    ``None`` means "no explicit choice": the ``REPRO_KERNEL_BACKEND``
    environment variable is consulted, then the ``numpy`` default.
    Unknown names raise :class:`~repro.errors.KernelBackendError`;
    known-but-unavailable backends (factory raised) fall back to numpy
    with a one-time :class:`RuntimeWarning` and a
    ``hmm.backend.fallback`` counter.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip() or "numpy"
    if name not in _REGISTRY:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; available: "
            + ", ".join(available_backends())
        )
    with _LOCK:
        instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    try:
        instance = _REGISTRY[name]()
    except Exception as exc:
        _note_fallback(f"backend {name!r} unavailable ({exc})")
        instance = resolve_backend("numpy")
    with _LOCK:
        # Benign race: concurrent resolutions build equivalent instances
        # and the first store wins.
        instance = _INSTANCES.setdefault(name, instance)
    return instance


def active_backend() -> KernelBackend:
    """The backend the dispatch wrappers should consult *right now*.

    Innermost :func:`backend_scope` on this thread, else the process
    default (set by :func:`use_backend`, else resolved lazily from the
    environment).
    """
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    global _DEFAULT
    default = _DEFAULT
    if default is None:
        default = _DEFAULT = resolve_backend()
    return default


def use_backend(name: str | None) -> KernelBackend:
    """Set the process-default backend; returns the resolved instance.

    ``None`` re-reads the environment (i.e. restores the implicit
    default).  Thread-local :func:`backend_scope` overrides still win.
    """
    global _DEFAULT
    backend = resolve_backend(name)
    _DEFAULT = backend
    return backend


@contextmanager
def backend_scope(name: str | None) -> Iterator[KernelBackend]:
    """Activate a backend for the current thread within a ``with`` block.

    This is how per-component selection composes: the service drain and
    ``StreamingScorer`` wrap their kernel calls in a scope for their
    configured backend, without disturbing other threads or the process
    default.  Scopes nest; the innermost wins.
    """
    backend = resolve_backend(name)
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


def _reset_for_tests() -> None:
    """Drop cached instances, the default, scopes, and warn-once state."""
    global _DEFAULT
    with _LOCK:
        _INSTANCES.clear()
        _WARNED.clear()
    _DEFAULT = None
    _LOCAL.stack = []


def _make_compiled() -> KernelBackend:
    from . import compiled

    return compiled.load_backend()


register_backend("numpy", NumpyBackend)
register_backend("compiled", _make_compiled)
