"""The ``compiled`` kernel backend: C + ``ctypes``, probed bit-identical.

``_forward_kernels.c`` re-states the numpy hot-path arithmetic with the
exact per-element reduction orders the BLAS builds we target use (see
the C file's header).  This module owns everything around it:

* **Build**: the shared library is compiled at first use with the host
  C compiler (``$REPRO_KERNEL_CC``, else the first of ``cc``/``gcc``/
  ``clang`` on ``PATH``) into a content-addressed cache
  (``$REPRO_KERNEL_CACHE``, else a per-user temp directory), so repeat
  processes pay a hash check instead of a compile.  Any failure raises
  :class:`~repro.errors.KernelBackendError`, which the registry turns
  into a warned numpy fallback.
* **Probe-then-trust dispatch**: floating-point reduction order inside
  BLAS depends on operand shape, ISA, and build, so matching it from C
  is an empirical claim, not a guarantee.  Before the backend serves a
  (kernel, n_states) combination it replays seeded random workloads
  through both implementations and compares *bits*; a mismatch declines
  that combination forever (numpy fallback + one-time warning) while
  other shapes keep dispatching.  The fleet probe doubles as a runtime
  re-verification of the height-invariance contract ``score_fleet``
  rests on.
* **Wrappers**: logs are applied on the Python side with ``np.log``
  (numpy's SIMD log differs from libm's by one ulp on a small fraction
  of inputs, so the C kernels return raw scale factors), and the
  streaming wrapper mirrors the numpy step's ring/``pos``/``count``
  bookkeeping exactly.  Per-stream pointers are packed once into a C
  struct cached on ``StreamingState.backend_ctx`` so the per-event call
  passes two scalars.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from types import SimpleNamespace

import numpy as np

#: Module-level alias: the streaming hot path runs once per event, and the
#: ``np.log`` attribute chase is measurable there.  It MUST be numpy's log —
#: libm's ``log`` differs in the last ulp on some inputs, which would break
#: the bit-identity contract with the numpy oracle.
_np_log = np.log

from ... import telemetry
from ...errors import KernelBackendError
from . import KernelBackend, _note_fallback

#: Bumped whenever the C entry points change shape; baked into both the
#: cache digest and a runtime check so a stale cached library can never
#: be called through the wrong signatures.
ABI_VERSION = 1

#: Environment overrides for the build.
CC_ENV = "REPRO_KERNEL_CC"
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Row block of the C batch scorer; the generic-n path needs a scratch
#: buffer of ``2 * RBLK * n`` doubles.  Must match ``RBLK`` in the C.
RBLK = 8

_SOURCE = Path(__file__).with_name("_forward_kernels.c")

_BASE_FLAGS = ("-O3", "-march=native", "-funroll-loops", "-shared", "-fPIC")

__all__ = ["ABI_VERSION", "CC_ENV", "CACHE_ENV", "CompiledBackend", "load_backend"]


class ReproStreamCtx(ctypes.Structure):
    """Mirror of the C ``ReproStreamCtx`` (pointer pack for one stream)."""

    _fields_ = [
        ("transition", ctypes.c_void_p),
        ("emission_t", ctypes.c_void_p),
        ("belief", ctypes.c_void_p),
        ("predictive", ctypes.c_void_p),
        ("joint", ctypes.c_void_p),
        ("n", ctypes.c_int64),
        ("started", ctypes.c_int64),
    ]


def _find_cc() -> str:
    """The compiler to use, honoring ``$REPRO_KERNEL_CC``."""
    override = os.environ.get(CC_ENV)
    if override:
        resolved = shutil.which(override)
        if resolved is None:
            raise KernelBackendError(
                f"{CC_ENV}={override!r} is not an executable compiler"
            )
        return resolved
    for candidate in ("cc", "gcc", "clang"):
        resolved = shutil.which(candidate)
        if resolved is not None:
            return resolved
    raise KernelBackendError("no C compiler found (tried cc, gcc, clang)")


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else "shared"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _build_library(cc: str, source: bytes) -> Path:
    """Compile (or reuse) the shared library; returns its path.

    The output name is content-addressed over source + compiler + ABI,
    so edits and toolchain switches rebuild while repeat runs reuse.
    The compile lands in a temp file first and is published with an
    atomic rename — concurrent builders race harmlessly to the same
    final bytes.
    """
    digest = hashlib.sha256(
        source + cc.encode() + str(ABI_VERSION).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"_forward_kernels-{digest}.so"
    if lib_path.exists():
        return lib_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise KernelBackendError(f"cannot create kernel cache {cache}: {exc}")
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        # -march=native buys the vectorized specializations their speed;
        # retry without it for compilers/targets that reject the flag.
        for flags in (_BASE_FLAGS, tuple(f for f in _BASE_FLAGS if f != "-march=native")):
            proc = subprocess.run(
                [cc, *flags, "-o", tmp, str(_SOURCE), "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode == 0:
                os.replace(tmp, lib_path)
                return lib_path
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-3:]
        raise KernelBackendError(
            "kernel compile failed: " + (" | ".join(tail) or "no compiler output")
        )
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_backend() -> "CompiledBackend":
    """Build/load the shared library and wrap it; raises on any failure."""
    cc = _find_cc()
    try:
        source = _SOURCE.read_bytes()
    except OSError as exc:
        raise KernelBackendError(f"kernel source unreadable: {exc}")
    lib_path = _build_library(cc, source)
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise KernelBackendError(f"kernel library load failed: {exc}")
    try:
        abi = lib.repro_abi_version
    except AttributeError:
        raise KernelBackendError("kernel library is missing repro_abi_version")
    abi.restype = ctypes.c_int64
    abi.argtypes = []
    built = int(abi())
    if built != ABI_VERSION:
        raise KernelBackendError(
            f"kernel library ABI {built} != expected {ABI_VERSION}"
        )
    return CompiledBackend(lib)


def _shim_model(rng: np.random.Generator, n: int, m: int) -> SimpleNamespace:
    """A duck-typed model with valid stochastic matrices for probing."""
    transition = rng.random((n, n)) + 0.05
    transition /= transition.sum(axis=1, keepdims=True)
    emission = rng.random((n, m)) + 0.05
    emission /= emission.sum(axis=1, keepdims=True)
    initial = rng.random(n) + 0.05
    initial /= initial.sum()
    return SimpleNamespace(
        transition=transition,
        emission=emission,
        initial=initial,
        n_states=n,
        n_symbols=m,
    )


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


class CompiledBackend(KernelBackend):
    """ctypes wrapper over ``_forward_kernels.c`` with per-shape probes.

    ``_verified`` caches one verdict per (kernel, n_states): ``True``
    dispatches to C, ``False`` declines every call at that shape (the
    numpy path runs instead).  Probes run once, at first use, under the
    GIL-serialized ctypes layer; a racing duplicate probe computes the
    same deterministic verdict.
    """

    name = "compiled"
    dispatches = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self._score = lib.repro_score_scales
        self._score.restype = None
        self._score.argtypes = [
            ctypes.c_void_p,  # obs (batch, length) int64
            ctypes.c_int64,  # batch
            ctypes.c_int64,  # length
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # transition (n, n)
            ctypes.c_void_p,  # emission_t (m, n)
            ctypes.c_void_p,  # initial (n,)
            ctypes.c_void_p,  # scales out (batch, length)
            ctypes.c_void_p,  # work (2 * RBLK * n)
        ]
        self._step = lib.repro_stream_step
        self._step.restype = ctypes.c_double
        self._step.argtypes = [ctypes.POINTER(ReproStreamCtx), ctypes.c_int64]
        self._verified: dict[tuple[str, int], bool] = {}

    # -- shared core --------------------------------------------------

    def _scores(self, model, obs: np.ndarray) -> np.ndarray:
        """Per-row scores via the C scales kernel + numpy log/sum.

        Reduction-order note: the numpy path logs a (tile, T) panel and
        row-sums ``scales[:rows]`` per 512-row tile; both ``np.log``
        (elementwise) and the per-row pairwise sum over T depend only on
        each row's own bits, so logging and summing the full (B, T)
        panel at once is bit-identical — and the probes verify it.
        """
        batch, length = obs.shape
        obs64 = np.ascontiguousarray(obs, dtype=np.int64)
        transition = np.ascontiguousarray(model.transition)
        emission_t = np.ascontiguousarray(model.emission.T)
        initial = np.ascontiguousarray(model.initial)
        scales = np.empty((batch, length))
        work = np.empty(2 * RBLK * model.n_states)
        self._score(
            obs64.ctypes.data,
            batch,
            length,
            model.n_states,
            transition.ctypes.data,
            emission_t.ctypes.data,
            initial.ctypes.data,
            scales.ctypes.data,
            work.ctypes.data,
        )
        np.log(scales, out=scales)
        return np.sum(scales, axis=1)

    # -- probes -------------------------------------------------------

    def _ensure(self, kind: str, n: int, m: int) -> bool:
        key = (kind, n)
        verdict = self._verified.get(key)
        if verdict is None:
            try:
                verdict = self._probe(kind, n, m)
            except Exception:  # pragma: no cover - defensive
                verdict = False
            self._verified[key] = verdict
            if verdict:
                telemetry.counter_add("hmm.backend.probe_pass")
            else:
                telemetry.counter_add("hmm.backend.probe_fail")
                _note_fallback(
                    f"compiled {kind} kernel failed its bit-identity probe "
                    f"at n_states={n}; numpy path retained for this shape"
                )
        return verdict

    def _probe(self, kind: str, n: int, m: int) -> bool:
        from .. import kernels

        # Deterministic across processes (no str hash): seed mixes the
        # shape with the kind's byte sum.
        rng = np.random.default_rng(0xB17_0DD5 ^ (n << 8) ^ sum(kind.encode()))
        if kind == "score":
            model = _shim_model(rng, n, m)
            for batch, length in ((1, 1), (5, 3), (23, 9), (65, 15)):
                obs = rng.integers(0, m, size=(batch, length))
                expected = kernels._score_sequences_numpy(model, obs)
                if not _bits_equal(expected, self._scores(model, obs)):
                    return False
            return True
        if kind == "fleet":
            for batches in ((1, 2, 3), (5, 8, 11)):
                models = [_shim_model(rng, n, m) for _ in batches]
                obs_list = [
                    rng.integers(0, m, size=(batch, 9)) for batch in batches
                ]
                expected = kernels._score_fleet_numpy(models, obs_list)
                got = [self._scores(mdl, obs) for mdl, obs in zip(models, obs_list)]
                if not all(_bits_equal(e, g) for e, g in zip(expected, got)):
                    return False
            return True
        if kind == "stream":
            model = _shim_model(rng, n, m)
            ref = kernels.StreamingState(model, window=7)
            mine = kernels.StreamingState(model, window=7)
            for step in range(96):
                if step == 48:
                    # Re-exercise the started=False first-event path.
                    kernels.streaming_reset(model, ref)
                    kernels.streaming_reset(model, mine)
                index = int(rng.integers(0, m))
                expected = kernels._streaming_step_numpy(model, ref, index)
                got = self._stream_step(model, mine, index)
                if expected != got or not _bits_equal(ref.belief, mine.belief):
                    return False
            return _bits_equal(ref.ring, mine.ring)
        raise KernelBackendError(f"unknown probe kind {kind!r}")

    # -- KernelBackend interface --------------------------------------

    def score_sequences(self, model, obs, tile):
        from ..kernels import SCORE_TILE

        batch, length = obs.shape
        if batch == 0 or length == 0 or tile != SCORE_TILE:
            return None
        if not self._ensure("score", model.n_states, model.n_symbols):
            return None
        return self._scores(model, obs)

    def score_fleet(self, models, obs_list):
        if not self._ensure("fleet", models[0].n_states, models[0].n_symbols):
            return None
        # Rows are independent in the C scorer, so "the fleet kernel" is
        # one scales pass per model — padding exists in the numpy path
        # only to pin BLAS operand shapes, which C does not need.  The
        # fleet probe pins equivalence with the padded contraction.
        return [self._scores(model, obs) for model, obs in zip(models, obs_list)]

    def streaming_step(self, model, state, index):
        # Probe only when unbound: a live ``backend_ctx`` was built by
        # ``_bind_stream`` *after* a passing probe (reset/rebind clear it),
        # so the per-event hot path skips the verdict-cache lookup.
        if state.backend_ctx is None and not self._ensure(
            "stream", model.n_states, model.n_symbols
        ):
            return None
        return self._stream_step(model, state, index)

    def _stream_step(self, model, state, index: int) -> float:
        cache = state.backend_ctx
        if (
            cache is None
            or cache[0] is not model
            or cache[1] is not state.emission_t
        ):
            cache = self._bind_stream(model, state)
        total = self._step(cache[2], index)
        state.started = True
        surprise = -float(_np_log(total))
        state.ring[state.pos] = surprise
        state.pos += 1
        if state.pos == state.window:
            state.pos = 0
        state.count += 1
        return surprise

    def _bind_stream(self, model, state):
        """Pack the stream's pointers into a C struct, cached on state.

        The cache is invalidated by identity: ``streaming_rebind`` always
        rebuilds ``state.emission_t`` (and may reallocate the belief
        buffers), ``streaming_reset`` clears ``backend_ctx`` outright,
        and a warm-swapped model object fails the ``cache[0]`` check.
        The transition copy is kept alive by the cache tuple.
        """
        transition = np.ascontiguousarray(model.transition)
        if not state.emission_t.flags.c_contiguous:  # pragma: no cover
            raise KernelBackendError("streaming emission transpose not contiguous")
        ctx = ReproStreamCtx(
            transition=transition.ctypes.data,
            emission_t=state.emission_t.ctypes.data,
            belief=state.belief.ctypes.data,
            predictive=state.predictive.ctypes.data,
            joint=state.joint.ctypes.data,
            n=model.n_states,
            started=1 if state.started else 0,
        )
        cache = (model, state.emission_t, ctypes.byref(ctx), ctx, transition)
        state.backend_ctx = cache
        return cache
