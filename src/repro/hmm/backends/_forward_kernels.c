/* Compiled forward kernels for repro.hmm.backends.compiled.
 *
 * Every kernel here is an *operation-for-operation* re-statement of the
 * numpy hot paths in repro/hmm/kernels.py, written so each output element
 * is produced by the exact floating-point reduction order the numpy path
 * uses on the BLAS builds we target:
 *
 *   - matmul rows reduce as one sequential fused-multiply-add chain over
 *     k (OpenBLAS dgemm accumulates each C[i,j] with a sequential FMA
 *     chain for the operand shapes the scorer issues; starting the chain
 *     from 0.0 via fma(a, b, 0.0) rounds once, exactly like the leading
 *     multiply);
 *   - row sums use numpy's pairwise reduction (8 interleaved
 *     accumulators, blocks of at most 128, halving split rounded down to
 *     a multiple of 8);
 *   - the streaming GEMV follows the SkylakeX dgemv_n column-block
 *     order: blocks of 4 columns combined as x1*a1, then FMAs of x0, x2,
 *     x3, block partials added sequentially; a 2-wide tail starts from
 *     x1*a1, a 1-wide tail FMAs directly into the partial sum.
 *
 * None of this is assumed to hold universally: the Python wrapper proves
 * bit-identity against the numpy implementation per (kernel, n_states)
 * shape at first use (see CompiledBackend) and falls back to numpy when
 * the probe fails.  Logs are deliberately NOT taken here — numpy's SIMD
 * log differs from libm log by 1 ulp on a small fraction of inputs, so
 * the kernels return raw scale factors and the caller applies np.log.
 *
 * Plain C99 + libm; explicit fma() calls keep the contraction behavior
 * independent of compiler flags.
 */

#include <math.h>
#include <stdint.h>

/* Must match CompiledBackend.ABI_VERSION (cache-busting for stale .so). */
#define REPRO_KERNELS_ABI 1

/* Scale floor, identical to repro.hmm.kernels.SCALE_FLOOR. */
static const double FLOORV = 1e-300;

/* Rows processed together by the batch scorer; the Python wrapper sizes
 * the generic-path scratch buffer as 2 * RBLK * n doubles. */
#define RBLK 8

int64_t repro_abi_version(void) { return REPRO_KERNELS_ABI; }

/* numpy pairwise sum over a contiguous vector (np.add.reduce): 8
 * interleaved scalar accumulators combined as ((r0+r1)+(r2+r3)) +
 * ((r4+r5)+(r6+r7)), blocks of at most 128 elements, recursive halving
 * with the split rounded down to a multiple of 8. */
static double pairwise_sum(const double *a, int64_t n) {
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    int64_t half = n / 2;
    half -= half % 8;
    return pairwise_sum(a, half) + pairwise_sum(a + half, n - half);
}

/* ------------------------------------------------------------------ */
/* Tiled scales-only batch scorer (score_sequences).                   */
/*                                                                     */
/* Rows are independent in the recursion, so no 512-row padding is     */
/* needed here: the numpy kernel pads partial tiles purely to pin the  */
/* BLAS operand shape, while this implementation reproduces the padded */
/* GEMM's per-element FMA chain directly for every real row.  Rows are */
/* walked in blocks of RBLK so the alpha@transition update amortizes   */
/* transition-row loads and keeps RBLK independent FMA chains in       */
/* flight (the chain per output element stays sequential in k, which   */
/* is what bit-identity requires).                                     */
/* ------------------------------------------------------------------ */

/* The inner loops are specialized for common state counts so the
 * compiler sees compile-time trip counts (runtime-n loops measured ~3x
 * slower); DEFINE_SCORE stamps one specialization per N. */
#define DEFINE_SCORE(NAME, N)                                                 \
static void NAME(const int64_t *obs, int64_t batch, int64_t length,           \
                 const double *transition, const double *emission_t,          \
                 const double *initial, double *scales) {                     \
    double alpha[RBLK][N], prod[RBLK][N];                                     \
    for (int64_t r0 = 0; r0 < batch; r0 += RBLK) {                            \
        int64_t rb = batch - r0 < RBLK ? batch - r0 : RBLK;                   \
        for (int64_t r = 0; r < rb; r++) {                                    \
            const int64_t *row = obs + (r0 + r) * length;                     \
            const double *erow = emission_t + row[0] * N;                     \
            for (int64_t j = 0; j < N; j++) alpha[r][j] = initial[j] * erow[j]; \
            double norm = pairwise_sum(alpha[r], N);                          \
            norm = norm < FLOORV ? FLOORV : norm; /* np.maximum */            \
            scales[(r0 + r) * length] = norm;                                 \
            for (int64_t j = 0; j < N; j++) alpha[r][j] /= norm;              \
        }                                                                     \
        for (int64_t t = 1; t < length; t++) {                                \
            for (int64_t r = 0; r < rb; r++)                                  \
                for (int64_t j = 0; j < N; j++) prod[r][j] = 0.0;             \
            for (int64_t k = 0; k < N; k++) {                                 \
                const double *trow = transition + k * N;                      \
                for (int64_t r = 0; r < rb; r++) {                            \
                    double ak = alpha[r][k];                                  \
                    for (int64_t j = 0; j < N; j++)                           \
                        prod[r][j] = fma(ak, trow[j], prod[r][j]);            \
                }                                                             \
            }                                                                 \
            for (int64_t r = 0; r < rb; r++) {                                \
                const int64_t *row = obs + (r0 + r) * length;                 \
                const double *erow = emission_t + row[t] * N;                 \
                for (int64_t j = 0; j < N; j++)                               \
                    alpha[r][j] = prod[r][j] * erow[j];                       \
                double norm = pairwise_sum(alpha[r], N);                      \
                norm = norm < FLOORV ? FLOORV : norm;                         \
                scales[(r0 + r) * length + t] = norm;                         \
                for (int64_t j = 0; j < N; j++) alpha[r][j] /= norm;          \
            }                                                                 \
        }                                                                     \
    }                                                                         \
}

DEFINE_SCORE(score_scales_8, 8)
DEFINE_SCORE(score_scales_16, 16)
DEFINE_SCORE(score_scales_32, 32)
DEFINE_SCORE(score_scales_48, 48)
DEFINE_SCORE(score_scales_64, 64)

/* Runtime-n fallback, same operation order; work holds 2*RBLK*n doubles. */
static void score_scales_any(const int64_t *obs, int64_t batch, int64_t length,
                             int64_t n, const double *transition,
                             const double *emission_t, const double *initial,
                             double *scales, double *work) {
    double *alpha = work;
    double *prod = work + RBLK * n;
    for (int64_t r0 = 0; r0 < batch; r0 += RBLK) {
        int64_t rb = batch - r0 < RBLK ? batch - r0 : RBLK;
        for (int64_t r = 0; r < rb; r++) {
            const int64_t *row = obs + (r0 + r) * length;
            const double *erow = emission_t + row[0] * n;
            double *a = alpha + r * n;
            for (int64_t j = 0; j < n; j++) a[j] = initial[j] * erow[j];
            double norm = pairwise_sum(a, n);
            norm = norm < FLOORV ? FLOORV : norm;
            scales[(r0 + r) * length] = norm;
            for (int64_t j = 0; j < n; j++) a[j] /= norm;
        }
        for (int64_t t = 1; t < length; t++) {
            for (int64_t r = 0; r < rb; r++)
                for (int64_t j = 0; j < n; j++) prod[r * n + j] = 0.0;
            for (int64_t k = 0; k < n; k++) {
                const double *trow = transition + k * n;
                for (int64_t r = 0; r < rb; r++) {
                    double ak = alpha[r * n + k];
                    double *pr = prod + r * n;
                    for (int64_t j = 0; j < n; j++)
                        pr[j] = fma(ak, trow[j], pr[j]);
                }
            }
            for (int64_t r = 0; r < rb; r++) {
                const int64_t *row = obs + (r0 + r) * length;
                const double *erow = emission_t + row[t] * n;
                double *a = alpha + r * n;
                double *pr = prod + r * n;
                for (int64_t j = 0; j < n; j++) a[j] = pr[j] * erow[j];
                double norm = pairwise_sum(a, n);
                norm = norm < FLOORV ? FLOORV : norm;
                scales[(r0 + r) * length + t] = norm;
                for (int64_t j = 0; j < n; j++) a[j] /= norm;
            }
        }
    }
}

/* Per-step scale factors for `batch` rows of `length` observations.
 * obs: (batch, length) int64; transition: (n, n); emission_t: (m, n)
 * (the emission transpose, row per symbol); initial: (n,); scales out:
 * (batch, length); work: scratch of 2*RBLK*n doubles (generic path). */
void repro_score_scales(const int64_t *obs, int64_t batch, int64_t length,
                        int64_t n, const double *transition,
                        const double *emission_t, const double *initial,
                        double *scales, double *work) {
    switch (n) {
    case 8:
        score_scales_8(obs, batch, length, transition, emission_t, initial, scales);
        return;
    case 16:
        score_scales_16(obs, batch, length, transition, emission_t, initial, scales);
        return;
    case 32:
        score_scales_32(obs, batch, length, transition, emission_t, initial, scales);
        return;
    case 48:
        score_scales_48(obs, batch, length, transition, emission_t, initial, scales);
        return;
    case 64:
        score_scales_64(obs, batch, length, transition, emission_t, initial, scales);
        return;
    default:
        score_scales_any(obs, batch, length, n, transition, emission_t, initial,
                         scales, work);
    }
}

/* ------------------------------------------------------------------ */
/* Incremental streaming step (streaming_step).                        */
/*                                                                     */
/* All per-state pointers live in a context struct built once per      */
/* StreamingState, so the per-event ctypes call passes two integers.   */
/* The caller owns the surprisal ring and the np.log — this updates    */
/* belief in place and returns the raw (pre-log, pre-negate) total.    */
/* ------------------------------------------------------------------ */

typedef struct {
    const double *transition;  /* (n, n), C-contiguous */
    const double *emission_t;  /* (m, n), C-contiguous */
    double *belief;            /* (n,) updated in place */
    double *predictive;        /* (n,) scratch */
    double *joint;             /* (n,) scratch */
    int64_t n;
    int64_t started;           /* kept in sync with StreamingState.started */
} ReproStreamCtx;

double repro_stream_step(ReproStreamCtx *ctx, int64_t index) {
    const int64_t n = ctx->n;
    const double *belief = ctx->belief;
    const double *erow = ctx->emission_t + index * n;
    double *joint = ctx->joint;
    const double *pred;
    if (ctx->started) {
        /* belief @ transition in the SkylakeX dgemv_n column-block
         * order (see file header); bit-identity is probe-verified. */
        const double *transition = ctx->transition;
        double *predictive = ctx->predictive;
        for (int64_t j = 0; j < n; j++) {
            double y = 0.0;
            int64_t i = 0;
            for (; i + 4 <= n; i += 4) {
                double t = belief[i + 1] * transition[(i + 1) * n + j];
                t = fma(belief[i], transition[i * n + j], t);
                t = fma(belief[i + 2], transition[(i + 2) * n + j], t);
                t = fma(belief[i + 3], transition[(i + 3) * n + j], t);
                y += t;
            }
            if (i + 2 <= n) {
                double t = belief[i + 1] * transition[(i + 1) * n + j];
                t = fma(belief[i], transition[i * n + j], t);
                y += t;
                i += 2;
            }
            if (i < n) y = fma(belief[i], transition[i * n + j], y);
            predictive[j] = y;
        }
        pred = predictive;
    } else {
        pred = belief;
        ctx->started = 1;
    }
    for (int64_t j = 0; j < n; j++) joint[j] = pred[j] * erow[j];
    double total = pairwise_sum(joint, n);
    /* Python max(total, floor): the floor wins only when strictly
     * greater (NaN totals pass through, matching max()). */
    total = FLOORV > total ? FLOORV : total;
    double *belief_out = ctx->belief;
    for (int64_t j = 0; j < n; j++) belief_out[j] = joint[j] / total;
    return total;
}
