"""Viterbi decoding: most likely hidden-state paths.

Beyond classification, a deployed detector wants to *explain* an alert.
Decoding the most likely state path through a statically-initialized model
maps each observed call back to the call (or call cluster) the model thinks
the program was executing — so a wrong-context call shows up as a position
where the decoded state's emission probability for the observation
collapses.  :func:`explain_segment` packages that per-position view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .forward import _check_obs
from .model import HiddenMarkovModel

#: Log-space floor for zero probabilities.
LOG_FLOOR = -1e30


@dataclass(frozen=True)
class DecodedPath:
    """Viterbi decoding result for one sequence.

    Attributes:
        states: most likely hidden-state index per time step.
        log_probability: joint log-probability of the path and observations.
    """

    states: np.ndarray
    log_probability: float


def viterbi(model: HiddenMarkovModel, obs: np.ndarray) -> list[DecodedPath]:
    """Decode the most likely state path for each observation sequence.

    Args:
        model: the HMM.
        obs: (B, T) integer observations (or (T,) for a single sequence).

    Returns:
        One :class:`DecodedPath` per sequence.
    """
    obs = _check_obs(model, obs)
    with np.errstate(divide="ignore"):
        log_a = np.where(model.transition > 0, np.log(model.transition), LOG_FLOOR)
        log_b = np.where(model.emission > 0, np.log(model.emission), LOG_FLOOR)
        log_pi = np.where(model.initial > 0, np.log(model.initial), LOG_FLOOR)

    paths: list[DecodedPath] = []
    batch, length = obs.shape
    n = model.n_states
    for index in range(batch):
        sequence = obs[index]
        delta = log_pi + log_b[:, sequence[0]]
        backpointers = np.empty((length, n), dtype=np.int64)
        for t in range(1, length):
            candidates = delta[:, None] + log_a  # (from, to)
            backpointers[t] = candidates.argmax(axis=0)
            delta = candidates.max(axis=0) + log_b[:, sequence[t]]
        best_final = int(delta.argmax())
        states = np.empty(length, dtype=np.int64)
        states[-1] = best_final
        for t in range(length - 1, 0, -1):
            states[t - 1] = backpointers[t, states[t]]
        paths.append(
            DecodedPath(states=states, log_probability=float(delta[best_final]))
        )
    return paths


@dataclass(frozen=True)
class PositionExplanation:
    """Why one position of a segment looked (ab)normal.

    Attributes:
        position: index within the segment.
        symbol: the observed symbol.
        state_label: descriptive label of the decoded hidden state (the
            call/cluster the model believes was executing), if available.
        emission_log_prob: log-probability that the decoded state emits the
            observed symbol — very negative means "this call does not belong
            here" (wrong context or unknown call).
        transition_log_prob: log-probability of entering the decoded state
            from the previous one (the initial probability at position 0) —
            very negative means "this call cannot follow the previous one"
            (impossible order).
    """

    position: int
    symbol: str
    state_label: str | None
    emission_log_prob: float
    transition_log_prob: float

    @property
    def local_log_prob(self) -> float:
        """Combined local cost of the position along the decoded path."""
        return self.emission_log_prob + self.transition_log_prob


def explain_segment(
    model: HiddenMarkovModel, segment: list[str] | tuple[str, ...]
) -> list[PositionExplanation]:
    """Per-position anomaly attribution for one segment.

    Returns explanations sorted by position; sort by ``emission_log_prob``
    to rank the most suspicious calls first.
    """
    if not segment:
        raise ModelError("cannot explain an empty segment")
    obs = model.encode([list(segment)])
    path = viterbi(model, obs)[0]
    explanations: list[PositionExplanation] = []
    for position, (state, symbol_index) in enumerate(zip(path.states, obs[0])):
        emission = float(model.emission[state, symbol_index])
        if position == 0:
            transition = float(model.initial[state])
        else:
            transition = float(model.transition[path.states[position - 1], state])
        label = (
            model.state_labels[state] if model.state_labels is not None else None
        )
        explanations.append(
            PositionExplanation(
                position=position,
                symbol=segment[position],
                state_label=label,
                emission_log_prob=float(np.log(max(emission, 1e-300))),
                transition_log_prob=float(np.log(max(transition, 1e-300))),
            )
        )
    return explanations


def most_suspicious_positions(
    model: HiddenMarkovModel,
    segment: list[str] | tuple[str, ...],
    top: int = 3,
) -> list[PositionExplanation]:
    """The ``top`` positions with the worst local (transition + emission)
    cost along the decoded path — wrong-context calls surface through the
    emission term, impossible orderings through the transition term."""
    explanations = explain_segment(model, segment)
    return sorted(explanations, key=lambda e: e.local_log_prob)[:top]
