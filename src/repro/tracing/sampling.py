"""Sampled tracing: the production-monitoring trade-off (Section V).

The paper notes that full interception with ``strace``/``ltrace`` is a
research-harness choice and that production systems would use lighter
collectors (auditd, with ~10 % overhead).  Lighter collectors drop events.
This module models that degradation so the cost/accuracy trade-off can be
measured (see ``benchmarks/bench_ablation_sampling.py``):

* :func:`sample_trace` — independent per-event retention (rate ``p``);
* :func:`throttle_trace` — burst-drop: keep at most ``budget`` events per
  window of ``period`` events, the back-pressure shape real collectors
  exhibit under load.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .events import Trace


def sample_trace(trace: Trace, rate: float, seed: int = 0) -> Trace:
    """Keep each event independently with probability ``rate``.

    Args:
        trace: the fully observed trace.
        rate: retention probability in (0, 1]; 1.0 returns a copy.
        seed: RNG seed (deterministic per trace/seed).

    Returns:
        A new :class:`Trace` with the surviving events, order preserved.
    """
    if not 0 < rate <= 1:
        raise TraceError(f"sampling rate must be in (0, 1], got {rate}")
    sampled = Trace(program=trace.program, case_id=f"{trace.case_id}@{rate}")
    if rate == 1.0:
        sampled.events = list(trace.events)
        return sampled
    rng = np.random.default_rng(seed ^ hash(trace.case_id) & 0x7FFFFFFF)
    keep = rng.random(len(trace.events)) < rate
    sampled.events = [e for e, kept in zip(trace.events, keep) if kept]
    return sampled


def throttle_trace(trace: Trace, budget: int, period: int, seed: int = 0) -> Trace:
    """Keep at most ``budget`` events out of every ``period`` consecutive
    events (uniformly chosen within the window) — collector back-pressure.
    """
    if budget <= 0 or period <= 0 or budget > period:
        raise TraceError("need 0 < budget <= period")
    throttled = Trace(
        program=trace.program, case_id=f"{trace.case_id}@{budget}/{period}"
    )
    rng = np.random.default_rng(seed ^ hash(trace.case_id) & 0x7FFFFFFF)
    for start in range(0, len(trace.events), period):
        window = trace.events[start : start + period]
        if len(window) <= budget:
            throttled.events.extend(window)
            continue
        picks = sorted(rng.choice(len(window), size=budget, replace=False))
        throttled.events.extend(window[i] for i in picks)
    return throttled


def sample_workload(
    traces: list[Trace], rate: float, seed: int = 0
) -> list[Trace]:
    """Apply :func:`sample_trace` to a whole workload."""
    return [
        sample_trace(trace, rate, seed=seed + index)
        for index, trace in enumerate(traces)
    ]
