"""Segmentation of traces into fixed-length n-grams (Section V-A).

"Training and classification are on n-grams of program traces, where n = 15
in our experiments."  Segments slide over each trace with stride 1, and
"duplicate segments are removed in our training datasets in order to avoid
bias" — we keep multiplicity counts so statistics can still be weighted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import TraceError
from ..program.calls import CallKind
from .events import Trace

#: The paper's segment length.
DEFAULT_SEGMENT_LENGTH = 15

Segment = tuple[str, ...]


def segment_symbols(
    symbols: Sequence[str], length: int = DEFAULT_SEGMENT_LENGTH, stride: int = 1
) -> list[Segment]:
    """Slide a window of ``length`` symbols over one trace's symbol stream."""
    if length <= 0 or stride <= 0:
        raise TraceError("segment length and stride must be positive")
    return [
        tuple(symbols[i : i + length])
        for i in range(0, len(symbols) - length + 1, stride)
    ]


@dataclass
class SegmentSet:
    """A deduplicated collection of equal-length segments with counts."""

    length: int
    counts: Counter = field(default_factory=Counter)

    def add(self, segment: Segment) -> None:
        if len(segment) != self.length:
            raise TraceError(
                f"segment length {len(segment)} != {self.length}"
            )
        self.counts[segment] += 1

    def update(self, segments: Iterable[Segment]) -> None:
        for segment in segments:
            self.add(segment)

    @property
    def n_unique(self) -> int:
        return len(self.counts)

    @property
    def n_total(self) -> int:
        return sum(self.counts.values())

    def segments(self) -> list[Segment]:
        """Unique segments in deterministic (sorted) order."""
        return sorted(self.counts)

    def weights(self, segments: Sequence[Segment] | None = None) -> np.ndarray:
        """Multiplicity per segment, aligned with :meth:`segments`."""
        if segments is None:
            segments = self.segments()
        return np.array([self.counts[s] for s in segments], dtype=float)

    def alphabet(self) -> list[str]:
        """Sorted distinct symbols across all segments."""
        symbols: set[str] = set()
        for segment in self.counts:
            symbols.update(segment)
        return sorted(symbols)

    def split(
        self, fractions: Sequence[float], seed: int = 0
    ) -> list["SegmentSet"]:
        """Randomly partition the *unique* segments into parts.

        Args:
            fractions: part sizes; must sum to 1 (within tolerance).
            seed: shuffle seed.

        Returns:
            One :class:`SegmentSet` per fraction, preserving counts.
        """
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise TraceError("split fractions must sum to 1")
        unique = self.segments()
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(unique))
        boundaries = np.cumsum([round(f * len(unique)) for f in fractions])
        boundaries[-1] = len(unique)
        parts: list[SegmentSet] = []
        start = 0
        for end in boundaries:
            part = SegmentSet(length=self.length)
            for position in order[start:end]:
                segment = unique[position]
                part.counts[segment] = self.counts[segment]
            parts.append(part)
            start = int(end)
        return parts

    def folds(self, k: int, seed: int = 0) -> list[tuple["SegmentSet", "SegmentSet"]]:
        """K-fold cross-validation splits over unique segments.

        Returns ``k`` pairs ``(train, test)``.
        """
        if k < 2:
            raise TraceError("k must be at least 2")
        unique = self.segments()
        if len(unique) < k:
            raise TraceError(f"cannot make {k} folds from {len(unique)} segments")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(unique))
        fold_of = np.empty(len(unique), dtype=int)
        for position, index in enumerate(order):
            fold_of[index] = position % k
        pairs: list[tuple[SegmentSet, SegmentSet]] = []
        for fold in range(k):
            train = SegmentSet(length=self.length)
            test = SegmentSet(length=self.length)
            for index, segment in enumerate(unique):
                target = test if fold_of[index] == fold else train
                target.counts[segment] = self.counts[segment]
            pairs.append((train, test))
        return pairs


def build_segment_set(
    traces: Iterable[Trace],
    kind: CallKind,
    context: bool,
    length: int = DEFAULT_SEGMENT_LENGTH,
    stride: int = 1,
) -> SegmentSet:
    """Segment many traces for one model family (kind × context)."""
    segment_set = SegmentSet(length=length)
    for trace in traces:
        symbols = trace.symbols(kind, context)
        segment_set.update(segment_symbols(symbols, length=length, stride=stride))
    return segment_set


def build_segment_set_at_depth(
    traces: Iterable[Trace],
    kind: CallKind,
    depth: int,
    length: int = DEFAULT_SEGMENT_LENGTH,
    stride: int = 1,
) -> SegmentSet:
    """Segment traces with k-level calling context (§II-C's rejected deeper
    design; depth 0 = bare names, 1 = the paper's form, 2+ = call chains).
    """
    segment_set = SegmentSet(length=length)
    for trace in traces:
        symbols = [
            event.symbol_at_depth(depth) for event in trace.filter(kind)
        ]
        segment_set.update(segment_symbols(symbols, length=length, stride=stride))
    return segment_set
