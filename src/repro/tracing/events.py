"""Trace events: what the monitoring layer observes at runtime.

The paper intercepts syscalls/libcalls with ``strace``/``ltrace`` and maps
each event's instruction pointer to its caller function with ``addr2line``.
Our executor emits the same information directly: the call name, its kind,
and the function whose body issued it (the 1-level calling context).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TraceError
from ..program.calls import CallKind
from ..program.program import context_label


@dataclass(frozen=True)
class CallEvent:
    """One observed call.

    Attributes:
        name: syscall or libcall name.
        caller: function whose body made the call (1-level context).
        kind: syscall vs libcall.
        stack: optional call-chain suffix ending at ``caller`` (e.g.
            ``("main", "g", "f")`` for a call made inside ``f`` called from
            ``g``).  Recorded by the executor; empty when the producer only
            knows the immediate caller.  Enables the k-level-context
            ablation — the deeper-context design the paper declines for
            cost reasons (§II-C).
    """

    name: str
    caller: str
    kind: CallKind
    stack: tuple[str, ...] = ()

    def symbol(self, context: bool) -> str:
        """The observation label for this event (the paper's 1-level form)."""
        return context_label(self.name, self.caller) if context else self.name

    def symbol_at_depth(self, depth: int) -> str:
        """The k-level-context observation label.

        ``depth=0`` is the bare name; ``depth=1`` the paper's
        ``name@caller``; deeper values append callers of callers joined by
        ``/`` (``read@g/f``), truncated to what the recorded stack holds.

        Raises:
            TraceError: for a negative depth.
        """
        if depth < 0:
            raise TraceError(f"context depth must be >= 0, got {depth}")
        if depth == 0:
            return self.name
        if depth == 1 or not self.stack:
            return context_label(self.name, self.caller)
        chain = self.stack[-depth:]
        return context_label(self.name, "/".join(chain))

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.name}@{self.caller}"


@dataclass
class Trace:
    """One program execution's event stream.

    Attributes:
        program: program name.
        case_id: workload test-case identifier that produced the trace.
        events: ordered call events.
    """

    program: str
    case_id: str
    events: list[CallEvent] = field(default_factory=list)

    def append(self, event: CallEvent) -> None:
        self.events.append(event)

    def filter(self, kind: CallKind) -> list[CallEvent]:
        """Events of one kind, order preserved."""
        if kind is CallKind.INTERNAL:
            raise TraceError("internal calls are not trace events")
        return [e for e in self.events if e.kind is kind]

    def symbols(self, kind: CallKind, context: bool) -> list[str]:
        """The observation-symbol stream for one model family."""
        return [e.symbol(context) for e in self.filter(kind)]

    def __len__(self) -> int:
        return len(self.events)
