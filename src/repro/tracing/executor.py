"""Stochastic trace executor: run a synthetic program, record its calls.

This is the dynamic half of the substitution for the paper's testbed: where
the original work runs real binaries under ``strace``/``ltrace``, we *walk*
the program's CFGs.  Control flow is concrete — internal calls push a call
stack, loops actually iterate — and only branch outcomes are stochastic.

Each workload test case owns a :class:`BranchProfile`: a deterministic,
case-specific preference over every branch's outgoing edges.  Different
cases therefore steer execution down different paths, the way different
inputs exercise different code in the SIR test suites, and a suite of many
cases accumulates branch/line coverage (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError
from ..program.calls import CallKind
from ..program.program import Program
from .events import CallEvent, Trace

#: Default cap on observable events per run (keeps loop-heavy cases bounded).
DEFAULT_MAX_EVENTS = 2_000
#: Default cap on walked blocks per run.
DEFAULT_MAX_STEPS = 60_000
#: Call-stack depth cap; deeper internal calls are skipped (recursion guard).
DEFAULT_MAX_DEPTH = 128


class BranchProfile:
    """Deterministic per-test-case branch preferences.

    For every branch (function, block) the profile lazily draws one Dirichlet
    weight vector from its own RNG and reuses it for every visit, so a test
    case's path distribution is stable and distinct from other cases'.
    """

    def __init__(self, seed: int, concentration: float = 1.0) -> None:
        if concentration <= 0:
            raise TraceError("concentration must be positive")
        self._rng = np.random.default_rng(seed)
        self._concentration = concentration
        self._weights: dict[tuple[str, int], np.ndarray] = {}

    def edge_weights(self, function: str, block: int, n_edges: int) -> np.ndarray:
        key = (function, block)
        weights = self._weights.get(key)
        if weights is None or weights.shape[0] != n_edges:
            weights = self._rng.dirichlet(np.full(n_edges, self._concentration))
            # Keep every edge takable so loops always terminate and coverage
            # accumulates across visits.
            weights = np.maximum(weights, 0.05)
            weights = weights / weights.sum()
            self._weights[key] = weights
        return weights


@dataclass
class ExecutionResult:
    """A trace plus the coverage footprint of the run."""

    trace: Trace
    visited_blocks: set[tuple[str, int]] = field(default_factory=set)
    visited_edges: set[tuple[str, int, int]] = field(default_factory=set)
    steps: int = 0
    truncated: bool = False


class TraceExecutor:
    """Walks a program's CFGs and records syscall/libcall events."""

    def __init__(
        self,
        program: Program,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        program.validate()
        self.program = program
        self.max_events = max_events
        self.max_steps = max_steps
        self.max_depth = max_depth

    def run(self, case_id: str, seed: int) -> ExecutionResult:
        """Execute one test case.

        Args:
            case_id: identifier recorded on the trace.
            seed: drives both the case's branch profile and the per-visit
                sampling, so runs are fully reproducible.
        """
        profile = BranchProfile(seed=seed)
        rng = np.random.default_rng(seed ^ 0x9E3779B9)
        trace = Trace(program=self.program.name, case_id=case_id)
        result = ExecutionResult(trace=trace)

        # Explicit call stack of (function name, block iterator position).
        stack: list[tuple[str, int]] = [
            (self.program.entry_function, self.program.entry.entry)
        ]
        while stack:
            if result.steps >= self.max_steps or len(trace) >= self.max_events:
                result.truncated = True
                break
            function_name, block_id = stack.pop()
            function = self.program.function(function_name)
            block = function.block(block_id)
            result.steps += 1
            result.visited_blocks.add((function_name, block_id))

            site = block.call
            descend: str | None = None
            if site is not None:
                if site.kind is CallKind.INTERNAL:
                    if site.is_indirect:
                        # Function-pointer dispatch: the case's branch
                        # profile fixes a stable preference over targets,
                        # mirroring how a given input drives one handler.
                        weights = profile.edge_weights(
                            function_name, -block_id - 1, len(site.targets)
                        )
                        choice = int(rng.choice(len(site.targets), p=weights))
                        target = site.targets[choice]
                    else:
                        target = site.name
                    if (
                        target in self.program.functions
                        and len(stack) < self.max_depth
                    ):
                        descend = target
                else:
                    # The continuation stack holds exactly one frame per
                    # active call, so its function names are the call chain.
                    chain = tuple(fn for fn, _ in stack) + (function_name,)
                    trace.append(
                        CallEvent(
                            name=site.name,
                            caller=function_name,
                            kind=site.kind,
                            stack=chain[-4:],  # suffix is enough for k <= 4
                        )
                    )

            successors = function.successors(block_id)
            if successors:
                if len(successors) == 1:
                    next_block = successors[0]
                else:
                    weights = profile.edge_weights(
                        function_name, block_id, len(successors)
                    )
                    next_block = successors[int(rng.choice(len(successors), p=weights))]
                result.visited_edges.add((function_name, block_id, next_block))
                stack.append((function_name, next_block))
            # No successors: function returns; the caller's continuation is
            # already on the stack.

            if descend is not None:
                callee = self.program.function(descend)
                stack.append((descend, callee.entry))
        return result


def collect_traces(
    program: Program,
    n_cases: int,
    seed: int = 0,
    executor: TraceExecutor | None = None,
) -> list[ExecutionResult]:
    """Run ``n_cases`` deterministic test cases and return their results."""
    executor = executor or TraceExecutor(program)
    base = np.random.default_rng(seed).integers(0, 2**63 - 1, size=n_cases)
    return [
        executor.run(case_id=f"{program.name}-case-{i:05d}", seed=int(case_seed))
        for i, case_seed in enumerate(base)
    ]
