"""Dynamic tracing substrate: executor, workloads, and n-gram segmentation.

The stand-in for the paper's strace/ltrace/addr2line toolchain and the SIR
test suites (DESIGN.md §2).
"""

from .events import CallEvent, Trace
from .logio import iter_segment_lines, read_traces, write_traces
from .sampling import sample_trace, sample_workload, throttle_trace
from .executor import (
    BranchProfile,
    ExecutionResult,
    TraceExecutor,
    collect_traces,
)
from .segments import (
    DEFAULT_SEGMENT_LENGTH,
    Segment,
    SegmentSet,
    build_segment_set,
    build_segment_set_at_depth,
    segment_symbols,
)
from .workload import (
    PAPER_CASE_COUNTS,
    CoverageReport,
    WorkloadResult,
    run_workload,
)

__all__ = [
    "DEFAULT_SEGMENT_LENGTH",
    "PAPER_CASE_COUNTS",
    "BranchProfile",
    "CallEvent",
    "CoverageReport",
    "ExecutionResult",
    "Segment",
    "SegmentSet",
    "Trace",
    "TraceExecutor",
    "WorkloadResult",
    "build_segment_set",
    "build_segment_set_at_depth",
    "collect_traces",
    "iter_segment_lines",
    "read_traces",
    "sample_trace",
    "sample_workload",
    "throttle_trace",
    "write_traces",
    "run_workload",
    "segment_symbols",
]
