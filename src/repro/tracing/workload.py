"""Workload generation and coverage accounting (the SIR role, Table I).

The paper trains on traces from the Software-artifact Infrastructure
Repository test suites (utilities) and scripted client sessions (servers),
and reports how much of each program those cases cover.  Here a *workload*
is a deterministic family of test cases — each case is one executor seed —
and the suite's footprint yields branch and line coverage figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..program.program import Program
from .events import Trace
from .executor import ExecutionResult, TraceExecutor, collect_traces


@dataclass(frozen=True)
class CoverageReport:
    """Coverage achieved by one test suite on one program.

    Line coverage uses block weights as line counts, the closest analogue of
    source-line coverage our block-level IR supports.
    """

    program: str
    n_cases: int
    branch_coverage: float
    line_coverage: float
    visited_blocks: int
    total_blocks: int

    def row(self) -> tuple[str, int, str, str]:
        """Formatted row matching Table I's columns."""
        return (
            self.program,
            self.n_cases,
            f"{self.branch_coverage * 100:.1f}%",
            f"{self.line_coverage * 100:.1f}%",
        )


@dataclass
class WorkloadResult:
    """Traces plus aggregate coverage for one suite run."""

    program: str
    results: list[ExecutionResult] = field(default_factory=list)

    @property
    def traces(self) -> list[Trace]:
        return [r.trace for r in self.results]

    def coverage(self, program: Program) -> CoverageReport:
        """Aggregate the suite's footprint into a Table I row."""
        visited_blocks: set[tuple[str, int]] = set()
        visited_edges: set[tuple[str, int, int]] = set()
        for result in self.results:
            visited_blocks.update(result.visited_blocks)
            visited_edges.update(result.visited_edges)

        total_branch_edges = 0
        covered_branch_edges = 0
        total_lines = 0
        covered_lines = 0
        for function in program.iter_functions():
            for block_id in function.blocks:
                weight = function.block(block_id).weight
                total_lines += weight
                if (function.name, block_id) in visited_blocks:
                    covered_lines += weight
                successors = function.successors(block_id)
                if len(successors) > 1:
                    for dst in successors:
                        total_branch_edges += 1
                        if (function.name, block_id, dst) in visited_edges:
                            covered_branch_edges += 1

        return CoverageReport(
            program=program.name,
            n_cases=len(self.results),
            branch_coverage=(
                covered_branch_edges / total_branch_edges if total_branch_edges else 1.0
            ),
            line_coverage=covered_lines / total_lines if total_lines else 1.0,
            visited_blocks=len(visited_blocks),
            total_blocks=program.total_blocks(),
        )


#: Test-case counts per program in the paper's Table I (used as defaults by
#: the coverage benchmark, scaled down for speed).
PAPER_CASE_COUNTS: dict[str, int] = {
    "flex": 525,
    "grep": 809,
    "gzip": 214,
    "sed": 370,
    "bash": 1061,
    "vim": 975,
    "proftpd": 600,
    "nginx": 620,
}


def run_workload(
    program: Program,
    n_cases: int,
    seed: int = 0,
    executor: TraceExecutor | None = None,
) -> WorkloadResult:
    """Run a deterministic test suite of ``n_cases`` cases."""
    results = collect_traces(program, n_cases=n_cases, seed=seed, executor=executor)
    return WorkloadResult(program=program.name, results=results)
