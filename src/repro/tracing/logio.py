"""Trace log files: the textual interchange format for call traces.

The paper's toolchain materializes traces as ``strace``/``ltrace`` text
output plus ``addr2line`` caller resolution.  This module defines the
equivalent (already-resolved) log format so traces can leave the process —
be archived, shipped to an analysis host, or scored by the CLI:

    # trace program=<name> case=<case-id>
    <kind> <call-name> @ <caller>
    ...

One event per line; ``#``-prefixed lines are headers/comments; blank lines
separate traces, so one file can hold a whole workload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..errors import TraceError
from ..program.calls import CallKind
from .events import CallEvent, Trace

_HEADER_PREFIX = "# trace"


def write_traces(traces: Iterable[Trace], path: str | Path) -> int:
    """Write traces to ``path``; returns the number of traces written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            _write_one(trace, handle)
            handle.write("\n")
            count += 1
    return count


def _write_one(trace: Trace, handle: TextIO) -> None:
    handle.write(f"{_HEADER_PREFIX} program={trace.program} case={trace.case_id}\n")
    for event in trace.events:
        handle.write(f"{event.kind.value} {event.name} @ {event.caller}\n")


def read_traces(path: str | Path) -> list[Trace]:
    """Parse a trace log file written by :func:`write_traces`.

    Raises:
        TraceError: on malformed lines, unknown event kinds, or events
            appearing before any trace header.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace log {path} does not exist")
    traces: list[Trace] = []
    current: Trace | None = None
    for line_number, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(_HEADER_PREFIX):
            current = _parse_header(line, line_number)
            traces.append(current)
            continue
        if line.startswith("#"):
            continue
        if current is None:
            raise TraceError(f"{path}:{line_number}: event before any trace header")
        current.append(_parse_event(line, line_number))
    return traces


def _parse_header(line: str, line_number: int) -> Trace:
    fields = dict(
        part.split("=", 1) for part in line[len(_HEADER_PREFIX):].split() if "=" in part
    )
    if "program" not in fields or "case" not in fields:
        raise TraceError(f"line {line_number}: header missing program=/case=")
    return Trace(program=fields["program"], case_id=fields["case"])


def _parse_event(line: str, line_number: int) -> CallEvent:
    parts = line.split()
    if len(parts) != 4 or parts[2] != "@":
        raise TraceError(
            f"line {line_number}: expected '<kind> <name> @ <caller>', got {line!r}"
        )
    kind_text, name, _, caller = parts
    try:
        kind = CallKind(kind_text)
    except ValueError:
        raise TraceError(
            f"line {line_number}: unknown event kind {kind_text!r}"
        ) from None
    if kind is CallKind.INTERNAL:
        raise TraceError(f"line {line_number}: internal calls are not trace events")
    return CallEvent(name=name, caller=caller, kind=kind)


def iter_segment_lines(
    traces: Iterable[Trace], kind: CallKind, context: bool, length: int
) -> Iterator[str]:
    """Render traces as space-separated segment lines (CLI ``score`` input)."""
    from .segments import segment_symbols

    for trace in traces:
        for segment in segment_symbols(trace.symbols(kind, context), length=length):
            yield " ".join(segment)
