"""Attack simulation: Abnormal-S, ROP chains, exploit payloads, mimicry."""

from .exploits import (
    EXPLOITS,
    ExploitSpec,
    abnormal_context_fraction,
    build_attack_events,
    payloads_for,
)
from .mimicry import MimicryAttempt, craft_mimicry, mimicry_headroom
from .rop import (
    DEFAULT_CONTEXT_FIDELITY,
    MISSING_CONTEXT,
    Q1_NAMES,
    Q2_NAMES,
    code_reuse_from_normal,
    gzip_q1_q2,
    rop_chain_events,
)
from .synthetic import (
    DEFAULT_REPLACED_CALLS,
    abnormal_s_segments,
    legitimate_call_set,
)

__all__ = [
    "DEFAULT_CONTEXT_FIDELITY",
    "DEFAULT_REPLACED_CALLS",
    "EXPLOITS",
    "MISSING_CONTEXT",
    "Q1_NAMES",
    "Q2_NAMES",
    "ExploitSpec",
    "MimicryAttempt",
    "abnormal_context_fraction",
    "abnormal_s_segments",
    "build_attack_events",
    "code_reuse_from_normal",
    "craft_mimicry",
    "gzip_q1_q2",
    "legitimate_call_set",
    "mimicry_headroom",
    "payloads_for",
    "rop_chain_events",
]
