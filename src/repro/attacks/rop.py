"""Code-reuse (ROP) attack trace construction (Sections V-D, V-E).

A return-oriented payload chains gadgets that already live in the victim's
address space.  From the monitor's perspective each chained syscall fires
with the caller context derived from the *gadget's* instruction pointer —
not from the legitimate call path.  Whether that context happens to be
correct depends on which gadget the chain could use:

* the *intended* ``[SYSCALL; RET]`` gadget inside the syscall's own wrapper
  yields a correct per-call context (these are the few "context-compatible"
  gadgets Table III counts);
* every other gadget — unintended mid-operand decodings, syscall bytes
  reached from another function, shellcode in data pages — yields an
  incorrect or missing context.

Real chains rarely get to use the intended gadget for every call: register
setup, stack pivots, and argument control force the attacker onto whatever
gadgets exist.  The paper observed that 30-90 % of the calls in its
reproduced attack traces carried abnormal (missing or incorrect) context
(Section V-E).  We expose that as ``context_fidelity``: the probability a
chained call manages to use its legitimate, context-compatible gadget.

The module reproduces:

* :func:`rop_chain_events` — a generic gadget-chain call stream;
* :func:`code_reuse_from_normal` — the stealthiest variant (Section II-C's
  ``S2``): a *normal* call-name sequence re-sourced through gadgets, so the
  names and order are perfect and only contexts are off;
* :func:`gzip_q1_q2` — the two concrete gzip segments of Section V-D.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..gadgets.scanner import Gadget, scan_gadgets
from ..program.calls import SYSCALLS, CallKind
from ..program.image import BinaryImage
from ..tracing.events import CallEvent
from ..tracing.segments import Segment

#: Caller recorded when the syscall's address cannot be attributed to any
#: function (shellcode in data pages, unmapped gadget starts...).
MISSING_CONTEXT = "[unmapped]"

#: Default probability that a chained call uses its context-compatible
#: gadget; 1 - fidelity matches the paper's 30-90 % abnormal-context band.
DEFAULT_CONTEXT_FIDELITY = 0.3


class _GadgetPool:
    """Index of an image's gadgets by syscall name and compatibility."""

    def __init__(self, image: BinaryImage, gadgets: list[Gadget] | None = None):
        self.image = image
        self.gadgets = gadgets if gadgets is not None else scan_gadgets(image)
        if not self.gadgets:
            raise TraceError(f"{image.name}: no syscall gadgets available")
        self.functions = sorted(image.extents)
        self.compatible_by_name: dict[str, list[Gadget]] = {}
        for gadget in self.gadgets:
            if gadget.intended and gadget.syscall_name is not None:
                self.compatible_by_name.setdefault(gadget.syscall_name, []).append(
                    gadget
                )

    def event_for(
        self, name: str, rng: np.random.Generator, context_fidelity: float
    ) -> CallEvent:
        """Emit ``name`` through the chain: correct context with probability
        ``context_fidelity`` (when a compatible gadget exists at all)."""
        hosts = self.compatible_by_name.get(name)
        if hosts and rng.random() < context_fidelity:
            gadget = hosts[int(rng.integers(0, len(hosts)))]
            caller = gadget.function or MISSING_CONTEXT
        else:
            caller = self._foreign_context(name, rng)
        return CallEvent(name=name, caller=caller, kind=CallKind.SYSCALL)

    def _foreign_context(self, name: str, rng: np.random.Generator) -> str:
        """A wrong-or-missing context for one chained call."""
        if rng.random() < 0.25:
            return MISSING_CONTEXT
        hosts = {g.function for g in self.compatible_by_name.get(name, ())}
        candidates = [f for f in self.functions if f not in hosts]
        if not candidates:
            return MISSING_CONTEXT
        return candidates[int(rng.integers(0, len(candidates)))]


def rop_chain_events(
    image: BinaryImage,
    n_calls: int,
    seed: int = 0,
    gadgets: list[Gadget] | None = None,
    context_fidelity: float = DEFAULT_CONTEXT_FIDELITY,
) -> list[CallEvent]:
    """Assemble a generic ROP chain of ``n_calls`` syscalls.

    Call names follow common post-exploitation goals (I/O redirection, file
    tampering, command execution) in random order — a chain whose *order*
    and *contexts* both deviate from normal behaviour.
    """
    pool = _GadgetPool(image, gadgets)
    rng = np.random.default_rng(seed)
    known = [g.syscall_name for g in pool.gadgets if g.syscall_name is not None]
    if not known:
        known = ["execve", "read", "write"]
    names = [known[int(i)] for i in rng.integers(0, len(known), size=n_calls)]
    return [pool.event_for(name, rng, context_fidelity) for name in names]


def code_reuse_from_normal(
    normal_segment: Segment,
    image: BinaryImage,
    seed: int = 0,
    gadgets: list[Gadget] | None = None,
    context_fidelity: float = DEFAULT_CONTEXT_FIDELITY,
) -> list[CallEvent]:
    """Re-source a normal syscall-name sequence through ROP gadgets.

    Produces the paper's S2 pattern: identical call names in identical order
    to a legitimate execution — only the caller contexts betray the attack.
    Context-insensitive models see nothing wrong with these segments.
    """
    pool = _GadgetPool(image, gadgets)
    rng = np.random.default_rng(seed)
    events: list[CallEvent] = []
    for symbol in normal_segment:
        name = symbol.partition("@")[0]
        if name not in SYSCALLS:
            raise TraceError(f"{symbol!r} is not a syscall symbol")
        events.append(pool.event_for(name, rng, context_fidelity))
    return events


#: The two anomalous gzip syscall segments reproduced in Section V-D, names
#: verbatim from the paper; q1 has 15 calls, q2 has 18.
Q1_NAMES: tuple[str, ...] = (
    "uname", "brk", "brk", "brk",
    "rt_sigaction", "rt_sigaction", "rt_sigaction", "rt_sigaction",
    "rt_sigaction", "rt_sigaction",
    "read", "close", "close", "unlink", "chmod",
)
Q2_NAMES: tuple[str, ...] = (
    "brk",
    "rt_sigaction", "rt_sigaction", "rt_sigaction", "rt_sigaction",
    "rt_sigaction", "rt_sigaction", "rt_sigaction",
    "rt_sigaction", "rt_sigaction",
    "stat", "openat", "getdents", "close", "write", "read", "write", "write",
)


def gzip_q1_q2(
    image: BinaryImage,
    seed: int = 7,
    context_fidelity: float = DEFAULT_CONTEXT_FIDELITY,
) -> tuple[list[CallEvent], list[CallEvent]]:
    """Build the paper's q1 and q2 gzip ROP segments with gadget contexts.

    The name sequences mimic gzip's normal startup/teardown syscalls, which
    is why the paper's context-insensitive models accepted them; the
    contexts come from the chain's gadgets and give them away.
    """
    if image.name != "gzip":
        raise TraceError("q1/q2 are defined on the gzip image")
    pool = _GadgetPool(image)
    rng1 = np.random.default_rng(seed)
    rng2 = np.random.default_rng(seed + 1)
    q1 = [pool.event_for(name, rng1, context_fidelity) for name in Q1_NAMES]
    q2 = [pool.event_for(name, rng2, context_fidelity) for name in Q2_NAMES]
    return q1, q2
