"""Mimicry attack crafting (Section II-A's attack-model discussion).

A mimicry attack arranges its malicious calls in an order the detector
considers plausible.  The paper does not claim to defeat general mimicry,
but argues that quantitative scoring plus context sensitivity makes crafting
one hard: the attacker must find *high-likelihood* paths to the calls it
needs, with *correct contexts* for every step.

This module gives the attacker's side its best shot, for evaluation: it
splices a required call (e.g. ``execve``) into a genuine normal segment at
the position that maximizes the trained model's likelihood.  Comparing the
best mimicry score against the detector threshold quantifies how much
headroom an attacker has on a given program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.detector import Detector
from ..errors import TraceError
from ..tracing.segments import Segment


@dataclass(frozen=True)
class MimicryAttempt:
    """One crafted segment and its score under the target detector."""

    segment: Segment
    score: float
    insert_position: int
    host_segment: Segment


def craft_mimicry(
    detector: Detector,
    normal_segments: list[Segment],
    required_symbol: str,
    max_hosts: int = 200,
    seed: int = 0,
) -> MimicryAttempt:
    """Craft the highest-scoring segment containing ``required_symbol``.

    Args:
        detector: a *fitted* detector (the attacker is assumed to know the
            model — the strongest assumption in the paper's threat model).
        normal_segments: candidate host segments to splice into.
        required_symbol: the observation the attack must make, in the
            detector's own label form (``execve`` or ``execve@caller``).
        max_hosts: number of host segments tried (sampled deterministically).
        seed: host-sampling seed.

    Returns:
        The best :class:`MimicryAttempt` found.
    """
    if not normal_segments:
        raise TraceError("no host segments supplied")
    rng = np.random.default_rng(seed)
    if len(normal_segments) > max_hosts:
        picks = rng.choice(len(normal_segments), size=max_hosts, replace=False)
        hosts = [normal_segments[int(i)] for i in picks]
    else:
        hosts = list(normal_segments)

    candidates: list[tuple[Segment, int, Segment]] = []
    for host in hosts:
        for position in range(len(host)):
            mutated = tuple(
                required_symbol if index == position else symbol
                for index, symbol in enumerate(host)
            )
            candidates.append((mutated, position, host))

    scores = detector.score([c[0] for c in candidates])
    best = int(np.argmax(scores))
    segment, position, host = candidates[best]
    return MimicryAttempt(
        segment=segment,
        score=float(scores[best]),
        insert_position=position,
        host_segment=host,
    )


def mimicry_headroom(
    detector: Detector,
    normal_segments: list[Segment],
    required_symbol: str,
    threshold: float,
    **kwargs,
) -> tuple[MimicryAttempt, bool]:
    """Best attempt plus whether it would evade at ``threshold``."""
    attempt = craft_mimicry(detector, normal_segments, required_symbol, **kwargs)
    return attempt, attempt.score >= threshold
