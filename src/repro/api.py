"""The one supported import surface for building, training, and serving
detectors.

Everything a downstream user needs routes through five entry points::

    from repro import api

    detector = api.build_detector("cmarkov", program, "syscall")
    api.fit(detector, normal_segments)
    scores = api.score(detector, windows)
    monitor = api.open_monitor(detector, normal_scores=holdout_scores)
    deployed = api.load_pretrained("gzip-cmarkov.npz")

Batch experiments route through one grid surface: declare a
:class:`~repro.runtime.grid.GridSpec` (``api.accuracy_grid``,
``api.robustness_grid``) and execute it with :func:`api.run_grid` — every
grid gets the same resumable, content-addressed, parallel runner::

    result = api.run_grid(api.accuracy_grid(["gzip"], "syscall"))
    comparisons = api.accuracy_comparisons(result)

    grid = api.open_robustness_grid(["gzip"])
    corpus = grid.corpus()          # runs (resuming) then summarises

The deeper modules (:mod:`repro.core`, :mod:`repro.hmm`, ...) stay
importable for research use, but their constructor aliases
(``make_detector``, ``detector_factory``) and the monolithic
``run_accuracy_grid`` runner are deprecated shims that warn with
:class:`~repro.errors.ReproDeprecationWarning` and forward here.

.. rubric:: Threshold convention

.. data:: THRESHOLD_RULE

    The library-wide flagging rule, pinned in one place: a segment/window is
    **anomalous iff ``score < threshold``** — strictly below, so a score
    exactly at the threshold is normal.  ``Detector.classify``,
    :class:`~repro.core.monitor.OnlineMonitor`, the detection service
    (:mod:`repro.service`), and the FP/FN metrics (Equations 3-4 in
    :mod:`repro.core.metrics`) all apply this same comparison; FN counts
    abnormal segments with ``score >= threshold`` as misses, the exact
    complement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .core.detector import (
    Detector,
    DetectorConfig,
    FitResult,
    PretrainedDetector,
)
from .core.monitor import OnlineMonitor
from .core.registry import (
    EXTRA_MODEL_NAMES,
    MODEL_NAMES,
    DetectorSpec,
    build_detector,
    detector_spec,
    model_is_context_sensitive,
)
from .core.thresholds import threshold_for_fp_budget
from .errors import EvaluationError, ModelError
from .eval.runners import AccuracyGridConfig, accuracy_comparisons, accuracy_grid
from .hmm.model import HiddenMarkovModel
from .hmm.serialize import load_model
from .program.calls import CallKind
from .robustness import (
    ATTACK_FAMILIES,
    DEFAULT_SEVERITIES,
    RobustnessConfig,
    RobustnessGrid,
    open_robustness_grid,
    robustness_grid,
)
from .runtime.grid import GridAxis, GridResult, GridSpec, run_grid
from .tracing.segments import DEFAULT_SEGMENT_LENGTH, Segment, SegmentSet

__all__ = [
    "ATTACK_FAMILIES",
    "DEFAULT_SEVERITIES",
    "EXTRA_MODEL_NAMES",
    "MODEL_NAMES",
    "THRESHOLD_RULE",
    "AccuracyGridConfig",
    "Detector",
    "DetectorConfig",
    "DetectorSpec",
    "GridAxis",
    "GridResult",
    "GridSpec",
    "PretrainedDetector",
    "RobustnessConfig",
    "RobustnessGrid",
    "accuracy_comparisons",
    "accuracy_grid",
    "available_kernel_backends",
    "build_detector",
    "detector_spec",
    "fit",
    "kernel_backend",
    "load_pretrained",
    "model_is_context_sensitive",
    "open_gateway",
    "open_monitor",
    "open_registry",
    "open_robustness_grid",
    "open_service",
    "robustness_grid",
    "run_grid",
    "score",
    "use_kernel_backend",
]

#: Anomalous iff ``score < threshold`` (strict; ties are normal).
THRESHOLD_RULE = "score < threshold"


def fit(
    detector: Detector,
    normal_segments: SegmentSet | Iterable[Segment],
    length: int = DEFAULT_SEGMENT_LENGTH,
) -> FitResult:
    """Train ``detector`` on normal segments; returns training diagnostics.

    Accepts either a prepared :class:`~repro.tracing.segments.SegmentSet`
    (from :func:`repro.tracing.build_segment_set`) or any iterable of
    equal-length symbol tuples, which is deduplicated with multiplicity
    counts exactly as the segmentation layer would.
    """
    if not isinstance(normal_segments, SegmentSet):
        materialized = [tuple(segment) for segment in normal_segments]
        if materialized:
            length = len(materialized[0])
        segment_set = SegmentSet(length=length)
        segment_set.update(materialized)
        normal_segments = segment_set
    return detector.fit(normal_segments)


def score(detector: Detector, windows: Sequence[Segment]) -> np.ndarray:
    """Per-window normality scores (per-symbol mean log-likelihood).

    Higher is more normal; compare against a threshold with the
    :data:`THRESHOLD_RULE` convention (``score < threshold`` flags).
    """
    return detector.score(list(windows))


def open_monitor(
    detector: Detector,
    threshold: float | None = None,
    *,
    normal_scores: np.ndarray | None = None,
    fp_budget: float = 0.01,
    segment_length: int = DEFAULT_SEGMENT_LENGTH,
    cooldown: int | None = None,
) -> OnlineMonitor:
    """Open a streaming window monitor over a fitted detector.

    The operating threshold is either given explicitly or derived from
    held-out ``normal_scores`` at ``fp_budget`` via
    :func:`~repro.core.thresholds.threshold_for_fp_budget`.
    """
    if threshold is None:
        if normal_scores is None:
            raise EvaluationError(
                "open_monitor needs a threshold: pass threshold=..., or "
                "normal_scores=... to derive one from an FP budget"
            )
        threshold = threshold_for_fp_budget(np.asarray(normal_scores), fp_budget)
    elif normal_scores is not None:
        raise EvaluationError(
            "pass either threshold= or normal_scores=, not both"
        )
    return OnlineMonitor(
        detector,
        threshold=threshold,
        segment_length=segment_length,
        cooldown=cooldown,
    )


def open_service(
    config=None,
    *,
    shards: int = 1,
    shard_config=None,
):
    """Open a detection service sized to the deployment.

    ``shards=1`` returns the in-process micro-batched
    :class:`~repro.service.service.DetectionService`; ``shards > 1`` (or an
    explicit :class:`~repro.service.config.ShardConfig`) returns the
    process-sharded :class:`~repro.service.sharded.ShardedDetectionService`
    — same API, model weights published once through shared memory, one
    worker process per shard.  See ``docs/service.md``.

    Args:
        config: a :class:`~repro.service.config.ServiceConfig` (per-shard
            batching/queueing knobs).
        shards: worker-process count.
        shard_config: full sharding knobs; overrides ``shards``.
    """
    from .service import create_service

    return create_service(config, shards=shards, shard_config=shard_config)


def use_kernel_backend(name: str | None) -> str:
    """Select the process-default kernel backend; returns the active name.

    ``"numpy"`` is the always-available default; ``"compiled"`` builds a
    small C library with the host toolchain and dispatches the three HMM
    hot kernels through it — **bit-identical by construction and by
    probe** (every accepted shape is verified against the numpy path at
    first use; unverifiable shapes, a missing compiler, or a failed
    build degrade to numpy with a one-time :class:`RuntimeWarning` and a
    ``hmm.backend.fallback`` counter).  ``None`` re-reads the
    ``REPRO_KERNEL_BACKEND`` environment variable.  Unknown names raise
    :class:`~repro.errors.KernelBackendError`.

    Per-component selection — without touching the process default — is
    available via ``ServiceConfig(kernel_backend=...)`` and
    ``StreamingScorer(kernel_backend=...)``.  See ``docs/perf.md`` for
    the precedence matrix.
    """
    from .hmm import backends

    return backends.use_backend(name).name


def kernel_backend() -> str:
    """The name of the kernel backend currently serving dispatched calls.

    Reports the *effective* backend: if ``compiled`` was requested but
    unavailable on this host, this returns ``"numpy"``.
    """
    from .hmm import backends

    return backends.active_backend().name


def available_kernel_backends() -> tuple[str, ...]:
    """Registered kernel-backend names (registration, not availability)."""
    from .hmm import backends

    return backends.available_backends()


def open_registry(cache=None):
    """A versioned model registry for staged rollout/rollback.

    Lineages are named detector families; ``publish`` stages a retrained
    model, ``rollout``/``rollback`` move the active version, and the
    gateway warm-swaps every activation into the live service fleet.  Pass
    an :class:`~repro.runtime.cache.ArtifactCache` to write published
    models through to disk.  See :mod:`repro.runtime.registry`.
    """
    from .runtime.registry import ModelRegistry

    return ModelRegistry(cache=cache)


def open_gateway(service, registry=None, config=None):
    """An HTTP front end over a detection service (+ optional registry).

    Returns an unstarted
    :class:`~repro.gateway.server.DetectionGateway`; call ``start()`` (or
    use it as a context manager) to bind and serve, and read ``.port`` for
    the bound port.  See ``docs/gateway.md``.
    """
    from .gateway import DetectionGateway

    return DetectionGateway(service, registry=registry, config=config)


def load_pretrained(
    source: str | Path | HiddenMarkovModel,
    *,
    kind: CallKind | str = CallKind.SYSCALL,
    context: bool | None = None,
    name: str | None = None,
) -> PretrainedDetector:
    """A ready-to-score detector from a serialized (or in-memory) model.

    This is the deployment seam: training happened elsewhere (``repro
    train``, a cross-validation fold, another host) and only the ``.npz``
    parameters travel.  The returned detector reports ``is_fitted`` True
    and ``trained_in_process`` False — reading ``fit_result`` raises with
    a message pointing at that distinction instead of the old bare
    "fit() has not been called".

    Args:
        source: path to a :func:`repro.hmm.serialize.save_model` archive,
            or an already-loaded :class:`HiddenMarkovModel`.
        kind: observation family the deployment feed carries.
        context: context sensitivity; inferred from the model alphabet
            (``call@caller`` symbols) when omitted.
        name: optional detector name for telemetry/service registration.
    """
    if isinstance(source, HiddenMarkovModel):
        model = source
    elif isinstance(source, (str, Path)):
        model = load_model(source)
    else:
        raise ModelError(
            f"load_pretrained takes a path or HiddenMarkovModel, "
            f"not {type(source).__name__}"
        )
    return PretrainedDetector(
        model, kind=CallKind(kind), context=context, name=name
    )
