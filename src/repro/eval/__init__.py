"""Evaluation harness: one runner per paper table/figure, plus rendering."""

from .experiments import FAST_CONFIG, ExperimentConfig
from .figures import ascii_curve, curves_of, write_curves_csv
from .reporting import ReportSpec, build_report, write_report
from .stats import ConfidenceInterval, SignTestResult, bootstrap_ci, paired_sign_test
from .runners import (
    AccuracyComparison,
    AccuracyGridConfig,
    ClusteringRow,
    ExploitOutcome,
    ExploitStudy,
    ModelAccuracy,
    ProgramData,
    RuntimeRow,
    accuracy_comparisons,
    accuracy_grid,
    prepare_program,
    run_accuracy_comparison,
    run_accuracy_grid,
    run_clustering_reduction,
    run_coverage_survey,
    run_exploit_detection,
    run_gadget_survey,
    run_runtime_table,
)
from .tables import format_factor, format_rate, render_table

__all__ = [
    "FAST_CONFIG",
    "AccuracyComparison",
    "AccuracyGridConfig",
    "ClusteringRow",
    "ExperimentConfig",
    "ExploitOutcome",
    "ExploitStudy",
    "ModelAccuracy",
    "ProgramData",
    "RuntimeRow",
    "ConfidenceInterval",
    "SignTestResult",
    "accuracy_comparisons",
    "accuracy_grid",
    "ascii_curve",
    "ReportSpec",
    "bootstrap_ci",
    "build_report",
    "write_report",
    "paired_sign_test",
    "curves_of",
    "format_factor",
    "format_rate",
    "write_curves_csv",
    "prepare_program",
    "render_table",
    "run_accuracy_comparison",
    "run_accuracy_grid",
    "run_clustering_reduction",
    "run_coverage_survey",
    "run_exploit_detection",
    "run_gadget_survey",
    "run_runtime_table",
]
