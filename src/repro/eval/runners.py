"""Experiment runners: one function per paper table/figure.

Each runner is pure orchestration over the library — program corpus,
workload, static analysis, detectors, attacks — and returns structured
results the benchmarks render next to the paper's numbers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import telemetry
from ..analysis.labels import build_label_space
from ..analysis.pipeline import analyze_program
from ..attacks.exploits import (
    ExploitSpec,
    abnormal_context_fraction,
    build_attack_events,
    payloads_for,
)
from ..attacks.rop import code_reuse_from_normal
from ..attacks.synthetic import abnormal_s_segments
from ..core.crossval import CrossValidationResult, cross_validate
from ..core.metrics import CurvePoint, curve
from ..core.registry import MODEL_NAMES, detector_spec, model_is_context_sensitive
from ..core.thresholds import threshold_for_fp_budget
from ..errors import EvaluationError, ReproDeprecationWarning
from ..gadgets.context_filter import GadgetSurface, gadget_surface
from ..gadgets.scanner import count_by_length, scan_gadgets
from ..hmm.baumwelch import TrainingConfig, train
from ..program.calls import CallKind
from ..program.corpus import (
    ALL_PROGRAMS,
    UTILITY_PROGRAMS,
    load_program,
)
from ..program.image import layout_libc, layout_program
from ..program.program import Program
from ..reduction.cluster import cluster_calls
from ..runtime.cache import ArtifactCache
from ..runtime.executor import ParallelExecutor
from ..runtime.grid import GridAxis, GridResult, GridSpec, run_grid
from ..reduction.initializer import initialize_hmm
from ..tracing.segments import SegmentSet, build_segment_set, segment_symbols
from ..tracing.workload import CoverageReport, WorkloadResult, run_workload
from .experiments import ExperimentConfig

# ---------------------------------------------------------------------------
# Shared data preparation
# ---------------------------------------------------------------------------


@dataclass
class ProgramData:
    """Workload traces and per-mode segment sets for one program."""

    program: Program
    workload: WorkloadResult
    segments: dict[tuple[CallKind, bool], SegmentSet] = field(default_factory=dict)

    def segment_set(self, kind: CallKind, context: bool, length: int) -> SegmentSet:
        key = (kind, context)
        if key not in self.segments:
            self.segments[key] = build_segment_set(
                self.workload.traces, kind, context, length=length
            )
        return self.segments[key]


def prepare_program(name: str, config: ExperimentConfig) -> ProgramData:
    """Generate the program and run its workload suite."""
    with telemetry.span("eval.prepare_program", program=name):
        program = load_program(name, scale=config.corpus_scale)
        workload = run_workload(program, n_cases=config.n_cases, seed=config.seed)
    return ProgramData(program=program, workload=workload)


# ---------------------------------------------------------------------------
# Figures 2-5: accuracy comparison of the four models
# ---------------------------------------------------------------------------


@dataclass
class ModelAccuracy:
    """One model's cross-validated accuracy on one program × call kind."""

    program: str
    kind: CallKind
    model: str
    n_states: int
    fn_by_fp: dict[float, float]
    auc: float
    train_seconds: float
    cross_validation: CrossValidationResult

    def fp_fn_curve(self, n_points: int = 200) -> list[CurvePoint]:
        """Pooled FP/FN trade-off curve (a Figures 2-5 line)."""
        normal, abnormal = self.cross_validation.pooled_scores()
        return curve(normal, abnormal, n_points=n_points)


@dataclass
class AccuracyComparison:
    """All compared models on one program × call kind."""

    program: str
    kind: CallKind
    results: dict[str, ModelAccuracy] = field(default_factory=dict)

    def improvement_factor(self, baseline: str, fp_target: float) -> float:
        """FN(baseline) / FN(cmarkov) at one FP budget (≥ 1 means CMarkov
        wins); the paper's "N-fold improvement" metric.  A zero CMarkov FN
        is floored at one missed segment to keep the factor finite."""
        cmarkov = self.results["cmarkov"]
        other = self.results[baseline]
        floor = 1.0 / max(
            sum(f.abnormal_scores.size for f in cmarkov.cross_validation.folds), 1
        )
        denominator = max(cmarkov.fn_by_fp[fp_target], floor)
        return other.fn_by_fp[fp_target] / denominator


def _model_accuracy_cell(
    data: ProgramData,
    kind: CallKind,
    model_name: str,
    seed_offset: int,
    config: ExperimentConfig,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> ModelAccuracy:
    """Cross-validate one model on one prepared program (one grid cell)."""
    context = model_is_context_sensitive(model_name)
    with telemetry.span(
        "eval.cell",
        program=data.program.name,
        kind=kind.value,
        model=model_name,
    ):
        telemetry.counter_add("eval.cells")
        segments = data.segment_set(kind, context, config.segment_length)
        if segments.n_unique < config.folds * 2:
            raise EvaluationError(
                f"{data.program.name}/{kind.value}: too few segments "
                f"({segments.n_unique}) for {config.folds}-fold CV"
            )
        abnormal = abnormal_s_segments(
            segments.segments(),
            segments.alphabet(),
            config.n_abnormal,
            seed=config.seed + 17,
            exclude=segments,
        )
        factory = detector_spec(
            model_name,
            data.program,
            kind,
            config=config.detector_config(seed_offset=seed_offset),
            cluster_policy=config.cluster_policy(),
        )
        cv = cross_validate(
            factory,
            segments,
            abnormal,
            k=config.folds,
            fp_targets=config.fp_targets,
            seed=config.seed,
            executor=executor,
            cache=cache,
        )
    return ModelAccuracy(
        program=data.program.name,
        kind=kind,
        model=model_name,
        n_states=cv.folds[0].n_states,
        fn_by_fp={t: cv.mean_fn_at(t) for t in config.fp_targets},
        auc=cv.mean_auc,
        train_seconds=cv.total_train_seconds,
        cross_validation=cv,
    )


def _accuracy_cell_task(
    program_name: str,
    kind: CallKind,
    model_name: str,
    seed_offset: int,
    config: ExperimentConfig,
    cache: ArtifactCache | None,
) -> ModelAccuracy:
    """One (program, model) cell, self-contained for a worker process.

    Re-derives the program's workload from (name, config) — deterministic,
    so the cell's numbers match a serial run that shared the prepared data.
    """
    data = prepare_program(program_name, config)
    return _model_accuracy_cell(
        data, kind, model_name, seed_offset, config, cache=cache
    )


def _program_cells_task(
    program_name: str,
    kind: CallKind,
    models: tuple[str, ...],
    config: ExperimentConfig,
    cache: ArtifactCache | None,
) -> list[ModelAccuracy]:
    """All model cells for one program, sharing one prepared workload.

    The per-program granularity amortises workload generation when the
    grid is at least as wide as the worker pool.
    """
    data = prepare_program(program_name, config)
    return [
        _model_accuracy_cell(data, kind, model_name, offset, config, cache=cache)
        for offset, model_name in enumerate(models)
    ]


def _merge_cell_cache_stats(
    cache: ArtifactCache | None,
    executor: ParallelExecutor,
    results: list[ModelAccuracy],
) -> None:
    """Fold worker-process cache counters back into the coordinator."""
    if cache is None or not executor.is_parallel:
        return
    for accuracy in results:
        delta = accuracy.cross_validation.cache_stats
        if delta is not None:
            cache.stats.merge(delta)


def run_accuracy_comparison(
    program_name: str,
    kind: CallKind,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_NAMES,
    data: ProgramData | None = None,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> AccuracyComparison:
    """Cross-validate the compared models on one program × call kind.

    Normal segments come from the workload suite; abnormal segments are
    Abnormal-S (Section V-A).  Each model observes its own symbol form
    (context or bare), exactly as in the paper's comparisons.

    With a parallel ``executor`` the per-model cells fan out across worker
    processes; every cell derives its inputs from (program name, config,
    seed) alone, so the numbers are bit-identical to the serial run.  A
    ``cache`` memoises each fold's trained model.
    """
    config = config or ExperimentConfig()
    executor = executor or ParallelExecutor(jobs=1)
    comparison = AccuracyComparison(program=program_name, kind=kind)

    if executor.is_parallel and data is None:
        tasks = [
            (program_name, kind, model_name, offset, config, cache)
            for offset, model_name in enumerate(models)
        ]
        cells = executor.starmap(_accuracy_cell_task, tasks)
        _merge_cell_cache_stats(cache, executor, cells)
        comparison.program = cells[0].program
        for model_name, accuracy in zip(models, cells):
            comparison.results[model_name] = accuracy
        return comparison

    if data is None:
        data = prepare_program(program_name, config)
    comparison.program = data.program.name
    for offset, model_name in enumerate(models):
        comparison.results[model_name] = _model_accuracy_cell(
            data, kind, model_name, offset, config, executor=executor, cache=cache
        )
    return comparison


@dataclass(frozen=True)
class AccuracyGridConfig:
    """Per-grid configuration for the accuracy panel's cells.

    ``models`` rides along (despite also being an axis) because each
    model's detector seed offset is its position in the compared tuple —
    the legacy ``run_accuracy_grid`` convention, preserved so grid cells
    are bit-identical to the pre-grid code path.
    """

    kind: CallKind
    experiment: ExperimentConfig
    models: tuple[str, ...]


def _accuracy_grid_cell(
    point: Mapping[str, object],
    config: AccuracyGridConfig,
    seed: int,
    cache: ArtifactCache | None,
) -> ModelAccuracy:
    """One (program, model) cell under the unified grid contract.

    The derived grid ``seed`` is deliberately unused: accuracy cells seed
    from ``config.experiment`` exactly like the legacy runner, so numbers
    match historical panels bit-for-bit (the grid seed still participates
    in the cache key, keeping differently-seeded grids distinct).
    """
    model_name = str(point["model"])
    return _accuracy_cell_task(
        str(point["program"]),
        config.kind,
        model_name,
        config.models.index(model_name),
        config.experiment,
        cache,
    )


def accuracy_grid(
    program_names: Sequence[str],
    kind: CallKind,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_NAMES,
) -> GridSpec:
    """The Figures 2-5 accuracy panel as a :class:`~repro.runtime.GridSpec`.

    Run it with :func:`repro.api.run_grid` — the same surface as the
    robustness grid — then shape the cells with
    :func:`accuracy_comparisons`.  With a cache the panel is resumable
    per cell, exactly like every other grid.
    """
    experiment = config or ExperimentConfig()
    return GridSpec(
        name="accuracy",
        axes=(
            GridAxis("program", tuple(program_names)),
            GridAxis("model", tuple(models)),
        ),
        cell=_accuracy_grid_cell,
        config=AccuracyGridConfig(
            kind=CallKind(kind), experiment=experiment, models=tuple(models)
        ),
        seed=experiment.seed,
        version=1,
    )


def accuracy_comparisons(result: GridResult) -> dict[str, AccuracyComparison]:
    """Shape an accuracy grid's cells into per-program comparisons."""
    comparisons: dict[str, AccuracyComparison] = {}
    kind = result.spec.config.kind
    for point, accuracy in result:
        comparison = comparisons.setdefault(
            point["program"],
            AccuracyComparison(program=accuracy.program, kind=kind),
        )
        comparison.results[point["model"]] = accuracy
    return comparisons


def run_accuracy_grid(
    program_names: tuple[str, ...],
    kind: CallKind,
    config: ExperimentConfig | None = None,
    models: tuple[str, ...] = MODEL_NAMES,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> dict[str, AccuracyComparison]:
    """Deprecated wrapper around :func:`accuracy_grid` + ``run_grid``.

    .. deprecated:: 1.2
        Build the spec with :func:`repro.api.accuracy_grid` and run it
        with :func:`repro.api.run_grid`; shape the result with
        :func:`accuracy_comparisons`.
    """
    warnings.warn(
        "run_accuracy_grid() is deprecated; use repro.api.run_grid("
        "repro.api.accuracy_grid(...)) and accuracy_comparisons()",
        ReproDeprecationWarning,
        stacklevel=2,
    )
    result = run_grid(
        accuracy_grid(program_names, kind, config=config, models=models),
        executor=executor,
        cache=cache,
    )
    _merge_cell_cache_stats(
        cache, executor or ParallelExecutor(jobs=1), list(result.cells)
    )
    return accuracy_comparisons(result)


# ---------------------------------------------------------------------------
# Table II: clustering-based state reduction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusteringRow:
    """One Table II row plus the measured (not just estimated) speedup."""

    program: str
    model: str
    n_distinct_calls: int
    n_states_after: int
    estimated_time_reduction: float
    measured_time_reduction: float | None


def run_clustering_reduction(
    program_names: tuple[str, ...] = ("bash", "vim", "proftpd"),
    config: ExperimentConfig | None = None,
    ratio: float = 1 / 3,
    measure: bool = True,
) -> list[ClusteringRow]:
    """Reproduce Table II: libcall-model state reduction and training speedup.

    The *estimated* reduction follows the paper's ``O(T·S²)`` iteration cost
    (1 - K²/N²); the *measured* one times actual Baum-Welch runs of equal
    iteration count on the same segments.
    """
    config = config or ExperimentConfig()
    rows: list[ClusteringRow] = []
    for name in program_names:
        data = prepare_program(name, config)
        analysis = analyze_program(data.program, CallKind.LIBCALL, context=True)
        summary = analysis.program_summary
        n = len(summary.space)
        clustering = cluster_calls(summary, ratio=ratio, seed=config.seed)
        k = clustering.n_clusters
        estimated = 1.0 - (k * k) / (n * n)

        measured: float | None = None
        if measure:
            segments = data.segment_set(CallKind.LIBCALL, True, config.segment_length)
            train_part, holdout = segments.split([0.8, 0.2], seed=config.seed)
            if train_part.n_unique > config.max_training_segments:
                keep = train_part.segments()[: config.max_training_segments]
                capped = SegmentSet(length=train_part.length)
                for segment in keep:
                    capped.counts[segment] = train_part.counts[segment]
                train_part = capped
            budget = TrainingConfig(
                max_iterations=min(config.training_iterations, 10),
                patience=10_000,  # fixed iteration count for a fair timing
            )
            full_model = initialize_hmm(summary)
            reduced_model = initialize_hmm(summary, clustering=clustering)
            obs_full = full_model.encode(train_part.segments())
            obs_reduced = reduced_model.encode(train_part.segments())
            started = time.perf_counter()
            train(full_model, obs_full, config=budget)
            full_time = time.perf_counter() - started
            started = time.perf_counter()
            train(reduced_model, obs_reduced, config=budget)
            reduced_time = time.perf_counter() - started
            measured = 1.0 - reduced_time / full_time if full_time > 0 else 0.0

        rows.append(
            ClusteringRow(
                program=name,
                model="CMarkov-libcall",
                n_distinct_calls=n,
                n_states_after=k,
                estimated_time_reduction=estimated,
                measured_time_reduction=measured,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table I: workload coverage
# ---------------------------------------------------------------------------


def run_coverage_survey(
    config: ExperimentConfig | None = None,
    program_names: tuple[str, ...] = UTILITY_PROGRAMS,
) -> list[CoverageReport]:
    """Reproduce Table I: per-program test-suite coverage."""
    config = config or ExperimentConfig()
    reports = []
    for name in program_names:
        data = prepare_program(name, config)
        reports.append(data.workload.coverage(data.program))
    return reports


# ---------------------------------------------------------------------------
# Table III: ROP gadget surface
# ---------------------------------------------------------------------------


def run_gadget_survey(
    program_names: tuple[str, ...] = ALL_PROGRAMS,
    corpus_scale: float = 1.0,
    include_libc: bool = True,
) -> list[GadgetSurface]:
    """Reproduce Table III: [SYSCALL...RET] gadget counts, total vs
    context-compatible, at gadget lengths 2/6/10."""
    surfaces: list[GadgetSurface] = []
    for name in program_names:
        program = load_program(name, scale=corpus_scale)
        image = layout_program(program)
        gadgets = scan_gadgets(image)
        surfaces.append(gadget_surface(program, gadgets))
    if include_libc:
        libc = layout_libc()
        gadgets = scan_gadgets(libc)
        surfaces.append(
            GadgetSurface(
                program="libc.so",
                total_by_length=count_by_length(gadgets),
                # libc exports every syscall wrapper, so intended sites are
                # compatible in any program that links it; report them.
                compatible_by_length=count_by_length(
                    [g for g in gadgets if g.intended]
                ),
            )
        )
    return surfaces


# ---------------------------------------------------------------------------
# Table IV: real-world exploit detection
# ---------------------------------------------------------------------------


@dataclass
class ExploitOutcome:
    """Detection verdicts for one reproduced payload."""

    spec: ExploitSpec
    detected_by_cmarkov: bool
    detected_by_context_insensitive: bool
    min_segment_score: float
    threshold: float
    abnormal_context_fraction: float


@dataclass
class ExploitStudy:
    """Table IV results for one victim program."""

    program: str
    fp_budget: float
    outcomes: list[ExploitOutcome] = field(default_factory=list)

    @property
    def all_detected(self) -> bool:
        return all(o.detected_by_cmarkov for o in self.outcomes)


def run_exploit_detection(
    victims: tuple[str, ...] = ("gzip", "proftpd"),
    config: ExperimentConfig | None = None,
    fp_budget: float = 0.01,
) -> list[ExploitStudy]:
    """Reproduce Table IV: replay every payload against trained detectors.

    For each victim we train a CMarkov syscall model and a context-
    insensitive STILO model on the same workload, splice each payload's
    call stream into the tail of a normal trace, and flag the attack if any
    15-call window scores below the FP-budget threshold.
    """
    config = config or ExperimentConfig()
    studies: list[ExploitStudy] = []
    for victim in victims:
        data = prepare_program(victim, config)
        image = layout_program(data.program)
        space = build_label_space(data.program, CallKind.SYSCALL, context=True)
        legit = set(space.labels)

        detectors = {}
        thresholds = {}
        for model_name in ("cmarkov", "stilo"):
            context = model_is_context_sensitive(model_name)
            segments = data.segment_set(
                CallKind.SYSCALL, context, config.segment_length
            )
            train_part, test_part = segments.split([0.8, 0.2], seed=config.seed)
            detector = detector_spec(
                model_name, data.program, CallKind.SYSCALL,
                config=config.detector_config(),
            )()
            detector.fit(train_part)
            detectors[model_name] = detector
            thresholds[model_name] = threshold_for_fp_budget(
                detector.score(test_part.segments()), fp_budget
            )

        # A normal syscall tail to splice payloads into.
        carrier = data.workload.traces[0]
        study = ExploitStudy(program=victim, fp_budget=fp_budget)
        specs = list(payloads_for(victim))
        # The S2-style stealth payload (Section II-C): a genuine normal
        # syscall-name sequence re-sourced through ROP gadgets.  Call names
        # and order are perfect — only the contexts are wrong — so this is
        # the payload that separates context-sensitive detection from the
        # context-insensitive baselines.
        bare_segments = data.segment_set(
            CallKind.SYSCALL, False, config.segment_length
        )
        # The stealthiest host is the *most common* normal segment: every
        # model scores its name sequence as highly normal, so detection can
        # only come from the contexts.
        stealth_host = max(
            bare_segments.counts.items(), key=lambda item: (item[1], item[0])
        )[0]
        specs.append(
            ExploitSpec(
                name="stealth_code_reuse",
                program=victim,
                vulnerability="Code reuse with normal call order (S2)",
                syscalls=(),
                injected=False,
            )
        )
        for spec in specs:
            if spec.name == "stealth_code_reuse":
                events = code_reuse_from_normal(
                    stealth_host, image, seed=config.seed
                )
            else:
                events = build_attack_events(
                    spec, data.program, image, seed=config.seed
                )
            verdicts = {}
            min_scores = {}
            for model_name, detector in detectors.items():
                context = model_is_context_sensitive(model_name)
                attack_symbols = [e.symbol(context) for e in events]
                if len(attack_symbols) >= config.segment_length:
                    stream = attack_symbols
                else:
                    # Short payloads fire mid-execution: pad with the tail
                    # of a normal trace so every window is full length.
                    normal_symbols = carrier.symbols(CallKind.SYSCALL, context)
                    pad = config.segment_length - len(attack_symbols)
                    stream = normal_symbols[-pad:] + attack_symbols
                windows = segment_symbols(stream, length=config.segment_length)
                if not windows:
                    raise EvaluationError(f"{spec.name}: attack stream too short")
                # Sliding windows over an attack stream overlap heavily, so
                # many are exact repeats; Detector.score dedups them (one
                # forward pass per distinct window — bit-identical scores,
                # see repro.hmm.kernels.log_likelihood_unique).
                scores = detector.score(windows)
                min_scores[model_name] = float(scores.min())
                verdicts[model_name] = bool(
                    (scores < thresholds[model_name]).any()
                )
            study.outcomes.append(
                ExploitOutcome(
                    spec=spec,
                    detected_by_cmarkov=verdicts["cmarkov"],
                    detected_by_context_insensitive=verdicts["stilo"],
                    min_segment_score=min_scores["cmarkov"],
                    threshold=thresholds["cmarkov"],
                    abnormal_context_fraction=abnormal_context_fraction(
                        events, legit
                    ),
                )
            )
        studies.append(study)
    return studies


# ---------------------------------------------------------------------------
# Table V: static-analysis runtime
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeRow:
    """Static-pipeline timings for one program × call kind."""

    program: str
    kind: CallKind
    context_identification_s: float
    probability_estimation_s: float
    aggregation_s: float

    @property
    def total_s(self) -> float:
        return (
            self.context_identification_s
            + self.probability_estimation_s
            + self.aggregation_s
        )


def _runtime_cell(
    name: str, kind: CallKind, corpus_scale: float, cache: ArtifactCache | None
) -> RuntimeRow:
    """Time (or load from cache) one program × kind static analysis."""
    with telemetry.span("eval.runtime_cell", program=name, kind=kind.value):
        program = load_program(name, scale=corpus_scale)
        analysis = analyze_program(program, kind, context=True, cache=cache)
    return RuntimeRow(
        program=name,
        kind=kind,
        context_identification_s=analysis.timings_s["context_identification"],
        probability_estimation_s=analysis.timings_s["probability_estimation"],
        aggregation_s=analysis.timings_s["aggregation"],
    )


def run_runtime_table(
    program_names: tuple[str, ...] = ALL_PROGRAMS,
    corpus_scale: float = 1.0,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> list[RuntimeRow]:
    """Reproduce Table V: wall-clock cost of CMarkov's analysis operations.

    The program × kind cells are independent and fan out through
    ``executor``.  With a ``cache``, a previously analyzed program's row
    reports the timings measured when the artifact was first computed.
    """
    executor = executor or ParallelExecutor(jobs=1)
    tasks = [
        (name, kind, corpus_scale, cache)
        for name in program_names
        for kind in (CallKind.LIBCALL, CallKind.SYSCALL)
    ]
    return executor.starmap(_runtime_cell, tasks)
