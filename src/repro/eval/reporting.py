"""Markdown report generation: one document summarizing every experiment.

``build_report`` runs (a configurable subset of) the experiment families
and renders a self-contained markdown document — the programmatic version
of EXPERIMENTS.md, regenerable on any machine/config.  Exposed on the CLI
as ``python -m repro report --markdown out.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry
from ..program.calls import CallKind
from ..program.corpus import UTILITY_PROGRAMS
from .experiments import ExperimentConfig
from .runners import (
    run_accuracy_comparison,
    run_clustering_reduction,
    run_coverage_survey,
    run_exploit_detection,
    run_gadget_survey,
    run_runtime_table,
)


@dataclass
class ReportSpec:
    """Which experiment families to include and at what breadth.

    Defaults keep the report fast: one utility + one server program for the
    accuracy section, the paper's trio for clustering.
    """

    accuracy_programs: tuple[str, ...] = ("gzip", "proftpd")
    clustering_programs: tuple[str, ...] = ("bash",)
    exploit_victims: tuple[str, ...] = ("gzip", "proftpd")
    include_coverage: bool = True
    include_gadgets: bool = True
    include_runtime: bool = True
    sections: list[str] = field(default_factory=list, repr=False)


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def build_report(
    config: ExperimentConfig | None = None, spec: ReportSpec | None = None
) -> str:
    """Run the selected experiments and return a markdown document."""
    config = config or ExperimentConfig()
    spec = spec or ReportSpec()
    sections: list[str] = [
        "# CMarkov reproduction report",
        f"\nConfiguration: {config.n_cases} cases/program, {config.folds}-fold "
        f"CV, ≤{config.max_training_segments} training segments, "
        f"{config.training_iterations} EM iterations.\n",
    ]

    if spec.include_coverage:
        reports = run_coverage_survey(
            config,
            program_names=tuple(
                p for p in spec.accuracy_programs if p in UTILITY_PROGRAMS
            )
            or ("gzip",),
        )
        sections.append("## Workload coverage (Table I role)\n")
        sections.append(
            _md_table(
                ["Program", "# cases", "Branch coverage", "Line coverage"],
                [list(r.row()) for r in reports],
            )
        )

    sections.append("\n## Model accuracy (Figures 2-5 role)\n")
    for program in spec.accuracy_programs:
        for kind in (CallKind.SYSCALL, CallKind.LIBCALL):
            comparison = run_accuracy_comparison(program, kind, config)
            rows = [
                [
                    model,
                    result.n_states,
                    f"{result.auc:.4f}",
                ]
                + [f"{result.fn_by_fp[t]:.4f}" for t in config.fp_targets]
                for model, result in comparison.results.items()
            ]
            sections.append(f"### {program} — {kind.value} models\n")
            sections.append(
                _md_table(
                    ["Model", "# states", "AUC"]
                    + [f"FN@FP={t}" for t in config.fp_targets],
                    rows,
                )
            )
            sections.append("")

    sections.append("## State reduction (Table II role)\n")
    rows = []
    for row in run_clustering_reduction(
        spec.clustering_programs, config, measure=False
    ):
        rows.append(
            [
                row.program,
                row.n_distinct_calls,
                row.n_states_after,
                f"{row.estimated_time_reduction:.1%}",
            ]
        )
    sections.append(
        _md_table(
            ["Program", "# distinct calls", "# states after", "est. time cut"],
            rows,
        )
    )

    if spec.include_gadgets:
        sections.append("\n## ROP gadget surface (Table III role)\n")
        rows = []
        for surface in run_gadget_survey(
            program_names=spec.accuracy_programs, include_libc=True
        ):
            rows.append(
                [
                    surface.program,
                    surface.total_by_length[10],
                    surface.compatible_by_length[10],
                ]
            )
        sections.append(
            _md_table(["Program", "gadgets (L≤10)", "context-compatible"], rows)
        )

    if spec.exploit_victims:
        sections.append("\n## Exploit detection (Table IV role)\n")
        rows = []
        for study in run_exploit_detection(spec.exploit_victims, config):
            for outcome in study.outcomes:
                rows.append(
                    [
                        study.program,
                        outcome.spec.name,
                        "yes" if outcome.detected_by_cmarkov else "NO",
                        "yes" if outcome.detected_by_context_insensitive else "NO",
                        f"{outcome.abnormal_context_fraction:.0%}",
                    ]
                )
        sections.append(
            _md_table(
                ["Victim", "Payload", "CMarkov", "Ctx-insensitive", "Abn. ctx"],
                rows,
            )
        )

    if spec.include_runtime:
        sections.append("\n## Static-analysis runtime (Table V role)\n")
        rows = [
            [row.program, row.kind.value, f"{row.total_s * 1000:.1f} ms"]
            for row in run_runtime_table(program_names=spec.accuracy_programs)
        ]
        sections.append(_md_table(["Program", "Model", "Total"], rows))

    if telemetry.enabled():
        # Attach what the run cost, stage by stage (e.g. under the CLI's
        # --metrics-out): span aggregates and pipeline counters.
        snap = telemetry.snapshot()
        sections.append("\n## Telemetry (this run)\n")
        sections.append(
            _md_table(
                ["Span", "count", "wall s", "cpu s", "max wall s"],
                [
                    [name, s["count"], f"{s['wall_s']:.3f}",
                     f"{s['cpu_s']:.3f}", f"{s['max_wall_s']:.3f}"]
                    for name, s in snap["spans"].items()
                ],
            )
        )
        sections.append("")
        sections.append(
            _md_table(
                ["Counter", "value"],
                [[name, value] for name, value in snap["counters"].items()],
            )
        )

    return "\n".join(sections) + "\n"


def write_report(
    path: str | Path,
    config: ExperimentConfig | None = None,
    spec: ReportSpec | None = None,
) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.write_text(build_report(config=config, spec=spec), encoding="utf-8")
    return path
