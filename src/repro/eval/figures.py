"""Figure-series export: FP/FN curves as CSV and quick ASCII plots.

The paper presents Figures 2-5 as FP/FN trade-off curves.  The benchmark
suite prints tabular operating points; this module additionally exports the
full curves for external plotting (CSV) and renders a dependency-free ASCII
view for terminal inspection.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from ..core.metrics import CurvePoint
from ..errors import EvaluationError
from .runners import AccuracyComparison


def curves_of(comparison: AccuracyComparison, n_points: int = 200) -> dict[str, list[CurvePoint]]:
    """Pooled FP/FN curve per model of one comparison."""
    return {
        model: result.fp_fn_curve(n_points=n_points)
        for model, result in comparison.results.items()
    }


def write_curves_csv(
    curves: Mapping[str, Sequence[CurvePoint]], path: str | Path
) -> int:
    """Write curve points to CSV (columns: model, threshold, fp, fn).

    Returns the number of rows written.
    """
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["model", "threshold", "false_positive_rate",
                         "false_negative_rate"])
        for model, points in curves.items():
            for point in points:
                writer.writerow(
                    [
                        model,
                        f"{point.threshold:.6f}",
                        f"{point.false_positive_rate:.6f}",
                        f"{point.false_negative_rate:.6f}",
                    ]
                )
                rows += 1
    return rows


def ascii_curve(
    points: Sequence[CurvePoint], width: int = 60, height: int = 12
) -> str:
    """Render one FP/FN curve as an ASCII scatter (FP on x, FN on y).

    Both axes span [0, 1]; '*' marks operating points, denser regions
    overprint.  Useful for eyeballing a model's trade-off in a terminal.
    """
    if not points:
        raise EvaluationError("no curve points to render")
    grid = [[" "] * width for _ in range(height)]
    for point in points:
        x = min(int(point.false_positive_rate * (width - 1)), width - 1)
        y = min(int(point.false_negative_rate * (height - 1)), height - 1)
        grid[height - 1 - y][x] = "*"
    lines = ["FN"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + "> FP")
    return "\n".join(lines)
