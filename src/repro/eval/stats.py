"""Statistical utilities for experiment reporting.

Cross-validated comparisons need uncertainty estimates before claiming one
model beats another.  Two tools, both dependency-free:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for any
  statistic of a score sample (e.g. an FN rate);
* :func:`paired_sign_test` — exact binomial sign test over paired per-fold
  metrics (does model A beat model B on more folds than chance?).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Sequence

import numpy as np

from ..errors import EvaluationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    values: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` of ``values``.

    Args:
        values: sample (e.g. per-segment scores or per-fold FN rates).
        statistic: function of a 1-D array, defaults to the mean.
        confidence: interval mass, e.g. 0.95.
        n_resamples: bootstrap resamples.
        seed: RNG seed for reproducible intervals.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise EvaluationError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise EvaluationError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    for index in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        estimates[index] = statistic(resample)
    alpha = (1.0 - confidence) / 2
    return ConfidenceInterval(
        estimate=float(statistic(data)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class SignTestResult:
    """Outcome of an exact paired sign test."""

    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def n_informative(self) -> int:
        return self.wins + self.losses


def paired_sign_test(
    a: Sequence[float], b: Sequence[float], alternative: str = "less"
) -> SignTestResult:
    """Exact binomial sign test on paired metrics.

    Args:
        a, b: paired per-fold metrics (e.g. FN rates of two models on the
            same folds).
        alternative: ``"less"`` tests whether ``a`` tends to be *smaller*
            than ``b`` (a lower-is-better metric like FN), ``"greater"``
            the reverse, ``"two-sided"`` any difference.

    Returns:
        Win/loss/tie counts and the exact p-value under the null that each
        non-tied pair is a coin flip.
    """
    a_values = np.asarray(a, dtype=float)
    b_values = np.asarray(b, dtype=float)
    if a_values.shape != b_values.shape or a_values.size == 0:
        raise EvaluationError("paired samples must be non-empty, equal length")
    if alternative not in ("less", "greater", "two-sided"):
        raise EvaluationError(f"unknown alternative {alternative!r}")
    wins = int(np.sum(a_values < b_values))
    losses = int(np.sum(a_values > b_values))
    n = wins + losses
    if n == 0:
        return SignTestResult(wins=0, losses=0, ties=a_values.size, p_value=1.0)

    def tail(k_min: int) -> float:
        return sum(comb(n, k) for k in range(k_min, n + 1)) / 2.0**n

    if alternative == "less":
        p_value = tail(wins)
    elif alternative == "greater":
        p_value = tail(losses)
    else:
        p_value = min(1.0, 2.0 * tail(max(wins, losses)))
    return SignTestResult(
        wins=wins, losses=losses, ties=int(a_values.size - n), p_value=p_value
    )
