"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows the corresponding paper table/figure
reports; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with left-aligned columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(format_row(row) for row in cells)
    return "\n".join(lines)


def format_rate(rate: float) -> str:
    """Format an FP/FN rate compactly (4 significant decimals)."""
    return f"{rate:.4f}"


def format_factor(factor: float) -> str:
    """Format an improvement factor like the paper quotes (e.g. ``452x``)."""
    if factor >= 100:
        return f"{factor:.0f}x"
    if factor >= 10:
        return f"{factor:.1f}x"
    return f"{factor:.2f}x"
