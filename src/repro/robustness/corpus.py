"""The measured corpus: a versioned artifact of robustness-grid results.

A *corpus* is the JSON-safe export of one grid run — every cell's
measurements with bootstrap confidence intervals, pooled per-family ×
per-model summaries, and the two headline shape checks the acceptance
bar names:

* ``mimicry_lowers_detection`` — some detector variant detects crafted
  mimicry streams at a lower rate than naive payload splices (the attack
  *works*, so the harness is measuring something real);
* ``regular_context_ge_basic`` — pooled across attacks, the
  context-sensitive Regular model detects at least as well as the
  context-insensitive one (the paper's claim, now measured under
  adversaries the paper never ran).

The ``cells`` and ``summary`` blocks are pure functions of the grid spec
and therefore bit-identical between an uninterrupted run and a
kill-and-resume run — CI diffs exactly those blocks.  Everything volatile
(timings, resume counts) lives in ``meta``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..errors import EvaluationError
from ..eval.reporting import _md_table
from ..eval.stats import bootstrap_ci
from ..runtime.grid import GridResult

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "build_corpus",
    "load_corpus",
    "render_report",
    "write_corpus",
]

CORPUS_FORMAT = "repro.robustness.corpus"
CORPUS_VERSION = 1

#: Bootstrap resamples per interval; modest because flags pool small.
_N_RESAMPLES = 1000


def _rate_ci(flags: Iterable[bool], seed: int) -> dict[str, float]:
    values = np.array([1.0 if f else 0.0 for f in flags])
    if values.size == 0:
        return {"estimate": 0.0, "low": 0.0, "high": 0.0}
    ci = bootstrap_ci(values, n_resamples=_N_RESAMPLES, seed=seed)
    return {
        "estimate": round(float(ci.estimate), 10),
        "low": round(float(ci.low), 10),
        "high": round(float(ci.high), 10),
    }


def build_corpus(result: GridResult) -> dict:
    """Export one robustness grid run as the versioned corpus artifact.

    Deterministic given the spec: every bootstrap interval is seeded from
    the owning cell's derived seed, so a resumed run exports exactly the
    same ``cells``/``summary`` bytes as an uninterrupted one.
    """
    spec = result.spec
    cells: list[dict[str, Any]] = []
    for point, cell in result:
        if cell is None:
            raise EvaluationError(f"grid cell at {point} is missing")
        seed = spec.cell_seed(point)
        cells.append(
            {
                **point,
                "threshold": round(float(cell.threshold), 10),
                "n_train_segments": cell.n_train_segments,
                "detection": _rate_ci(cell.result.instance_detected, seed),
                "baseline_detection": _rate_ci(
                    cell.result.baseline_detected, seed + 1
                ),
                "false_alarms": _rate_ci(cell.result.benign_flagged, seed + 2),
                "n_instances": len(cell.result.instance_detected),
                "details": cell.result.details,
            }
        )

    # Pooled per (attack, model): instance flags concatenated across
    # programs and severities.
    pooled: dict[tuple[str, str], dict[str, list[bool]]] = {}
    for point, cell in result:
        bucket = pooled.setdefault(
            (point["attack"], point["model"]),
            {"attacked": [], "baseline": []},
        )
        bucket["attacked"].extend(cell.result.instance_detected)
        bucket["baseline"].extend(cell.result.baseline_detected)

    summary_rows = []
    for (attack, model), flags in sorted(pooled.items()):
        pool_seed = spec.cell_seed({"attack": attack, "model": model})
        summary_rows.append(
            {
                "attack": attack,
                "model": model,
                "detection": _rate_ci(flags["attacked"], pool_seed),
                "baseline_detection": _rate_ci(flags["baseline"], pool_seed + 1),
                "n_instances": len(flags["attacked"]),
            }
        )

    def _pooled_rate(attack: str | None, model: str) -> float | None:
        flags: list[bool] = []
        for (a, m), bucket in pooled.items():
            if m == model and (attack is None or a == attack):
                flags.extend(bucket["attacked"])
        return float(np.mean(flags)) if flags else None

    mimicry_lowers = any(
        row["attack"] == "mimicry"
        and row["detection"]["estimate"] < row["baseline_detection"]["estimate"]
        for row in summary_rows
    )
    basic = _pooled_rate(None, "regular-basic")
    context = _pooled_rate(None, "regular-context")
    context_claim = (
        None if basic is None or context is None else bool(context >= basic)
    )

    return {
        "format": CORPUS_FORMAT,
        "version": CORPUS_VERSION,
        "grid": {
            "name": spec.name,
            "seed": spec.seed,
            "spec_version": spec.version,
            "axes": {axis.name: list(axis.values) for axis in spec.axes},
            "n_cells": spec.n_cells,
        },
        "cells": cells,
        "summary": {
            "pooled": summary_rows,
            "claims": {
                "mimicry_lowers_detection": mimicry_lowers,
                "regular_context_ge_basic": context_claim,
                "regular_basic_detection": basic,
                "regular_context_detection": context,
            },
        },
        "meta": {
            "resumed_cells": result.resumed,
            "computed_cells": result.computed,
            "elapsed_s": result.elapsed_s,
        },
    }


def write_corpus(corpus: dict, path: str | Path) -> Path:
    """Write the corpus artifact as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(corpus, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_corpus(path: str | Path) -> dict:
    """Load and version-check a corpus artifact."""
    corpus = json.loads(Path(path).read_text(encoding="utf-8"))
    if corpus.get("format") != CORPUS_FORMAT:
        raise EvaluationError(f"{path} is not a {CORPUS_FORMAT} artifact")
    if corpus.get("version") != CORPUS_VERSION:
        raise EvaluationError(
            f"{path} is corpus version {corpus.get('version')}, "
            f"this build reads version {CORPUS_VERSION}"
        )
    return corpus


def _fmt_ci(ci: dict[str, float]) -> str:
    return f"{ci['estimate']:.2f} [{ci['low']:.2f}, {ci['high']:.2f}]"


def render_report(corpus: dict) -> str:
    """Markdown report for one corpus: summary, claims, per-cell table."""
    claims = corpus["summary"]["claims"]
    lines = [
        "# Adversarial robustness report",
        "",
        f"Grid `{corpus['grid']['name']}` — {corpus['grid']['n_cells']} cells, "
        f"seed {corpus['grid']['seed']}.",
        "",
        "## Pooled detection by attack × model",
        "",
        _md_table(
            ["Attack", "Model", "Detection (95% CI)", "Naive baseline", "n"],
            [
                [
                    row["attack"],
                    row["model"],
                    _fmt_ci(row["detection"]),
                    _fmt_ci(row["baseline_detection"]),
                    row["n_instances"],
                ]
                for row in corpus["summary"]["pooled"]
            ],
        ),
        "",
        "## Headline checks",
        "",
        f"- mimicry lowers detection on some variant: "
        f"**{claims['mimicry_lowers_detection']}**",
        f"- Regular-context ≥ Regular-basic (paper's context claim): "
        f"**{claims['regular_context_ge_basic']}** "
        f"(context {claims['regular_context_detection']}, "
        f"basic {claims['regular_basic_detection']})",
        "",
        "## Cells",
        "",
        _md_table(
            [
                "Program",
                "Model",
                "Attack",
                "Sev",
                "Detection (95% CI)",
                "Baseline",
                "False alarms",
            ],
            [
                [
                    cell["program"],
                    cell["model"],
                    cell["attack"],
                    cell["severity"],
                    _fmt_ci(cell["detection"]),
                    _fmt_ci(cell["baseline_detection"]),
                    _fmt_ci(cell["false_alarms"]),
                ]
                for cell in corpus["cells"]
            ],
        ),
        "",
    ]
    return "\n".join(lines)
