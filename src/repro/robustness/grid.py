"""The robustness measurement grid: programs × models × attacks × severities.

One cell = one trained detector at one operating point, attacked by one
family at one severity.  Cells are pure functions of
``(RobustnessConfig, point, derived seed)`` and run through the generic
:mod:`repro.runtime.grid` machinery, which buys fan-out on
:class:`~repro.runtime.ParallelExecutor`, per-cell content-addressed
resume through :class:`~repro.runtime.ArtifactCache` (kill -9 mid-grid,
rerun with ``resume=True``, get bit-identical results), and a shared
``GridResult`` surface with the accuracy grid.

Within a (program, model) column every attack × severity cell derives the
same train/holdout split and detector recipe, so the trained HMM is
shared across cells through the cache's model store
(:func:`~repro.core.crossval.trained_model_key`) — the grid trains
``programs × models`` models, not ``programs × models × attacks ×
severities``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .. import telemetry
from ..core.crossval import trained_model_key
from ..core.registry import MODEL_NAMES, detector_spec, model_is_context_sensitive
from ..core.thresholds import threshold_for_fp_budget
from ..errors import EvaluationError
from ..eval.experiments import FAST_CONFIG, ExperimentConfig
from ..eval.runners import prepare_program
from ..program.calls import CallKind
from ..runtime import ArtifactCache, GridAxis, GridSpec, ParallelExecutor
from ..runtime.grid import GridResult, run_grid
from .attacks import ATTACK_FAMILIES, AttackContext, AttackRunResult, attack_family

__all__ = [
    "DEFAULT_SEVERITIES",
    "RobustnessCell",
    "RobustnessConfig",
    "RobustnessGrid",
    "open_robustness_grid",
    "robustness_grid",
]

#: Default severity ladder (each family maps steps onto its own knob).
DEFAULT_SEVERITIES: tuple[int, ...] = (1, 2, 3)


@dataclass(frozen=True)
class RobustnessConfig:
    """Everything a robustness cell needs beyond its grid point.

    Hashed whole into each cell's cache key — change a knob and every
    affected cell recomputes instead of resuming stale artifacts.

    Attributes:
        experiment: workload/training scale (defaults to the fast
            profile; use :data:`repro.eval.experiments.DEFAULT_CONFIG`
            for paper-scale studies).
        kind: call kind the detectors observe (``syscall``/``libcall``).
        fp_budget: false-positive budget the operating threshold is
            derived at on held-out normal traffic.
        train_fraction: normal-segment share used for training; the rest
            is the threshold/benign holdout.
        mimicry_instances / beam_width / pool_size: mimicry family knobs.
        drift_epochs / retrain_every: drift family knobs.
        gap_instances: gap family streams per severity.
    """

    experiment: ExperimentConfig = field(default_factory=lambda: FAST_CONFIG)
    kind: str = CallKind.SYSCALL.value
    fp_budget: float = 0.02
    train_fraction: float = 0.7
    mimicry_instances: int = 6
    beam_width: int = 8
    pool_size: int = 24
    drift_epochs: int = 4
    retrain_every: int = 2
    gap_instances: int = 8


@dataclass(frozen=True)
class RobustnessCell:
    """One cell's measurements — deliberately free of wall-clock fields.

    Resume correctness is checked by comparing resumed cells byte-for-byte
    against freshly computed ones, so nothing volatile (timings,
    hostnames, cache paths) may live here; timing belongs to the run, not
    the cell (see ``GridResult.elapsed_s`` / the corpus ``meta`` block).
    """

    program: str
    model: str
    attack: str
    severity: int
    threshold: float
    n_train_segments: int
    result: AttackRunResult

    @property
    def detection_rate(self) -> float:
        return self.result.detection_rate

    @property
    def baseline_detection_rate(self) -> float:
        return self.result.baseline_detection_rate

    @property
    def false_alarm_rate(self) -> float:
        return self.result.false_alarm_rate


def _family_for(attack: str, config: RobustnessConfig):
    if attack == "mimicry":
        return attack_family(
            "mimicry",
            n_instances=config.mimicry_instances,
            beam_width=config.beam_width,
            pool_size=config.pool_size,
        )
    if attack == "drift":
        return attack_family(
            "drift",
            epochs=config.drift_epochs,
            retrain_every=config.retrain_every,
        )
    if attack == "gap":
        return attack_family("gap", n_instances=config.gap_instances)
    return attack_family(attack)


def _robustness_cell(
    point: Mapping[str, Any],
    config: RobustnessConfig,
    seed: int,
    cache: ArtifactCache | None,
) -> RobustnessCell:
    """Train (or cache-load) the cell's detector, derive its operating
    threshold, and run the cell's attack family against it.

    The module-level signature is the :class:`~repro.runtime.GridSpec`
    cell contract — this function crosses process boundaries.
    """
    program_name = point["program"]
    model_name = point["model"]
    attack = point["attack"]
    severity = int(point["severity"])
    experiment = config.experiment
    kind = CallKind(config.kind)
    context = model_is_context_sensitive(model_name)

    with telemetry.span(
        "robustness.cell", program=program_name, model=model_name, attack=attack
    ):
        data = prepare_program(program_name, experiment)
        segments = data.segment_set(kind, context, experiment.segment_length)
        if segments.n_unique < 8:
            raise EvaluationError(
                f"{program_name}/{kind.value}: too few segments "
                f"({segments.n_unique}) for a robustness cell"
            )
        # The split depends only on (program, model, config) — every
        # attack × severity cell of this column trains the same model.
        train_part, holdout_part = segments.split(
            [config.train_fraction, 1.0 - config.train_fraction],
            seed=experiment.seed,
        )
        factory = detector_spec(
            model_name,
            data.program,
            kind,
            config=experiment.detector_config(
                seed_offset=MODEL_NAMES.index(model_name)
                if model_name in MODEL_NAMES
                else 0
            ),
            cluster_policy=experiment.cluster_policy(),
        )
        detector = factory()
        key = (
            trained_model_key(factory, train_part) if cache is not None else None
        )
        cached_model = cache.get_model(key) if cache is not None and key else None
        if cached_model is not None:
            detector.load_pretrained(cached_model)
        else:
            detector.fit(train_part)
            if cache is not None and key is not None:
                cache.put_model(key, detector.model)

        holdout = holdout_part.segments()
        threshold = threshold_for_fp_budget(
            detector.score(holdout), config.fp_budget
        )

        carrier = []
        if data.workload.traces:
            carrier = list(data.workload.traces[0].symbols(kind, context))
        # Rarest-first bare call names: mimicry payload material (the
        # calls a normal run barely touches are the ones worth hijacking).
        from collections import Counter

        name_counts: Counter[str] = Counter()
        for segment in holdout:
            name_counts.update(s.split("@", 1)[0] for s in segment)
        for name in (s.split("@", 1)[0] for s in segments.alphabet()):
            name_counts.setdefault(name, 0)
        bare_names = [
            name
            for name, _ in sorted(
                name_counts.items(), key=lambda item: (item[1], item[0])
            )
        ]
        ctx = AttackContext(
            detector=detector,
            factory=factory,
            threshold=threshold,
            context=context,
            window=experiment.segment_length,
            train_segments=train_part,
            normal_segments=holdout,
            carrier_symbols=carrier,
            bare_names=bare_names,
            fp_budget=config.fp_budget,
        )
        family = _family_for(attack, config)
        result = family.run(ctx, severity, seed)

    return RobustnessCell(
        program=program_name,
        model=model_name,
        attack=attack,
        severity=severity,
        threshold=float(threshold),
        n_train_segments=train_part.n_unique,
        result=result,
    )


def robustness_grid(
    programs: Sequence[str],
    models: Sequence[str] = MODEL_NAMES,
    attacks: Sequence[str] = ATTACK_FAMILIES,
    severities: Sequence[int] = DEFAULT_SEVERITIES,
    config: RobustnessConfig | None = None,
    seed: int = 0,
) -> GridSpec:
    """The adversarial grid as a :class:`~repro.runtime.GridSpec`.

    Run it with :func:`repro.api.run_grid` (or the ``repro robustness``
    CLI); feed the result to :func:`repro.robustness.build_corpus`.
    """
    for model in models:
        model_is_context_sensitive(model)  # validates the name
    for attack in attacks:
        if attack not in ATTACK_FAMILIES:
            raise EvaluationError(
                f"unknown attack family {attack!r}; choose from {ATTACK_FAMILIES}"
            )
    return GridSpec(
        name="robustness",
        axes=(
            GridAxis("program", tuple(programs)),
            GridAxis("model", tuple(models)),
            GridAxis("attack", tuple(attacks)),
            GridAxis("severity", tuple(int(s) for s in severities)),
        ),
        cell=_robustness_cell,
        config=config or RobustnessConfig(),
        seed=seed,
        version=1,
    )


@dataclass
class RobustnessGrid:
    """A held-open robustness study: spec + runtime, run/resume on demand.

    The facade handle behind :func:`repro.api.open_robustness_grid`,
    mirroring ``open_service``/``open_gateway``: construction is cheap and
    does no work; :meth:`run` executes (or resumes) the grid and
    :meth:`corpus`/:meth:`report` derive the artifacts from the last run.
    """

    spec: GridSpec
    executor: ParallelExecutor | None = None
    cache: ArtifactCache | None = None
    _last: GridResult | None = field(default=None, repr=False)

    @property
    def n_cells(self) -> int:
        return self.spec.n_cells

    def cells_cached(self) -> int:
        """How many cells a resumed run would load instead of compute."""
        from ..runtime.grid import grid_cells_cached

        if self.cache is None:
            return 0
        return grid_cells_cached(self.spec, self.cache)

    def run(self, resume: bool = True) -> GridResult:
        self._last = run_grid(
            self.spec, executor=self.executor, cache=self.cache, resume=resume
        )
        return self._last

    def corpus(self) -> dict:
        """The versioned measured-corpus artifact for the last run."""
        from .corpus import build_corpus

        if self._last is None:
            self.run()
        return build_corpus(self._last)

    def report(self) -> str:
        """Markdown report (bootstrap CIs per cell) for the last run."""
        from .corpus import render_report

        return render_report(self.corpus())


def open_robustness_grid(
    programs: Sequence[str],
    models: Sequence[str] = MODEL_NAMES,
    attacks: Sequence[str] = ATTACK_FAMILIES,
    severities: Sequence[int] = DEFAULT_SEVERITIES,
    config: RobustnessConfig | None = None,
    seed: int = 0,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> RobustnessGrid:
    """Open a robustness study handle (see :class:`RobustnessGrid`)."""
    return RobustnessGrid(
        spec=robustness_grid(
            programs,
            models=models,
            attacks=attacks,
            severities=severities,
            config=config,
            seed=seed,
        ),
        executor=executor,
        cache=cache,
    )
