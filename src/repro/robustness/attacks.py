"""Adversarial attack families: generators the paper never tested.

The paper evaluates its detectors on its own exploit payloads and on
Abnormal-S perturbations.  This module gives the *attacker* first-class
status: each family is a deterministic generator of adversarial scenarios
parameterized by a small-integer **severity**, run against a trained
detector at a fixed operating threshold.

* :class:`MimicryFamily` — beam search against the trained HMM for the
  shortest attack-payload-preserving symbol stream whose every
  ``window``-length window keeps its per-symbol log-likelihood above the
  operating threshold (Wagner-Soto-style mimicry, made quantitative).
  The search itself is **threshold-free**: it produces a
  :class:`MimicryProfile` of the best achievable likelihood margin at
  every crafted length, from which evasion at *any* threshold is read
  off.  That construction makes evasion success monotone in the
  threshold by definition — the property the hypothesis suite pins.
* :class:`DriftFamily` — workload drift / concept shift: benign traffic
  whose symbol distribution moves epoch over epoch, with a configurable
  retraining cadence.  Measures the false-alarm inflation drift causes
  and how much of it retraining buys back.
* :class:`GapFamily` — trace-gap corruption: an attacker (or lossy
  transport) suppresses a fraction of events from the audit stream.  The
  surviving symbols replay through the detection service's monitor
  session path, which marks the stream discontinuous — every outcome
  after the first dropped symbol carries ``gap=True`` — and measures how
  much detection the gaps cost.

Every family is a frozen dataclass (picklable across grid workers) and
every random choice derives from an explicit seed, so a grid cell's
numbers are a pure function of (config, point, seed).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .. import telemetry
from ..core.detector import Detector
from ..core.drift import compare_models
from ..core.registry import DetectorSpec
from ..core.thresholds import threshold_for_fp_budget
from ..errors import EvaluationError, ModelError
from ..tracing.segments import Segment, SegmentSet, segment_symbols

__all__ = [
    "ATTACK_FAMILIES",
    "AttackContext",
    "AttackRunResult",
    "DriftFamily",
    "GapFamily",
    "MimicryFamily",
    "MimicryProfile",
    "attack_family",
    "craft_mimicry_stream",
]

#: Attacker-controlled context label: code-reuse executes from gadget land,
#: so a context-sensitive observation of a hijacked call carries a context
#: the static analysis never mapped.
UNMAPPED_CONTEXT = "[unmapped]"


@dataclass
class AttackContext:
    """Everything one grid cell hands an attack family.

    Built once per cell by :func:`repro.robustness.grid._robustness_cell`;
    the detector is already fitted and the threshold already derived at
    the cell's FP budget.
    """

    detector: Detector
    factory: DetectorSpec
    threshold: float
    context: bool
    window: int
    train_segments: SegmentSet
    normal_segments: list[Segment]
    carrier_symbols: list[str]
    #: Bare call names the victim makes, rarest first — payload material.
    bare_names: list[str]
    fp_budget: float


@dataclass(frozen=True)
class AttackRunResult:
    """One family's measurements at one severity (one grid cell's core).

    Attributes:
        family: attack family name.
        severity: the severity knob the family was run at.
        instance_detected: per adversarial instance, whether the detector
            flagged it *under the attack* (the attacker's countermeasure
            active).
        baseline_detected: the same instances with the countermeasure
            disabled (naive payload splice, no drift-aware retraining
            skipped, uncorrupted stream) — the delta is the attack's
            measured effect.
        benign_flagged: false alarms on benign traffic under the same
            conditions (the defender's cost axis).
        details: family-specific extras (crafted lengths, per-epoch
            rates, gap counts).  Must stay JSON-serializable and free of
            wall-clock values — cells are required to be bit-identical
            across resumed runs.
    """

    family: str
    severity: int
    instance_detected: tuple[bool, ...]
    baseline_detected: tuple[bool, ...]
    benign_flagged: tuple[bool, ...]
    details: dict

    @property
    def detection_rate(self) -> float:
        return float(np.mean(self.instance_detected))

    @property
    def baseline_detection_rate(self) -> float:
        return float(np.mean(self.baseline_detected))

    @property
    def false_alarm_rate(self) -> float:
        if not self.benign_flagged:
            return 0.0
        return float(np.mean(self.benign_flagged))


# ---------------------------------------------------------------------------
# Mimicry: threshold-free beam search for the cheapest evading stream
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MimicryProfile:
    """Best achievable likelihood margin per crafted suffix length.

    The search records, for every suffix length ``L`` at which the full
    payload had been emitted, the best (maximum over explored streams)
    *minimum per-window score* among streams of that length.  Evasion at
    a threshold ``T`` is then a pure read: some length achieves margin
    ``>= T``.  Because the profile is threshold-independent, evasion is
    monotone non-increasing and crafted length monotone non-decreasing
    in ``T`` — by construction, not by luck.
    """

    payload: tuple[str, ...]
    window: int
    margins_by_length: tuple[tuple[int, float], ...]
    expansions: int

    def best_margin(self) -> float:
        """The best min-window score any completed stream achieved."""
        if not self.margins_by_length:
            return float("-inf")
        return max(margin for _, margin in self.margins_by_length)

    def evades(self, threshold: float) -> bool:
        """Whether some crafted stream keeps every window ``>= threshold``."""
        return self.best_margin() >= threshold

    def crafted_length(self, threshold: float) -> int | None:
        """Shortest suffix length that evades at ``threshold`` (else None)."""
        lengths = [
            length
            for length, margin in self.margins_by_length
            if margin >= threshold
        ]
        return min(lengths) if lengths else None


@dataclass(frozen=True)
class _BeamState:
    symbols: tuple[str, ...]
    payload_index: int
    margin: float


def craft_mimicry_stream(
    detector: Detector,
    payload: Sequence[str],
    normal_segments: Sequence[Segment],
    *,
    window: int,
    beam_width: int = 8,
    pool_size: int = 24,
    max_suffix: int | None = None,
    seed: int = 0,
) -> MimicryProfile:
    """Search for the shortest payload-preserving stream that stays likely.

    The attacker replays ``window - 1`` symbols of genuine normal traffic
    (the best-scoring host segment's prefix), then emits a crafted suffix
    that must contain every ``payload`` symbol in order, padded with
    normal symbols of the attacker's choosing.  Every window of the
    emitted stream is scored; a stream *evades* at threshold ``T`` when
    its worst window still scores ``>= T``.

    The beam is ranked by (payload progress, worst-window margin) and the
    search never consults a threshold — see :class:`MimicryProfile` for
    why that matters.  All tie-breaks are lexicographic, so the search is
    deterministic for a fixed seed (the seed only picks among equally
    scored hosts/padding pools).

    Args:
        detector: fitted detector under attack (white-box assumption, the
            paper's strongest threat model).
        payload: required symbols, in the detector's own label form.
        normal_segments: candidate host segments (attacker-observable
            normal traffic).
        window: defender's window length.
        beam_width: beam states kept per generation.
        pool_size: padding alphabet size (most frequent normal symbols).
        max_suffix: crafted-suffix length budget; defaults to
            ``window * (len(payload) + 1)``.
        seed: deterministic tie-break seed.
    """
    if not payload:
        raise EvaluationError("mimicry payload is empty")
    if not normal_segments:
        raise EvaluationError("mimicry search needs normal host segments")
    payload = tuple(payload)
    if max_suffix is None:
        max_suffix = window * (len(payload) + 1)

    rng = np.random.default_rng(seed)
    # Padding pool: the most frequent symbols of normal traffic — the
    # attacker's cheapest camouflage.  Frequency ties break
    # lexicographically; the rng only shuffles *within* exact ties so two
    # seeds can explore different-but-equivalent pools.
    frequency: Counter[str] = Counter()
    for segment in normal_segments:
        frequency.update(segment)
    ranked = sorted(frequency.items(), key=lambda item: (-item[1], item[0]))
    pool = [symbol for symbol, _ in ranked[:pool_size]]
    if not pool:
        raise EvaluationError("normal segments carry no symbols")

    # Host prefix: the normal segment the model likes best.
    hosts = sorted(set(normal_segments))
    host_scores = detector.score(hosts)
    best_host = hosts[int(np.argmax(host_scores))]
    candidates_equal = [
        h for h, s in zip(hosts, host_scores) if s == host_scores.max()
    ]
    if len(candidates_equal) > 1:
        best_host = candidates_equal[int(rng.integers(len(candidates_equal)))]
    prefix = best_host[: window - 1]

    states: list[_BeamState] = [
        _BeamState(symbols=tuple(prefix), payload_index=0, margin=float("inf"))
    ]
    margins: dict[int, float] = {}
    expansions = 0

    for step in range(1, max_suffix + 1):
        # One batched forward pass scores every (state, candidate) window.
        jobs: list[tuple[int, str]] = []
        for state_index, state in enumerate(states):
            next_needed = (
                payload[state.payload_index]
                if state.payload_index < len(payload)
                else None
            )
            candidates = list(pool)
            if next_needed is not None and next_needed not in candidates:
                candidates.append(next_needed)
            for symbol in candidates:
                jobs.append((state_index, symbol))
        if not jobs:
            break
        windows = [
            states[i].symbols[-(window - 1):] + (symbol,) for i, symbol in jobs
        ]
        scores = detector.score(windows)
        expansions += len(jobs)

        children: list[_BeamState] = []
        for (state_index, symbol), score in zip(jobs, scores):
            state = states[state_index]
            consumed = (
                state.payload_index < len(payload)
                and symbol == payload[state.payload_index]
            )
            new_index = state.payload_index + 1 if consumed else state.payload_index
            new_margin = min(state.margin, float(score))
            if new_index == len(payload):
                # Payload complete at suffix length `step`: record the best
                # achievable margin and stop extending this stream
                # (extending can only lower the margin and grow the length).
                previous = margins.get(step, float("-inf"))
                if new_margin > previous:
                    margins[step] = new_margin
                continue
            children.append(
                _BeamState(
                    symbols=state.symbols + (symbol,),
                    payload_index=new_index,
                    margin=new_margin,
                )
            )

        # Beam prune: payload progress first, then margin; lexicographic
        # stream tie-break keeps the search deterministic.
        children.sort(
            key=lambda s: (-s.payload_index, -s.margin, s.symbols)
        )
        states = children[:beam_width]
        if not states:
            break

    telemetry.counter_add("robustness.mimicry.expansions", expansions)
    return MimicryProfile(
        payload=payload,
        window=window,
        margins_by_length=tuple(sorted(margins.items())),
        expansions=expansions,
    )


@dataclass(frozen=True)
class MimicryFamily:
    """Mimicry search at severity = payload scale (``2 × severity`` calls)."""

    name: str = "mimicry"
    n_instances: int = 6
    beam_width: int = 8
    pool_size: int = 24

    def payload_for(
        self, ctx: AttackContext, severity: int, rng: np.random.Generator
    ) -> tuple[str, ...]:
        """A payload of ``2 * severity`` dangerous calls in detector form.

        Call *names* are drawn from the rarest calls the victim makes
        (``ctx.bare_names`` is frequency-ascending) — the operations a
        normal run barely touches are the ones worth hijacking, and a
        burst of them is what gives a naive splice away.  A
        context-insensitive model still sees only known symbols, so the
        mimicry search can dilute the burst below threshold.  A
        context-sensitive model sees ``name@[unmapped]`` — code reuse
        cannot forge the calling context — which is precisely the handle
        the paper claims context sensitivity adds.
        """
        length = 2 * severity
        rare = ctx.bare_names[: max(3, len(ctx.bare_names) // 4)]
        names = [rare[int(i)] for i in rng.integers(0, len(rare), size=length)]
        if ctx.context:
            return tuple(f"{name}@{UNMAPPED_CONTEXT}" for name in names)
        return tuple(names)

    def run(self, ctx: AttackContext, severity: int, seed: int) -> AttackRunResult:
        if severity < 1:
            raise EvaluationError("mimicry severity is a payload length >= 1")
        rng = np.random.default_rng(seed)
        attacked: list[bool] = []
        baseline: list[bool] = []
        crafted_lengths: list[int | None] = []
        margins: list[float] = []
        hosts = ctx.normal_segments
        for instance in range(self.n_instances):
            payload = self.payload_for(ctx, severity, rng)
            # Naive splice: payload replaces the tail of a normal host
            # segment — the attack with no mimicry effort.
            host = hosts[int(rng.integers(len(hosts)))]
            naive = host[: ctx.window - len(payload)] + payload
            naive = naive[-ctx.window:]
            naive_score = float(ctx.detector.score([naive])[0])
            baseline.append(naive_score < ctx.threshold)

            profile = craft_mimicry_stream(
                ctx.detector,
                payload,
                hosts,
                window=ctx.window,
                beam_width=self.beam_width,
                pool_size=self.pool_size,
                seed=seed + instance,
            )
            attacked.append(not profile.evades(ctx.threshold))
            crafted_lengths.append(profile.crafted_length(ctx.threshold))
            margins.append(profile.best_margin())
        telemetry.counter_add("robustness.attack.instances", self.n_instances)
        benign_scores = ctx.detector.score(hosts)
        benign = [bool(s < ctx.threshold) for s in benign_scores]
        return AttackRunResult(
            family=self.name,
            severity=severity,
            instance_detected=tuple(attacked),
            baseline_detected=tuple(baseline),
            benign_flagged=tuple(benign),
            details={
                "crafted_lengths": [
                    length if length is None else int(length)
                    for length in crafted_lengths
                ],
                "best_margins": [round(m, 10) for m in margins],
                "payload_length": 2 * severity,
            },
        )


# ---------------------------------------------------------------------------
# Drift: concept shift with a retraining cadence
# ---------------------------------------------------------------------------


def _epoch_permutation(
    alphabet: Sequence[str], intensity: float, rng: np.random.Generator
) -> dict[str, str]:
    """A partial symbol relabeling: the epoch's concept shift.

    Models a library/program update that re-routes a slice of the call
    vocabulary: ``ceil(intensity * |alphabet|)`` symbols (at least two)
    are cyclically permuted, every other symbol is untouched.
    """
    n_moved = max(2, int(np.ceil(intensity * len(alphabet))))
    n_moved = min(n_moved, len(alphabet))
    picks = rng.choice(len(alphabet), size=n_moved, replace=False)
    chosen = [alphabet[int(i)] for i in sorted(picks)]
    rotated = chosen[1:] + chosen[:1]
    return dict(zip(chosen, rotated))


def _apply_drift(
    segments: Sequence[Segment], mapping: Mapping[str, str], fraction: float,
    rng: np.random.Generator,
) -> list[Segment]:
    """Relabel ``fraction`` of the segments through ``mapping``."""
    drifted: list[Segment] = []
    for segment in segments:
        if rng.random() < fraction:
            drifted.append(tuple(mapping.get(s, s) for s in segment))
        else:
            drifted.append(tuple(segment))
    return drifted


@dataclass(frozen=True)
class DriftFamily:
    """Concept shift at severity = drift intensity step.

    ``severity`` scales both how much of the vocabulary moves each epoch
    and how much of the traffic exhibits the moved behaviour.  The
    *attacked* measurement retrains on the drifted traffic every
    ``retrain_every`` epochs (the operator's countermeasure); the
    *baseline* never retrains.  For drift the flags are **false alarms**
    on benign traffic — drift is not malicious, its damage is alert
    fatigue — so lower ``detection_rate`` is better and the
    baseline-minus-attacked delta is the value of the cadence.
    """

    name: str = "drift"
    epochs: int = 4
    retrain_every: int = 2
    max_eval_segments: int = 160

    def run(self, ctx: AttackContext, severity: int, seed: int) -> AttackRunResult:
        if severity < 1:
            raise EvaluationError("drift severity must be >= 1")
        intensity = min(0.2 * severity, 0.8)
        rng = np.random.default_rng(seed)
        alphabet = sorted(
            {s for segment in ctx.normal_segments for s in segment}
        )
        eval_pool = ctx.normal_segments[: self.max_eval_segments]

        stationary = ctx.detector
        stationary_threshold = ctx.threshold
        adaptive = ctx.detector
        adaptive_threshold = ctx.threshold

        per_epoch: list[dict] = []
        retrainings = 0
        mapping: dict[str, str] = {}
        final_static: list[bool] = []
        final_adaptive: list[bool] = []
        for epoch in range(1, self.epochs + 1):
            # Shift compounds: each epoch composes a fresh relabeling on
            # top of the accumulated one.
            epoch_map = _epoch_permutation(alphabet, intensity, rng)
            mapping = {
                s: epoch_map.get(t, t)
                for s, t in ({**{a: a for a in alphabet}, **mapping}).items()
            }
            drifted = _apply_drift(eval_pool, mapping, intensity, rng)

            if self.retrain_every > 0 and epoch % self.retrain_every == 0:
                # Operator retrains on the epoch's observed traffic — the
                # same drifted/legacy mixture the detector will score, not
                # a fully-drifted idealization — and re-derives the
                # threshold at the same FP budget.
                retrain_set = SegmentSet(length=ctx.train_segments.length)
                retrain_set.update(
                    _apply_drift(
                        ctx.train_segments.segments(), mapping, intensity, rng
                    )
                )
                adaptive = ctx.factory()
                adaptive.fit(retrain_set)
                holdout = _apply_drift(eval_pool, mapping, intensity, rng)
                adaptive_threshold = threshold_for_fp_budget(
                    adaptive.score(holdout), ctx.fp_budget
                )
                retrainings += 1
                telemetry.counter_add("robustness.drift.retrainings")

            static_flags = [
                bool(s < stationary_threshold)
                for s in stationary.score(drifted)
            ]
            adaptive_flags = [
                bool(s < adaptive_threshold) for s in adaptive.score(drifted)
            ]
            per_epoch.append(
                {
                    "epoch": epoch,
                    "false_alarms_stationary": float(np.mean(static_flags)),
                    "false_alarms_retrained": float(np.mean(adaptive_flags)),
                }
            )
            final_static = static_flags
            final_adaptive = adaptive_flags

        drift_score = None
        if retrainings and adaptive is not ctx.detector:
            try:
                drift_score = compare_models(
                    ctx.detector.model, adaptive.model
                ).drift_score
            except (ModelError, AttributeError):
                drift_score = None

        benign_scores = stationary.score(eval_pool)
        benign = [bool(s < stationary_threshold) for s in benign_scores]
        telemetry.counter_add("robustness.attack.instances", len(final_adaptive))
        return AttackRunResult(
            family=self.name,
            severity=severity,
            instance_detected=tuple(final_adaptive),
            baseline_detected=tuple(final_static),
            benign_flagged=tuple(benign),
            details={
                "intensity": intensity,
                "epochs": per_epoch,
                "retrainings": retrainings,
                "retrain_every": self.retrain_every,
                "drift_score": drift_score,
            },
        )


# ---------------------------------------------------------------------------
# Trace gaps: lossy audit stream replayed through the service
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GapFamily:
    """Trace-gap corruption at severity = dropped-event rate step.

    Streams replay through a real :class:`~repro.service.DetectionService`
    monitor session: surviving symbols are submitted, suppressed symbols
    are reported as gaps (``DetectionService.note_gap`` — the same path
    admission-control sheds take), and every post-gap outcome carries
    ``gap=True``.  Detection of a spliced payload is measured on the
    corrupted stream (*attacked*) versus the intact stream (*baseline*);
    benign streams under the same corruption measure the false-alarm
    inflation gaps cause.
    """

    name: str = "gap"
    n_instances: int = 8
    min_stream: int = 40
    n_calibration: int = 16

    def _stream_threshold(
        self, ctx: AttackContext, rng: np.random.Generator
    ) -> float:
        """Operating threshold calibrated on benign *streams*.

        The segment threshold holds each window to the FP budget, but a
        monitor session alerts if *any* of a stream's ~``min_stream``
        windows trips — per-stream false alarms would saturate.  So the
        gap family calibrates on per-stream minima: the threshold holding
        the fraction of clean benign streams with any alert to the
        budget.
        """
        carrier = list(ctx.carrier_symbols)
        if len(carrier) < self.min_stream:
            carrier = (carrier * (self.min_stream // max(len(carrier), 1) + 1))[
                : self.min_stream
            ]
        minima: list[float] = []
        for _ in range(self.n_calibration):
            start = int(rng.integers(0, max(len(carrier) - self.min_stream, 1)))
            stream = carrier[start : start + self.min_stream]
            windows = segment_symbols(stream, ctx.window)
            if not windows:
                continue
            minima.append(float(np.min(ctx.detector.score(windows))))
        if not minima:
            return ctx.threshold
        return threshold_for_fp_budget(np.array(minima), ctx.fp_budget)

    def _streams(
        self, ctx: AttackContext, severity: int, rng: np.random.Generator
    ) -> tuple[list[list[str]], list[list[str]]]:
        """(attack streams, benign streams), all in detector label form."""
        carrier = list(ctx.carrier_symbols)
        if len(carrier) < self.min_stream:
            carrier = (carrier * (self.min_stream // max(len(carrier), 1) + 1))[
                : self.min_stream
            ]
        attack_streams: list[list[str]] = []
        benign_streams: list[list[str]] = []
        family = MimicryFamily()
        for _ in range(self.n_instances):
            start = int(rng.integers(0, max(len(carrier) - self.min_stream, 1)))
            stream = carrier[start : start + self.min_stream]
            payload = list(family.payload_for(ctx, max(severity, 2), rng))
            insert = int(rng.integers(ctx.window, len(stream)))
            attack_streams.append(stream[:insert] + payload + stream[insert:])
            benign_streams.append(list(stream))
        return attack_streams, benign_streams

    def _replay(
        self,
        ctx: AttackContext,
        streams: list[list[str]],
        drop_rate: float,
        seed: int,
        threshold: float,
    ) -> tuple[list[bool], int, int]:
        """Replay streams through a monitor-mode service session each.

        Returns (per-stream detected flags, total dropped symbols, number
        of gap-marked outcomes observed).
        """
        from ..service import Scored, ServiceConfig
        from ..service.service import DetectionService

        service = DetectionService(
            ServiceConfig(default_window=ctx.window, max_queue_depth=65536)
        )
        service.register(
            "target", ctx.detector, threshold=threshold, window=ctx.window
        )
        flags: list[bool] = []
        dropped_total = 0
        gapped_outcomes = 0
        try:
            for index, stream in enumerate(streams):
                session = f"gap-{index}"
                service.open_session("target", session, "monitor")
                rng = np.random.default_rng((seed, index))
                tickets = []
                for symbol in stream:
                    if drop_rate > 0.0 and rng.random() < drop_rate:
                        # The event never reaches the audit stream; the
                        # collector knows it lost data and reports the gap.
                        service.note_gap("target", session)
                        dropped_total += 1
                        continue
                    tickets.append(
                        service.submit("target", session, symbol=symbol)
                    )
                service.pump("target")
                outcomes = [t.result() for t in tickets]
                scored = [o for o in outcomes if isinstance(o, Scored)]
                gapped_outcomes += sum(1 for o in scored if o.gap)
                flags.append(
                    any(o.alert is not None or o.anomalous for o in scored)
                )
        finally:
            service.close(drain=True)
        telemetry.counter_add("robustness.gap.dropped", dropped_total)
        return flags, dropped_total, gapped_outcomes

    def run(self, ctx: AttackContext, severity: int, seed: int) -> AttackRunResult:
        if severity < 1:
            raise EvaluationError("gap severity must be >= 1")
        # A window needs `window` contiguous survivors, so detection falls
        # off like (1 - rate)^window — small steps already bite hard.
        drop_rate = min(0.04 * severity, 0.5)
        rng = np.random.default_rng(seed)
        threshold = self._stream_threshold(ctx, rng)
        attack_streams, benign_streams = self._streams(ctx, severity, rng)

        with telemetry.span("robustness.gap.replay", severity=str(severity)):
            attacked, dropped, gapped = self._replay(
                ctx, attack_streams, drop_rate, seed, threshold
            )
            baseline, _, _ = self._replay(
                ctx, attack_streams, 0.0, seed, threshold
            )
            benign, _, _ = self._replay(
                ctx, benign_streams, drop_rate, seed, threshold
            )
        telemetry.counter_add("robustness.attack.instances", len(attacked))
        return AttackRunResult(
            family=self.name,
            severity=severity,
            instance_detected=tuple(attacked),
            baseline_detected=tuple(baseline),
            benign_flagged=tuple(benign),
            details={
                "drop_rate": drop_rate,
                "dropped_symbols": dropped,
                "gap_marked_outcomes": gapped,
                "stream_threshold": round(float(threshold), 10),
            },
        )


#: Registered families, in presentation order.
ATTACK_FAMILIES: tuple[str, ...] = ("mimicry", "drift", "gap")


def attack_family(name: str, **overrides):
    """Instantiate a registered attack family by name."""
    if name == "mimicry":
        return MimicryFamily(**overrides)
    if name == "drift":
        return DriftFamily(**overrides)
    if name == "gap":
        return GapFamily(**overrides)
    raise EvaluationError(
        f"unknown attack family {name!r}; choose from {ATTACK_FAMILIES}"
    )
