"""Adversarial robustness harness: attack the detectors the paper only
defended.

The paper (DSN 2016) evaluates its context-sensitive HMM detectors on
benign traffic and its own exploit payloads.  This package turns that
one-sided evaluation into a standing benchmark: first-class **attack
families** (mimicry search against the trained model, workload drift with
a retraining cadence, trace-gap corruption through the live service) run
over a resumable **measurement grid** of programs × detector variants ×
attacks × severities, exporting a versioned **measured corpus** with
bootstrap confidence intervals per cell.

Typical use, via the facade::

    from repro import api

    study = api.open_robustness_grid(["gzip"], cache=cache)
    result = study.run()            # or .run(resume=True) after a crash
    corpus = study.corpus()
    print(study.report())

or on the CLI: ``python -m repro robustness --programs gzip --resume``.

Grid cells are pure functions of (config, point, derived seed): a run
killed mid-grid resumes from its artifact cache bit-identically, and the
corpus' ``cells``/``summary`` blocks are byte-stable across resumes (CI
enforces this with a kill-and-resume check).
"""

from .attacks import (
    ATTACK_FAMILIES,
    AttackContext,
    AttackRunResult,
    DriftFamily,
    GapFamily,
    MimicryFamily,
    MimicryProfile,
    attack_family,
    craft_mimicry_stream,
)
from .corpus import (
    CORPUS_FORMAT,
    CORPUS_VERSION,
    build_corpus,
    load_corpus,
    render_report,
    write_corpus,
)
from .grid import (
    DEFAULT_SEVERITIES,
    RobustnessCell,
    RobustnessConfig,
    RobustnessGrid,
    open_robustness_grid,
    robustness_grid,
)

__all__ = [
    "ATTACK_FAMILIES",
    "AttackContext",
    "AttackRunResult",
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "DEFAULT_SEVERITIES",
    "DriftFamily",
    "GapFamily",
    "MimicryFamily",
    "MimicryProfile",
    "RobustnessCell",
    "RobustnessConfig",
    "RobustnessGrid",
    "attack_family",
    "build_corpus",
    "craft_mimicry_stream",
    "load_corpus",
    "open_robustness_grid",
    "render_report",
    "robustness_grid",
    "write_corpus",
]
