"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow a downstream user runs:

* ``corpus``  — list the synthetic corpus programs and their stats;
* ``analyze`` — run the static pipeline on one program and print its
  aggregated call-transition summary;
* ``gadgets`` — scan a program's binary image for syscall gadgets;
* ``dot``     — export a CFG or the call graph as Graphviz DOT;
* ``train``   — train a detector on a workload and save the model;
* ``score``   — load a saved model and score trace segments from a file;
* ``trace``   — record a workload's traces to a log file (strace/ltrace role);
* ``score-trace`` — segment a trace log and score it with a saved model;
* ``serve``   — replay recorded traces through the micro-batched detection
  service (one session per trace) and report throughput/shed stats;
* ``gateway`` — serve the detection fleet over HTTP: async gateway +
  versioned model registry with warm-swap rollouts (``docs/gateway.md``);
* ``robustness`` — run the adversarial robustness grid (mimicry, drift,
  trace gaps) and write the measured corpus + report (``docs/robustness.md``);
* ``report``  — run a fast end-to-end summary of every experiment family;
* ``demo``    — end-to-end detection demo (train + attack + verdicts).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from . import telemetry
from .analysis import analyze_program
from .attacks import build_attack_events, payloads_for
from .core import build_detector, threshold_for_fp_budget
from .core.registry import MODEL_NAMES, model_is_context_sensitive
from .robustness import ATTACK_FAMILIES, DEFAULT_SEVERITIES
from .errors import EvaluationError
from .eval.tables import render_table
from .gadgets import TABLE_III_LENGTHS, gadget_surface, scan_gadgets
from .hmm import load_model, log_likelihood, save_model
from .program import ALL_PROGRAMS, CallKind, layout_program, load_program
from .runtime import ArtifactCache, ParallelExecutor, clamp_jobs, default_jobs
from .tracing import (
    build_segment_set,
    iter_segment_lines,
    read_traces,
    run_workload,
    segment_symbols,
    write_traces,
)


def _kind(value: str) -> CallKind:
    try:
        return CallKind(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown call kind {value!r}; use 'syscall' or 'libcall'"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMarkov (DSN 2016) reproduction toolkit",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for parallel experiment cells "
             "(default: $REPRO_JOBS or 1; results are identical at any N)")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="PATH",
        help="content-addressed artifact cache for trained models and "
             "static analyses (default: $REPRO_CACHE_DIR, else disabled)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache even if --cache-dir/$REPRO_CACHE_DIR "
             "is set")
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="enable telemetry and write the metrics/span snapshot as JSON "
             "to PATH on exit (default: $REPRO_METRICS_OUT, else disabled; "
             "see docs/telemetry.md for the schema)")
    parser.add_argument(
        "--kernel-backend", default=None, metavar="NAME",
        help="kernel backend for the HMM hot paths: 'numpy' (default) or "
             "'compiled' (C via the host toolchain, probed bit-identical; "
             "falls back to numpy with a warning if unavailable). Default: "
             "$REPRO_KERNEL_BACKEND, else numpy. See docs/perf.md")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="list the synthetic corpus programs")

    analyze = sub.add_parser("analyze", help="run static analysis on a program")
    analyze.add_argument("program", choices=ALL_PROGRAMS)
    analyze.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    analyze.add_argument("--no-context", action="store_true")
    analyze.add_argument("--top", type=int, default=15,
                         help="print the TOP most likely call transitions")

    gadgets = sub.add_parser("gadgets", help="scan a program image for gadgets")
    gadgets.add_argument("program", choices=ALL_PROGRAMS)

    dot = sub.add_parser("dot", help="export CFG/call graph as Graphviz DOT")
    dot.add_argument("program", choices=ALL_PROGRAMS)
    dot.add_argument("--function", default=None,
                     help="emit this function's CFG instead of the call graph")

    train = sub.add_parser("train", help="train a detector and save the model")
    train.add_argument("program", choices=ALL_PROGRAMS)
    train.add_argument("--model", choices=MODEL_NAMES, default="cmarkov")
    train.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    train.add_argument("--cases", type=int, default=60)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", type=Path, required=True)

    score = sub.add_parser("score", help="score segments with a saved model")
    score.add_argument("model_file", type=Path)
    score.add_argument("segments_file", type=Path,
                       help="text file, one space-separated segment per line")

    trace = sub.add_parser("trace", help="record workload traces to a log file")
    trace.add_argument("program", choices=ALL_PROGRAMS)
    trace.add_argument("--cases", type=int, default=20)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", type=Path, required=True)

    score_trace = sub.add_parser(
        "score-trace", help="segment a trace log and score it with a saved model"
    )
    score_trace.add_argument("model_file", type=Path)
    score_trace.add_argument("trace_file", type=Path)
    score_trace.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    score_trace.add_argument("--length", type=int, default=15)
    score_trace.add_argument("--threshold", type=float, default=None,
                             help="flag segments scoring below this value")

    serve = sub.add_parser(
        "serve",
        help="replay recorded traces through the micro-batched detection "
             "service (one session per trace)",
    )
    serve.add_argument("model_source",
                       help="saved model path, or cache:KEY with --cache-dir")
    serve.add_argument("trace_file", type=Path)
    serve.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    serve.add_argument("--length", type=int, default=15,
                       help="window length (monitor/window modes)")
    serve.add_argument("--threshold", type=float, default=None,
                       help="operating threshold; anomalous iff score < T "
                            "(required for --mode monitor)")
    serve.add_argument("--mode", choices=("window", "monitor", "stream"),
                       default="window",
                       help="window: client-side windows; monitor: service "
                            "keeps sliding window + alerts; stream: "
                            "incremental per-call surprisal")
    serve.add_argument("--batch", type=int, default=256,
                       help="max windows per micro-batch drain")
    serve.add_argument("--queue-depth", type=int, default=4096,
                       help="bounded queue depth (admission limit)")
    serve.add_argument("--latency-budget-ms", type=float, default=None,
                       help="shed requests older than this at drain time")
    serve.add_argument("--policy", choices=("reject-new", "shed-oldest"),
                       default="reject-new",
                       help="admission policy when the queue is full")
    serve.add_argument("--shards", type=int, default=1,
                       help="worker processes; >1 shards sessions across "
                            "processes with shared-memory model weights "
                            "(1 = in-process service, today's behavior)")

    gateway = sub.add_parser(
        "gateway",
        help="serve the detection fleet over HTTP (async gateway + "
             "versioned model registry with warm-swap)",
    )
    gateway.add_argument("model_source",
                         help="saved model path, or cache:KEY with --cache-dir")
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=0,
                         help="bind port; 0 picks an ephemeral one "
                              "(printed at startup)")
    gateway.add_argument("--name", default="served",
                         help="detector name == registry lineage name")
    gateway.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    gateway.add_argument("--length", type=int, default=15,
                         help="window length (monitor/stream sessions)")
    gateway.add_argument("--threshold", type=float, default=None,
                         help="operating threshold; anomalous iff score < T")
    gateway.add_argument("--shards", type=int, default=1,
                         help="worker processes (1 = in-process service)")
    gateway.add_argument("--batch", type=int, default=256,
                         help="max windows per micro-batch drain")
    gateway.add_argument("--queue-depth", type=int, default=4096,
                         help="bounded queue depth (admission limit)")
    gateway.add_argument("--policy", choices=("reject-new", "shed-oldest"),
                         default="reject-new",
                         help="admission policy when the queue is full")
    gateway.add_argument("--result-timeout", type=float, default=30.0,
                         help="seconds an observe waits for its outcome "
                              "before answering 503")
    gateway.add_argument("--no-pump", action="store_true",
                         help="do not start the background pump; drive "
                              "drains via POST /v1/admin/pump (test hook)")

    robustness = sub.add_parser(
        "robustness",
        help="run the adversarial robustness grid (mimicry/drift/gap) and "
             "write the measured corpus + report",
    )
    robustness.add_argument("--programs", nargs="+", choices=ALL_PROGRAMS,
                            default=["gzip"], metavar="PROGRAM",
                            help="programs to attack (default: gzip)")
    robustness.add_argument("--models", nargs="+", choices=MODEL_NAMES,
                            default=list(MODEL_NAMES), metavar="MODEL",
                            help=f"detector variants (default: all of "
                                 f"{', '.join(MODEL_NAMES)})")
    robustness.add_argument("--attacks", nargs="+", choices=ATTACK_FAMILIES,
                            default=list(ATTACK_FAMILIES), metavar="ATTACK",
                            help=f"attack families (default: all of "
                                 f"{', '.join(ATTACK_FAMILIES)})")
    robustness.add_argument("--severities", nargs="+", type=int,
                            default=list(DEFAULT_SEVERITIES), metavar="N",
                            help="severity ladder (default: "
                                 f"{' '.join(map(str, DEFAULT_SEVERITIES))})")
    robustness.add_argument("--kind", type=_kind, default=CallKind.SYSCALL)
    robustness.add_argument("--seed", type=int, default=0,
                            help="grid seed; every cell derives its own "
                                 "stream from it (default: 0)")
    robustness.add_argument("--resume", action=argparse.BooleanOptionalAction,
                            default=True,
                            help="load finished cells from --cache-dir "
                                 "instead of recomputing (default: on; "
                                 "--no-resume forces a full recompute)")
    robustness.add_argument("--corpus-out", type=Path, default=None,
                            metavar="PATH",
                            help="write the versioned measured-corpus JSON "
                                 "to PATH")
    robustness.add_argument("--report-out", type=Path, default=None,
                            metavar="PATH",
                            help="write the markdown report (bootstrap CIs "
                                 "per cell) to PATH")

    report = sub.add_parser(
        "report", help="fast end-to-end summary of every experiment family"
    )
    report.add_argument("--program", choices=ALL_PROGRAMS, default="gzip")
    report.add_argument("--markdown", type=Path, default=None,
                        help="write a full markdown report to this path")

    demo = sub.add_parser("demo", help="end-to-end detection demo")
    demo.add_argument("program", choices=("gzip", "proftpd"), default="gzip",
                      nargs="?")
    demo.add_argument("--seed", type=int, default=0)
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def runtime_from_args(
    args: argparse.Namespace,
) -> tuple[ParallelExecutor, ArtifactCache | None]:
    """Resolve --jobs/--cache-dir/--no-cache (env vars as fallback)."""
    if args.jobs is not None:
        jobs = clamp_jobs(max(1, args.jobs), source="--jobs")
    else:
        jobs = default_jobs()  # REPRO_JOBS, already clamped
    executor = ParallelExecutor(jobs=jobs)
    cache: ArtifactCache | None = None
    if not args.no_cache:
        cache_dir = args.cache_dir
        if cache_dir is None:
            env_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
            cache_dir = Path(env_dir) if env_dir else None
        if cache_dir is not None:
            cache_dir = Path(cache_dir)
            if cache_dir.exists() and not cache_dir.is_dir():
                raise EvaluationError(
                    f"--cache-dir {cache_dir} exists and is not a directory"
                )
            cache = ArtifactCache(cache_dir)
    return executor, cache


def _cmd_corpus() -> int:
    rows = []
    for name in ALL_PROGRAMS:
        program = load_program(name)
        rows.append(
            [
                name,
                len(program.functions),
                program.total_blocks(),
                len(program.distinct_calls(CallKind.SYSCALL)),
                len(program.distinct_calls(CallKind.LIBCALL)),
                "server" if program.metadata.get("server") else "utility",
            ]
        )
    print(
        render_table(
            ["program", "functions", "blocks", "ctx syscalls", "ctx libcalls", "type"],
            rows,
        )
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    analysis = analyze_program(program, args.kind, context=not args.no_context)
    summary = analysis.program_summary
    print(
        f"{args.program}: {len(summary.space)} {args.kind.value} labels, "
        f"timings {dict((k, round(v, 4)) for k, v in analysis.timings_s.items())}"
    )
    flat = [
        (summary.trans[i, j], summary.space.labels[i], summary.space.labels[j])
        for i in range(len(summary.space))
        for j in range(len(summary.space))
        if summary.trans[i, j] > 0
    ]
    flat.sort(reverse=True)
    rows = [[src, dst, f"{p:.4f}"] for p, src, dst in flat[: args.top]]
    print(render_table(["from", "to", "probability"], rows,
                       title=f"top {args.top} statically-inferred transitions"))
    return 0


def _cmd_gadgets(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    image = layout_program(program)
    surface = gadget_surface(program, scan_gadgets(image))
    rows = [
        [
            f"L<={length}",
            surface.total_by_length[length],
            surface.compatible_by_length[length],
        ]
        for length in TABLE_III_LENGTHS
    ]
    print(render_table(["gadget length", "total", "context-compatible"], rows,
                       title=f"[SYSCALL...RET] gadgets in {args.program}"))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from .program import call_graph_to_dot, cfg_to_dot

    program = load_program(args.program)
    if args.function is None:
        print(call_graph_to_dot(program))
    else:
        print(cfg_to_dot(program.function(args.function)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core.crossval import trained_model_key
    from .core.registry import detector_spec

    _, cache = runtime_from_args(args)
    program = load_program(args.program)
    workload = run_workload(program, n_cases=args.cases, seed=args.seed)
    context = model_is_context_sensitive(args.model)
    segments = build_segment_set(workload.traces, args.kind, context)
    factory = detector_spec(args.model, program, args.kind)
    detector = factory()

    key = trained_model_key(factory, segments) if cache is not None else None
    cached = cache.get_model(key) if cache is not None and key else None
    if cached is not None:
        save_model(cached, args.output)
        print(
            f"loaded cached {args.model} for {args.program} "
            f"({cached.n_states} states, cache hit) -> {args.output}"
        )
        return 0

    fit = detector.fit(segments)
    save_model(detector.model, args.output)
    if cache is not None and key is not None:
        cache.put_model(key, detector.model)
    print(
        f"trained {args.model} on {args.program} "
        f"({fit.n_states} states, {fit.report.iterations} iterations, "
        f"{fit.train_seconds:.1f}s) -> {args.output}"
    )
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    model = load_model(args.model_file)
    lines = [
        line.split()
        for line in args.segments_file.read_text().splitlines()
        if line.strip()
    ]
    if not lines:
        print("no segments in input file", file=sys.stderr)
        return 1
    obs = model.encode(lines)
    scores = log_likelihood(model, obs) / obs.shape[1]
    for line, score in zip(lines, scores):
        print(f"{score:10.4f}  {' '.join(line)}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    image = layout_program(program)
    workload = run_workload(program, n_cases=50, seed=args.seed)
    segments = build_segment_set(workload.traces, CallKind.SYSCALL, context=True)
    detector = build_detector("cmarkov", program, CallKind.SYSCALL)
    train_part, holdout = segments.split([0.8, 0.2], seed=args.seed)
    detector.fit(train_part)
    threshold = threshold_for_fp_budget(detector.score(holdout.segments()), 0.01)
    print(f"trained CMarkov on {args.program}; threshold(FP=1%) = {threshold:.3f}")

    carrier = workload.traces[0].symbols(CallKind.SYSCALL, context=True)
    rows = []
    for spec in payloads_for(args.program):
        events = build_attack_events(spec, program, image, seed=args.seed)
        symbols = [e.symbol(True) for e in events]
        if len(symbols) < 15:
            symbols = carrier[-(15 - len(symbols)):] + symbols
        scores = detector.score(segment_symbols(symbols, length=15))
        rows.append(
            [
                spec.name,
                "DETECTED" if bool(np.any(scores < threshold)) else "missed",
                f"{scores.min():.2f}",
            ]
        )
    print(render_table(["payload", "verdict", "min score"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    workload = run_workload(program, n_cases=args.cases, seed=args.seed)
    count = write_traces(workload.traces, args.output)
    events = sum(len(t) for t in workload.traces)
    print(f"wrote {count} traces ({events} events) to {args.output}")
    return 0


def _cmd_score_trace(args: argparse.Namespace) -> int:
    model = load_model(args.model_file)
    traces = read_traces(args.trace_file)
    # Infer context mode from the model's alphabet.
    context = any("@" in symbol for symbol in model.symbols)
    lines = list(
        iter_segment_lines(traces, args.kind, context, length=args.length)
    )
    if not lines:
        print("trace log yields no full segments", file=sys.stderr)
        return 1
    segments = [line.split() for line in lines]
    obs = model.encode(segments)
    scores = log_likelihood(model, obs) / obs.shape[1]
    flagged = 0
    for line, score in zip(lines, scores):
        marker = ""
        if args.threshold is not None and score < args.threshold:
            marker = "  <-- ANOMALY"
            flagged += 1
        print(f"{score:10.4f}  {line}{marker}")
    if args.threshold is not None:
        print(f"\n{flagged}/{len(lines)} segments flagged at "
              f"threshold {args.threshold}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from .core.detector import PretrainedDetector
    from .errors import ServiceError
    from .service import (
        AdmissionPolicy,
        Failed,
        Overloaded,
        Scored,
        ServiceConfig,
        Streamed,
        create_service,
        resolve_model,
    )

    if args.mode == "monitor" and args.threshold is None:
        raise ServiceError("--mode monitor needs --threshold")
    _, cache = runtime_from_args(args)
    model = resolve_model(args.model_source, cache=cache)
    detector = PretrainedDetector(model, kind=args.kind, name="served")
    traces = read_traces(args.trace_file)
    if not traces:
        print("trace log holds no traces", file=sys.stderr)
        return 1

    config = ServiceConfig(
        max_batch=args.batch,
        max_queue_depth=args.queue_depth,
        admission_policy=AdmissionPolicy(args.policy),
        latency_budget_s=(
            args.latency_budget_ms / 1000.0
            if args.latency_budget_ms is not None
            else None
        ),
        default_window=args.length,
    )
    service = create_service(config, shards=args.shards)
    service.register("served", detector, threshold=args.threshold,
                     window=args.length)

    tickets = []

    def _submit(session: str, **kwargs) -> None:
        # Offline replay is producer-paced: drain whenever the bounded
        # queue fills so a long trace log never sheds as fake "overload"
        # (the admission limit is meant for live traffic, not replay size).
        if service.pending >= args.queue_depth:
            service.pump("served")
        tickets.append(service.submit("served", session, **kwargs))

    started = _time.perf_counter()
    for index, trace in enumerate(traces):
        session = f"trace-{index}"
        symbols = trace.symbols(detector.kind, detector.context)
        if args.mode == "window":
            for window in segment_symbols(symbols, length=args.length):
                _submit(session, window=window)
        else:
            service.open_session("served", session, args.mode)
            for symbol in symbols:
                _submit(session, symbol=symbol)
    service.close(drain=True)  # graceful drain scores the whole backlog
    elapsed = _time.perf_counter() - started

    outcomes = [ticket.result() for ticket in tickets]
    scored = [o for o in outcomes if isinstance(o, (Scored, Streamed))]
    shed = [o for o in outcomes if isinstance(o, Overloaded)]
    failed = [o for o in outcomes if isinstance(o, Failed)]
    alerts = sum(
        1 for o in outcomes if isinstance(o, Scored) and o.alert is not None
    )
    anomalous = sum(1 for o in scored if o.anomalous)
    stats = service.stats
    rows = [
        ["sessions", len(traces)],
        *([["shards", args.shards]] if args.shards > 1 else []),
        ["submitted", stats.submitted],
        ["scored", stats.scored + stats.streamed],
        ["absorbed (window warm-up)", stats.absorbed],
        ["shed", f"{stats.shed_total} (rate {stats.shed_rate:.2%})"],
        ["micro-batches", stats.batches],
        ["max batch size", stats.max_batch_size],
        ["max queue depth", stats.max_depth_seen],
        ["alerts" if args.mode == "monitor" else "anomalous",
         alerts if args.mode == "monitor" else anomalous],
        ["throughput", f"{len(scored) / max(elapsed, 1e-9):,.0f} outcomes/s"],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"service replay — {args.mode} mode"))
    if scored and args.mode != "stream":
        min_score = min(o.score for o in scored if isinstance(o, Scored))
        print(f"min window score: {min_score:.4f}"
              + (f" (threshold {args.threshold})" if args.threshold is not None
                 else ""))
    if shed:
        reasons = {}
        for outcome in shed:
            reasons[outcome.reason.value] = reasons.get(outcome.reason.value, 0) + 1
        print(f"shed by reason: {reasons}")
    if failed:
        print(f"failed to score: {len(failed)} "
              f"(first error: {failed[0].error})", file=sys.stderr)
        return 1
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import threading as _threading

    from .core.detector import PretrainedDetector
    from .gateway import DetectionGateway, GatewayConfig
    from .runtime import ModelRegistry
    from .service import (
        AdmissionPolicy,
        ServiceConfig,
        create_service,
        resolve_model,
    )

    if not telemetry.enabled():
        telemetry.enable()  # /metrics wants gateway.*/service.* counters
    _, cache = runtime_from_args(args)
    model = resolve_model(args.model_source, cache=cache)
    detector = PretrainedDetector(model, kind=args.kind, name=args.name)
    config = ServiceConfig(
        max_batch=args.batch,
        max_queue_depth=args.queue_depth,
        admission_policy=AdmissionPolicy(args.policy),
        default_window=args.length,
    )
    service = create_service(config, shards=args.shards)
    service.register(args.name, detector, threshold=args.threshold,
                     window=args.length)
    registry = ModelRegistry(cache=cache)
    gateway = DetectionGateway(
        service,
        registry,
        GatewayConfig(
            host=args.host,
            port=args.port,
            result_timeout_s=args.result_timeout,
            call_kind=args.kind.value,
        ),
    )
    # v1 of the lineage is the model we booted with; activating it warm-swaps
    # the (identical) weights in, which also proves the swap path at startup.
    registry.publish(
        args.name, model,
        metadata={"source": str(args.model_source)}, activate=True,
    )
    if not args.no_pump:
        service.start()
    gateway.start()
    # SIGTERM (docker stop, CI `kill`) takes the same graceful path as
    # Ctrl-C, so worker shards and shared-memory segments release cleanly.
    import signal as _signal
    _signal.signal(_signal.SIGTERM, _signal.default_int_handler)
    print(f"gateway listening on http://{args.host}:{gateway.port}",
          flush=True)
    try:
        _threading.Event().wait()  # serve until interrupted/killed
    except KeyboardInterrupt:
        pass
    finally:
        gateway.stop()
        try:
            service.close(drain=False)
        except Exception:  # noqa: BLE001 - already closed via the admin route
            pass
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .robustness import RobustnessConfig, open_robustness_grid
    from .robustness.corpus import write_corpus

    executor, cache = runtime_from_args(args)
    grid = open_robustness_grid(
        args.programs,
        models=args.models,
        attacks=args.attacks,
        severities=args.severities,
        config=RobustnessConfig(kind=args.kind.value),
        seed=args.seed,
        executor=executor,
        cache=cache,
    )
    if args.resume and cache is not None:
        cached = grid.cells_cached()
        if cached:
            print(f"resuming: {cached}/{grid.n_cells} cells cached "
                  f"in {cache.root}", flush=True)
    result = grid.run(resume=args.resume)
    corpus = grid.corpus()

    rows = [
        [
            row["attack"],
            row["model"],
            f"{row['detection']['estimate']:.2f} "
            f"[{row['detection']['low']:.2f}, {row['detection']['high']:.2f}]",
            f"{row['baseline_detection']['estimate']:.2f}",
            row["n_instances"],
        ]
        for row in corpus["summary"]["pooled"]
    ]
    print(render_table(
        ["attack", "model", "detection (95% CI)", "baseline", "instances"],
        rows,
        title=f"robustness grid — {result.computed} computed, "
              f"{result.resumed} resumed, {result.elapsed_s:.1f}s",
    ))
    claims = corpus["summary"]["claims"]
    print(f"mimicry lowers detection: {claims['mimicry_lowers_detection']}")
    print(f"regular-context >= regular-basic under attack: "
          f"{claims['regular_context_ge_basic']}")
    if args.corpus_out is not None:
        path = write_corpus(corpus, args.corpus_out)
        print(f"corpus -> {path}")
    if args.report_out is not None:
        args.report_out.parent.mkdir(parents=True, exist_ok=True)
        args.report_out.write_text(grid.report())
        print(f"report -> {args.report_out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    executor, cache = runtime_from_args(args)
    if args.markdown is not None:
        from .eval import FAST_CONFIG, ReportSpec, write_report

        spec = ReportSpec(accuracy_programs=(args.program,),
                          exploit_victims=(args.program,) if args.program in
                          ("gzip", "proftpd") else ())
        path = write_report(args.markdown, config=FAST_CONFIG, spec=spec)
        print(f"report written to {path}")
        return 0
    from .eval import (
        FAST_CONFIG,
        run_accuracy_comparison,
        run_clustering_reduction,
        run_coverage_survey,
        run_gadget_survey,
        run_runtime_table,
    )

    program = args.program
    print("== coverage (Table I role) ==")
    for row in run_coverage_survey(FAST_CONFIG, program_names=(program,)):
        print("  ", row.row())
    print("== accuracy, syscall models (Figures 3/5 role) ==")
    comparison = run_accuracy_comparison(
        program, CallKind.SYSCALL, FAST_CONFIG, executor=executor, cache=cache
    )
    for model_name, result in comparison.results.items():
        fn = result.fn_by_fp[FAST_CONFIG.fp_targets[-1]]
        print(f"   {model_name:16s} states={result.n_states:4d} "
              f"auc={result.auc:.4f} FN@{FAST_CONFIG.fp_targets[-1]}={fn:.4f}")
    print("== clustering (Table II role) ==")
    for row in run_clustering_reduction((program,), FAST_CONFIG, measure=False):
        print(f"   {row.n_distinct_calls} calls -> {row.n_states_after} states "
              f"(est. {row.estimated_time_reduction:.0%} training cut)")
    print("== gadgets (Table III role) ==")
    for surface in run_gadget_survey(program_names=(program,), include_libc=False):
        print(f"   total {surface.total_by_length} "
              f"compatible {surface.compatible_by_length}")
    print("== static-analysis runtime (Table V role) ==")
    for row in run_runtime_table(program_names=(program,), cache=cache):
        print(f"   {row.kind.value:8s} total {row.total_s:.3f}s")
    if cache is not None:
        print("== artifact cache ==")
        print(f"   {cache.root}: {cache.stats.as_dict()} "
              f"({cache.n_entries} entries on disk)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are rendered as
    one-line messages with exit code 2 instead of tracebacks.

    ``--metrics-out PATH`` (or ``REPRO_METRICS_OUT``) switches telemetry on
    for the whole invocation and writes the snapshot JSON on the way out —
    including on error exits, so a failed run still leaves its metrics.
    """
    from .errors import ReproError

    args = build_parser().parse_args(argv)
    metrics_out = metrics_out_from_args(args)
    if metrics_out is not None:
        telemetry.enable()
    try:
        if args.kernel_backend is not None:
            # Activate before dispatch so an unknown name fails up front
            # (exit 2) and an unavailable one warns once, not mid-command.
            from .hmm import backends

            backends.use_backend(args.kernel_backend)
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if metrics_out is not None:
            telemetry.write_snapshot(metrics_out)
            telemetry.disable()
            print(f"telemetry snapshot -> {metrics_out}", file=sys.stderr)


def metrics_out_from_args(args: argparse.Namespace) -> Path | None:
    """Resolve --metrics-out (falling back to ``REPRO_METRICS_OUT``)."""
    if args.metrics_out is not None:
        return args.metrics_out
    env = os.environ.get("REPRO_METRICS_OUT", "").strip()
    return Path(env) if env else None


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "corpus":
        return _cmd_corpus()
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "gadgets":
        return _cmd_gadgets(args)
    if args.command == "dot":
        return _cmd_dot(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "score":
        return _cmd_score(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "score-trace":
        return _cmd_score_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
