"""Principal component analysis, from scratch on numpy.

Call-transition vectors (Definition 6) live in a ``2n``-dimensional space
that is mostly zeros; the paper applies PCA before K-means so clustering
operates on a dense low-dimensional embedding that preserves the distance
structure of the original vectors.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class PCA:
    """Linear PCA via singular value decomposition.

    Args:
        n_components: number of components to keep, or ``None`` to choose
            the smallest count explaining ``variance_ratio`` of the total
            variance.
        variance_ratio: explained-variance target used when
            ``n_components`` is ``None``.
    """

    def __init__(self, n_components: int | None = None, variance_ratio: float = 0.95) -> None:
        if n_components is not None and n_components <= 0:
            raise ModelError("n_components must be positive")
        if not 0 < variance_ratio <= 1:
            raise ModelError("variance_ratio must be in (0, 1]")
        self.n_components = n_components
        self.variance_ratio = variance_ratio
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on (samples, features) data."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ModelError("PCA input must be a non-empty 2-D array")
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        # SVD of the centered data: rows of vt are principal directions.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        denominator = max(data.shape[0] - 1, 1)
        variance = (singular**2) / denominator
        if self.n_components is not None:
            keep = min(self.n_components, vt.shape[0])
        else:
            total = variance.sum()
            if total <= 0:
                keep = 1
            else:
                cumulative = np.cumsum(variance) / total
                keep = int(np.searchsorted(cumulative, self.variance_ratio) + 1)
                keep = min(keep, vt.shape[0])
        self.components_ = vt[:keep]
        self.explained_variance_ = variance[:keep]
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project (samples, features) data onto the fitted components."""
        if self.components_ is None or self.mean_ is None:
            raise ModelError("PCA.transform called before fit")
        data = np.asarray(data, dtype=float)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)
