"""STILO-style HMM initialization from static analysis (Section III).

The hidden states of the model are the (possibly clustered) calls of the
aggregated call-transition matrix:

* ``A`` — row-normalized transition mass between (clusters of) calls, mixed
  with a uniform floor so training can still discover dynamic-only behaviour
  (function pointers, recursion, loop carry-over);
* ``B`` — a state emits (the labels of) its own calls: probability
  concentrated on the member labels, weighted by their static occurrence
  mass, with an ε floor over the rest of the alphabet (including the
  unknown-symbol slot);
* ``π`` — the program's statically-estimated first-call distribution.

This is the paper's "informed set of initial HMM probability values" that
both STILO and CMarkov share; CMarkov additionally uses context-sensitive
labels and clustering.
"""

from __future__ import annotations

import numpy as np

from ..analysis.matrix import CallSummary
from ..errors import ModelError
from ..hmm.model import HiddenMarkovModel, ensure_alphabet_with_unknown
from .cluster import CallClustering, identity_clustering


def mix_uniform(rows: np.ndarray, epsilon: float) -> np.ndarray:
    """Mix each stochastic row with the uniform distribution."""
    if not 0 <= epsilon < 1:
        raise ModelError("epsilon must be in [0, 1)")
    n = rows.shape[1]
    return (1.0 - epsilon) * rows + epsilon / n


def initialize_hmm(
    summary: CallSummary,
    clustering: CallClustering | None = None,
    emission_concentration: float = 0.98,
    transition_mix: float = 0.02,
    initial_mix: float = 0.02,
) -> HiddenMarkovModel:
    """Build a statically-initialized HMM from a program summary.

    Args:
        summary: aggregated call-transition summary (program level).
        clustering: optional state reduction; ``None`` gives the one-to-one
            call/state mapping of plain STILO.
        emission_concentration: probability a state emits one of its own
            member labels (the remainder floors the rest of the alphabet).
        transition_mix: uniform mixing weight for ``A``.
        initial_mix: uniform mixing weight for ``π``.

    Returns:
        A validated :class:`HiddenMarkovModel` whose ``state_labels`` name
        each state's member calls.
    """
    if clustering is None:
        clustering = identity_clustering(summary)
    elif clustering.summary is not summary:
        raise ModelError("clustering was computed for a different summary")
    if not 0 < emission_concentration < 1:
        raise ModelError("emission_concentration must be in (0, 1)")

    reduced = clustering.reduced_summary()
    n_states = clustering.n_clusters
    alphabet = ensure_alphabet_with_unknown(summary.space.labels)
    m = len(alphabet)

    transition = mix_uniform(reduced.row_stochastic(), transition_mix)
    initial = mix_uniform(reduced.initial_distribution()[None, :], initial_mix)[0]

    emission = np.full((n_states, m), (1.0 - emission_concentration) / m)
    for cluster in range(n_states):
        member_indices = clustering.members[cluster]
        member_weights = clustering.weights[member_indices]
        member_weights = member_weights / member_weights.sum()
        for index, weight in zip(member_indices, member_weights):
            emission[cluster, index] += emission_concentration * weight
    emission /= emission.sum(axis=1, keepdims=True)

    state_labels = tuple(
        "|".join(clustering.member_labels(cluster)) for cluster in range(n_states)
    )
    return HiddenMarkovModel(
        transition=transition,
        emission=emission,
        initial=initial,
        symbols=alphabet,
        state_labels=state_labels,
    )
