"""Clustering-based state reduction (Section III, Algorithm 1).

Each call is represented by its call-transition vector — the concatenation
of its outgoing row and incoming column in the aggregated call-transition
matrix (Definition 6).  PCA compresses the vectors, K-means groups similar
calls, and the grouped matrix becomes the (smaller) hidden-state space of
the HMM: a many-to-one mapping from calls to states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..analysis.matrix import CallSummary
from ..errors import ModelError
from .kmeans import kmeans
from .pca import PCA


@dataclass
class CallClustering:
    """A grouping of the labels of a :class:`CallSummary`.

    Attributes:
        summary: the summary that was clustered.
        assignments: cluster id per label index, shape (n_labels,).
        members: cluster id -> list of member label indices.
        weights: per-label occurrence mass (entry mass + incoming transition
            mass), used to weight emission probabilities of merged states.
    """

    summary: CallSummary
    assignments: np.ndarray
    members: dict[int, list[int]]
    weights: np.ndarray

    @property
    def n_clusters(self) -> int:
        return len(self.members)

    def reduced_summary(self) -> CallSummary:
        """The clustered call-transition matrix (Algorithm 1's output).

        Probability mass between clusters is the sum of the mass between
        their members, so the reduced matrix conserves all transition,
        entry, and exit mass of the original.
        """
        k = self.n_clusters
        n = len(self.summary.space)
        indicator = np.zeros((n, k))
        indicator[np.arange(n), self.assignments] = 1.0
        reduced = CallSummary(
            space=self.summary.space,  # label space unchanged; states shrink
            trans=indicator.T @ self.summary.trans @ indicator,
            entry=indicator.T @ self.summary.entry,
            exit=indicator.T @ self.summary.exit,
            passthrough=self.summary.passthrough,
        )
        return reduced

    def member_labels(self, cluster: int) -> list[str]:
        """Human-readable labels of one cluster's members."""
        return [self.summary.space.labels[i] for i in self.members[cluster]]


def identity_clustering(summary: CallSummary) -> CallClustering:
    """The trivial one-call-per-state clustering (no reduction)."""
    n = len(summary.space)
    assignments = np.arange(n)
    return CallClustering(
        summary=summary,
        assignments=assignments,
        members={i: [i] for i in range(n)},
        weights=_occurrence_weights(summary),
    )


def cluster_calls(
    summary: CallSummary,
    n_clusters: int | None = None,
    ratio: float = 0.5,
    pca_components: int | None = None,
    pca_variance: float = 0.95,
    seed: int = 0,
) -> CallClustering:
    """Cluster similar calls of ``summary`` (Algorithm 1).

    Args:
        summary: aggregated call-transition summary of a program.
        n_clusters: explicit K; default derives K from ``ratio``.
        ratio: target ``K / n_labels`` when ``n_clusters`` is ``None`` — the
            paper picks 1/3 to 1/2 of the original state count.
        pca_components: dimensionality for the post-PCA matrix (``None`` =
            pick by explained variance).
        pca_variance: explained-variance target for automatic component
            selection.
        seed: RNG seed for k-means++.

    Returns:
        A :class:`CallClustering` whose clusters are the new hidden states.
    """
    n = len(summary.space)
    if n == 0:
        raise ModelError("cannot cluster an empty summary")
    if n_clusters is None:
        if not 0 < ratio <= 1:
            raise ModelError("ratio must be in (0, 1]")
        n_clusters = max(1, round(n * ratio))
    n_clusters = min(n_clusters, n)

    with telemetry.span("analysis.clustering", n_labels=n, n_clusters=n_clusters):
        vectors = summary.transition_vectors()
        projected = PCA(
            n_components=pca_components, variance_ratio=pca_variance
        ).fit_transform(vectors)
        result = kmeans(projected, n_clusters=n_clusters, seed=seed)

    members: dict[int, list[int]] = {}
    # Renumber clusters densely in first-appearance order for stable output.
    renumber: dict[int, int] = {}
    assignments = np.empty(n, dtype=int)
    for index, raw in enumerate(result.labels):
        cluster = renumber.setdefault(int(raw), len(renumber))
        assignments[index] = cluster
        members.setdefault(cluster, []).append(index)

    return CallClustering(
        summary=summary,
        assignments=assignments,
        members=members,
        weights=_occurrence_weights(summary),
    )


def _occurrence_weights(summary: CallSummary) -> np.ndarray:
    """Per-label occurrence mass: how often the call happens per execution."""
    weights = summary.entry + summary.trans.sum(axis=0)
    # Labels with no static mass still deserve a sliver so merged-state
    # emissions never hard-zero a legitimate call.
    return weights + 1e-9
