"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

The paper chose K-means "because of its simplicity and efficiency"
(Section III-C); the similarity metric is Euclidean distance between
(post-PCA) call-transition vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError


@dataclass
class KMeansResult:
    """Clustering output.

    Attributes:
        labels: cluster index per sample, shape (samples,).
        centers: cluster centroids, shape (k, features).
        inertia: sum of squared distances of samples to their centroid.
        iterations: Lloyd iterations performed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]


def _squared_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape (samples, k)."""
    # ||x - c||² = ||x||² - 2 x·c + ||c||², computed without the big
    # 3-D broadcast.
    x_sq = (data**2).sum(axis=1)[:, None]
    c_sq = (centers**2).sum(axis=1)[None, :]
    cross = data @ centers.T
    return np.maximum(x_sq - 2 * cross + c_sq, 0.0)


def _kmeans_plus_plus(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest = _squared_distances(data, centers[:1]).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a center; pick arbitrarily.
            choice = int(rng.integers(0, n))
        else:
            choice = int(rng.choice(n, p=closest / total))
        centers[i] = data[choice]
        distances = _squared_distances(data, centers[i : i + 1]).ravel()
        closest = np.minimum(closest, distances)
    return centers


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    max_iterations: int = 100,
    tol: float = 1e-7,
) -> KMeansResult:
    """Cluster ``data`` into ``n_clusters`` groups.

    Empty clusters are re-seeded to the point currently farthest from its
    centroid, so the result always has exactly ``n_clusters`` non-empty
    clusters (provided there are at least that many distinct points).

    Raises:
        ModelError: on invalid shapes or ``n_clusters`` > samples.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ModelError("kmeans input must be a non-empty 2-D array")
    n = data.shape[0]
    if not 1 <= n_clusters <= n:
        raise ModelError(f"n_clusters must be in [1, {n}], got {n_clusters}")

    rng = np.random.default_rng(seed)
    centers = _kmeans_plus_plus(data, n_clusters, rng)
    labels = np.zeros(n, dtype=int)
    inertia = float("inf")
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        distances = _squared_distances(data, centers)
        labels = distances.argmin(axis=1)
        point_costs = distances[np.arange(n), labels]
        new_inertia = float(point_costs.sum())

        new_centers = np.zeros_like(centers)
        counts = np.bincount(labels, minlength=n_clusters).astype(float)
        np.add.at(new_centers, labels, data)
        empty = counts == 0
        if empty.any():
            # Re-seed each empty cluster at the worst-fit point.
            order = np.argsort(point_costs)[::-1]
            for cluster, point in zip(np.flatnonzero(empty), order):
                new_centers[cluster] = data[point]
                counts[cluster] = 1.0
                labels[point] = cluster
        new_centers /= counts[:, None]

        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if abs(inertia - new_inertia) <= tol and shift <= tol:
            inertia = new_inertia
            break
        inertia = new_inertia

    return KMeansResult(
        labels=labels, centers=centers, inertia=inertia, iterations=iterations
    )
