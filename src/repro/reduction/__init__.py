"""State reduction: PCA + K-means over call-transition vectors, and the
static HMM initialization shared by STILO and CMarkov (Section III)."""

from .cluster import CallClustering, cluster_calls, identity_clustering
from .initializer import initialize_hmm, mix_uniform
from .kmeans import KMeansResult, kmeans
from .pca import PCA

__all__ = [
    "PCA",
    "CallClustering",
    "KMeansResult",
    "cluster_calls",
    "identity_clustering",
    "initialize_hmm",
    "kmeans",
    "mix_uniform",
]
