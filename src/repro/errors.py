"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramStructureError(ReproError):
    """A program, CFG, or call graph is structurally invalid.

    Examples: an edge referencing an unknown block, a function without an
    entry block, duplicate function names, or a call site naming a function
    that does not exist in the program.
    """


class AnalysisError(ReproError):
    """Static analysis could not be completed on an otherwise valid program."""


class ModelError(ReproError):
    """An HMM or detector was constructed or used with invalid parameters."""


class NotFittedError(ModelError):
    """A detector method requiring a trained model was called before ``fit``."""


class TraceError(ReproError):
    """A trace or segment is malformed (wrong length, unknown event kind...)."""


class EvaluationError(ReproError):
    """An experiment configuration or evaluation input is invalid."""


class KernelBackendError(ReproError):
    """A kernel backend was misnamed, or failed to build/load/verify.

    Raised for *selection* mistakes (unknown backend name) and by
    :mod:`repro.hmm.backends.compiled` internals when the toolchain,
    library, or bit-identity probe fails — the registry converts the
    latter into a warned fallback to the numpy backend, so callers only
    ever see this for unknown names.
    """


class ServiceError(ReproError):
    """The detection service was misconfigured or misused.

    Examples: submitting to an unregistered detector, reusing a session id
    across incompatible modes, or submitting after shutdown.
    """


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation warning for retired repro entry points.

    A distinct subclass so the test suite (and CI) can turn *our* shims
    into hard errors — ``-W error::repro.errors.ReproDeprecationWarning``
    — without tripping on unrelated third-party deprecations.
    """
