"""``python -m repro`` entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into e.g. `head`; exiting quietly is the Unix way.
        sys.exit(0)
