"""Content-addressed on-disk artifact cache for expensive computations.

The evaluation pipeline's two dominant costs — Baum-Welch training and the
static-analysis pipeline — are pure functions of (program spec, experiment
configuration, training configuration, cluster policy, seed).  The
:class:`ArtifactCache` keys artifacts by a stable hash of exactly those
inputs, so a re-run with unchanged inputs loads the trained
:class:`~repro.hmm.model.HiddenMarkovModel` (via
:mod:`repro.hmm.serialize`) or the pickled
:class:`~repro.analysis.pipeline.StaticAnalysis` instead of recomputing.

Cache correctness properties (exercised by ``tests/test_runtime.py``):

* **round-trip fidelity** — a cached model scores segments bit-identically
  to the freshly trained one (``.npz`` stores exact float64);
* **key sensitivity** — any change to a keyed input (seed, config field,
  cluster policy, training data) produces a different key, hence a miss;
* **corruption recovery** — an unreadable entry is treated as a miss, the
  bad file is removed, and the caller recomputes; nothing crashes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .. import telemetry
from ..hmm.model import HiddenMarkovModel
from ..hmm.serialize import load_model, save_model
from ..program.program import Program

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "derive_seed",
    "program_fingerprint",
    "stable_hash",
]


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Dataclasses carry their class name so two config types with identical
    fields still hash differently; dict ordering is normalized by
    ``json.dumps(sort_keys=True)`` downstream.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips float64 exactly; avoids json's locale quirks.
        return f"f:{value!r}"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **body}
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": value.dtype.str,
            "shape": list(value.shape),
            "sha256": hashlib.sha256(np.ascontiguousarray(value)).hexdigest(),
        }
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def stable_hash(value: Any) -> str:
    """A stable content hash of nested configs/primitives/arrays.

    Stable across processes and Python versions (no reliance on ``hash()``
    or pickle), so cache keys survive interpreter restarts.
    """
    payload = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def derive_seed(master: int, *components: Any) -> int:
    """Derive an independent child seed from a master seed and labels.

    Workers must never share RNG state: each parallel task derives its own
    seed from the master seed plus stable task labels, so results are
    bit-identical regardless of execution order or process boundaries.
    """
    digest = stable_hash((master, components))
    return int(digest[:12], 16)


def program_fingerprint(program: Program) -> str:
    """A content fingerprint of a program's structure.

    Covers the inputs static analysis consumes: function names, block
    topology, call sites, and metadata.  Cheap (no trace data) but
    sensitive to any CFG edit.
    """
    functions = []
    for name in sorted(program.functions):
        cfg = program.functions[name]
        blocks = []
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            call = (
                (block.call.name, block.call.kind.value)
                if block.call is not None
                else None
            )
            blocks.append((block_id, sorted(cfg.successors(block_id)), call))
        functions.append((name, cfg.entry, blocks))
    return stable_hash(
        {
            "name": program.name,
            "metadata": {str(k): str(v) for k, v in program.metadata.items()},
            "functions": functions,
        }
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction/corruption counters, surfaced in results.

    Parallel workers hold their own (process-local) cache handle; their
    deltas are merged back into the coordinating process's stats via
    :meth:`merge`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0
    writes: int = 0

    def count(self, event: str, amount: int = 1) -> None:
        """Bump one counter, mirroring it into the telemetry registry (as
        ``cache.<event>``) when telemetry is enabled."""
        setattr(self, event, getattr(self, event) + amount)
        telemetry.counter_add(f"cache.{event}", amount)

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.corrupt += other.corrupt
        self.writes += other.writes

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }


@dataclass
class ArtifactCache:
    """Content-addressed cache of trained models and analysis results.

    Attributes:
        root: cache directory (created on first write).
        max_entries: optional LRU bound on stored artifacts; the oldest
            entries (by mtime) are evicted once the bound is exceeded.
        stats: process-local counters (see :class:`CacheStats`).
    """

    root: Path
    max_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys ----------------------------------------------------------
    def key(self, **parts: Any) -> str:
        """Build a cache key from named keyed inputs."""
        return stable_hash(parts)

    # -- trained HMMs (.npz via repro.hmm.serialize) -------------------
    def get_model(self, key: str) -> HiddenMarkovModel | None:
        """Load a cached model, or ``None`` on miss/corruption."""
        path = self._model_path(key)
        if not path.exists():
            self.stats.count("misses")
            return None
        try:
            model = load_model(path)
            model.validate()
        except Exception:
            # Corrupted entry: drop it and recompute (never crash).
            self.stats.count("corrupt")
            self.stats.count("misses")
            path.unlink(missing_ok=True)
            return None
        path.touch()  # refresh LRU recency
        self.stats.count("hits")
        return model

    def put_model(self, key: str, model: HiddenMarkovModel) -> None:
        self._write(self._model_path(key), lambda p: save_model(model, p))

    # -- arbitrary artifacts (pickle) ----------------------------------
    def get_object(self, key: str) -> Any | None:
        """Load a cached pickled artifact, or ``None`` on miss/corruption."""
        path = self._object_path(key)
        if not path.exists():
            self.stats.count("misses")
            return None
        try:
            with path.open("rb") as handle:
                artifact = pickle.load(handle)
        except Exception:
            self.stats.count("corrupt")
            self.stats.count("misses")
            path.unlink(missing_ok=True)
            return None
        path.touch()
        self.stats.count("hits")
        return artifact

    def put_object(self, key: str, artifact: Any) -> None:
        def writer(path: Path) -> None:
            with path.open("wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)

        self._write(self._object_path(key), writer)

    # -- maintenance ---------------------------------------------------
    @property
    def n_entries(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    # -- internals -----------------------------------------------------
    def _model_path(self, key: str) -> Path:
        return self.root / f"{key}.model.npz"

    def _object_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _entries(self):
        yield from self.root.glob("*.model.npz")
        yield from self.root.glob("*.pkl")

    def _write(self, path: Path, writer) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # Write-then-rename keeps concurrent readers from seeing a torn
        # file (parallel workers share the directory).
        scratch = path.with_name(path.name + f".tmp-{id(self)}")
        try:
            writer(scratch)
            written = scratch
            if not written.exists():
                # np.savez appends .npz when the suffix is missing.
                candidate = scratch.with_suffix(scratch.suffix + ".npz")
                if candidate.exists():
                    written = candidate
            written.replace(path)
        finally:
            scratch.unlink(missing_ok=True)
        self.stats.count("writes")
        self._evict()

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        entries = sorted(self._entries(), key=lambda p: p.stat().st_mtime)
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        for path in entries[:excess]:
            path.unlink(missing_ok=True)
            self.stats.count("evictions")

    # Cache handles cross process boundaries (workers get their own
    # counters and report deltas back to the coordinator).
    def __getstate__(self) -> dict[str, Any]:
        return {"root": self.root, "max_entries": self.max_entries}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self.max_entries = state["max_entries"]
        self.stats = CacheStats()
