"""Versioned model registry: named detector lineages with staged rollout.

The :class:`~repro.runtime.cache.ArtifactCache` answers "have I trained
this exact configuration before?" — a content-addressed question.  A
deployment asks a different one: "which retraining of the ``gzip-cmarkov``
detector is live right now, and what do I fall back to if it misbehaves?"
:class:`ModelRegistry` answers that: each **lineage** (a named detector
family, e.g. one per served detector) holds a totally-ordered sequence of
published :class:`ModelVersion` entries, exactly one of which may be
*active* at a time.

Lifecycle::

    registry = ModelRegistry(cache=ArtifactCache(Path(".cache")))
    v1 = registry.publish("gzip", model_a, activate=True)   # version 1, live
    v2 = registry.publish("gzip", model_b)                  # staged, not live
    registry.rollout("gzip", v2.version)                    # v2 live
    registry.rollback("gzip")                               # back to v1

Invariants (property-tested in ``tests/test_registry.py``):

* **total version order** — versions within a lineage are assigned
  monotonically (1, 2, 3, ...) under any interleaving of publishers;
* **rollback lands on a published version** — the activation history only
  ever contains versions that completed :meth:`publish`, so
  :meth:`rollback` cannot resurrect a torn or unregistered model;
* **no torn reads** — :meth:`resolve` returns a ``(ModelVersion, model)``
  pair that was published atomically; concurrent publishers never expose a
  version number without its model.

The registry is the source of truth the serving layer swaps from: the
gateway's rollout endpoint resolves a version here and warm-swaps it into
the live fleet via ``swap_detector`` (see ``docs/gateway.md``).  When a
``cache`` is given, every published model is also written through to the
content-addressed store under a key derived from ``(lineage, version,
parameter hash)``, so a registry can be rebuilt from disk after a restart.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .. import telemetry
from ..errors import ReproError
from ..hmm.model import HiddenMarkovModel
from .cache import ArtifactCache, stable_hash

__all__ = ["ModelRegistry", "ModelVersion", "RegistryError"]


class RegistryError(ReproError):
    """A registry operation that cannot be honored (unknown lineage,
    unknown version, rollback with no history, ...)."""


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published entry of a lineage.

    Attributes:
        lineage: the named detector family this version belongs to.
        version: 1-based position in the lineage's total order.
        params_hash: content hash of the model's parameter matrices +
            alphabet — two visually distinct versions with identical
            parameters share a hash (useful for "did this retrain actually
            change anything?" checks).
        created_at: publish wall-clock time (``clock()`` at publish).
        metadata: free-form, JSON-safe provenance (training config,
            corpus id, ...); never interpreted by the registry.
        cache_key: the :class:`ArtifactCache` key this version was written
            through to, or ``None`` when the registry is memory-only.
    """

    lineage: str
    version: int
    params_hash: str
    created_at: float
    metadata: Mapping[str, Any] = field(default_factory=dict)
    cache_key: str | None = None


@dataclass
class _Lineage:
    """Mutable registry state for one lineage (guarded by the registry lock)."""

    entries: dict[int, tuple[ModelVersion, HiddenMarkovModel]] = field(
        default_factory=dict
    )
    next_version: int = 1
    active: int | None = None
    #: Every activation in order (rollouts and rollbacks both append), so
    #: rollback is "undo the latest activation", not "guess a version".
    activation_history: list[int] = field(default_factory=list)


def model_params_hash(model: HiddenMarkovModel) -> str:
    """Content hash of the parameters + alphabet (registry identity)."""
    return stable_hash(
        {
            "transition": model.transition,
            "emission": model.emission,
            "initial": model.initial,
            "symbols": tuple(model.symbols),
            "state_labels": tuple(model.state_labels)
            if model.state_labels is not None
            else None,
        }
    )


class ModelRegistry:
    """Thread-safe versioned store of servable models, by lineage.

    Args:
        cache: optional write-through :class:`ArtifactCache`; published
            models are persisted under ``version_cache_key``-derived keys
            and can be reloaded by a later process.
        clock: wall-clock source for ``created_at`` (injectable for tests).
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._cache = cache
        self._clock = clock
        self._lineages: dict[str, _Lineage] = {}
        self._lock = threading.RLock()
        #: Rollout observers: ``callback(lineage, ModelVersion, model)``
        #: fires inside the registry lock after every activation change —
        #: the warm-swap seam the gateway hooks to push a new version into
        #: a live service fleet.
        self._subscribers: list[Callable[[str, ModelVersion, HiddenMarkovModel], None]] = []

    @property
    def cache(self) -> ArtifactCache | None:
        """The write-through cache, if any (the gateway resolves ``cache:``
        model sources against it)."""
        return self._cache

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        lineage: str,
        model: HiddenMarkovModel,
        metadata: Mapping[str, Any] | None = None,
        activate: bool = False,
    ) -> ModelVersion:
        """Register ``model`` as the lineage's next version (staged).

        The version number is assigned and the model stored under one lock
        hold, so no concurrent :meth:`resolve`/:meth:`describe` can observe
        the number without the model.  ``activate=True`` additionally rolls
        the fresh version out (first publish of a lineage with
        ``activate=True`` is the common bootstrap).
        """
        model.validate()
        params_hash = model_params_hash(model)
        with self._lock:
            state = self._lineages.setdefault(lineage, _Lineage())
            version = state.next_version
            state.next_version += 1
            cache_key = None
            if self._cache is not None:
                cache_key = self.version_cache_key(lineage, version, params_hash)
                self._cache.put_model(cache_key, model)
            entry = ModelVersion(
                lineage=lineage,
                version=version,
                params_hash=params_hash,
                created_at=self._clock(),
                metadata=dict(metadata or {}),
                cache_key=cache_key,
            )
            state.entries[version] = (entry, model)
            telemetry.counter_add("registry.publish")
            telemetry.gauge_set(f"registry.versions.{lineage}", version)
            if activate:
                self._activate(lineage, state, version, "rollout")
            return entry

    @staticmethod
    def version_cache_key(lineage: str, version: int, params_hash: str) -> str:
        """The write-through :class:`ArtifactCache` key for one version."""
        return stable_hash(
            {"registry_lineage": lineage, "version": version, "params": params_hash}
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lineages(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._lineages))

    def versions(self, lineage: str) -> tuple[int, ...]:
        """Published version numbers of a lineage, ascending."""
        with self._lock:
            return tuple(sorted(self._lineage(lineage).entries))

    def active_version(self, lineage: str) -> int | None:
        """The live version number, or ``None`` while nothing is rolled out."""
        with self._lock:
            return self._lineage(lineage).active

    def describe(self, lineage: str, version: int | None = None) -> ModelVersion:
        """The :class:`ModelVersion` record (active version when omitted)."""
        with self._lock:
            entry, _ = self._entry(lineage, version)
            return entry

    def resolve(
        self, lineage: str, version: int | None = None
    ) -> tuple[ModelVersion, HiddenMarkovModel]:
        """The ``(record, model)`` pair for a version (active when omitted).

        The pair is returned exactly as one ``publish`` stored it — both
        halves under the same lock hold, so a reader racing a publisher
        sees either the whole version or a :class:`RegistryError`, never a
        registered number with a missing model.
        """
        with self._lock:
            return self._entry(lineage, version)

    # ------------------------------------------------------------------
    # Rollout / rollback
    # ------------------------------------------------------------------
    def rollout(self, lineage: str, version: int) -> ModelVersion:
        """Make a previously-published version the lineage's live one."""
        with self._lock:
            state = self._lineage(lineage)
            if version not in state.entries:
                raise RegistryError(
                    f"lineage {lineage!r} has no version {version}; "
                    f"published: {sorted(state.entries)}"
                )
            return self._activate(lineage, state, version, "rollout")

    def rollback(self, lineage: str) -> ModelVersion:
        """Re-activate the version that was live before the current one.

        Pops the latest activation off the history: always lands on a
        version some earlier :meth:`rollout`/:meth:`publish(activate=True)`
        activated — i.e. on a previously-published version, never on a
        guess.  Raises when there is nothing to go back to.
        """
        with self._lock:
            state = self._lineage(lineage)
            if len(state.activation_history) < 2:
                raise RegistryError(
                    f"lineage {lineage!r} has no previous activation to "
                    "roll back to"
                )
            state.activation_history.pop()
            previous = state.activation_history.pop()
            return self._activate(lineage, state, previous, "rollback")

    def subscribe(
        self, callback: Callable[[str, ModelVersion, HiddenMarkovModel], None]
    ) -> None:
        """Observe every activation (rollout *and* rollback).

        Callbacks run synchronously inside the registry lock, so by the
        time ``rollout`` returns, the subscriber (e.g. the gateway's
        warm-swap hook) has already seen the new active version.
        """
        with self._lock:
            self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _lineage(self, lineage: str) -> _Lineage:
        state = self._lineages.get(lineage)
        if state is None:
            raise RegistryError(
                f"unknown lineage {lineage!r}; have {sorted(self._lineages)}"
            )
        return state

    def _entry(
        self, lineage: str, version: int | None
    ) -> tuple[ModelVersion, HiddenMarkovModel]:
        state = self._lineage(lineage)
        if version is None:
            if state.active is None:
                raise RegistryError(
                    f"lineage {lineage!r} has no active version "
                    "(publish(activate=True) or rollout first)"
                )
            version = state.active
        pair = state.entries.get(version)
        if pair is None:
            raise RegistryError(
                f"lineage {lineage!r} has no version {version}; "
                f"published: {sorted(state.entries)}"
            )
        return pair

    def _activate(
        self, lineage: str, state: _Lineage, version: int, action: str
    ) -> ModelVersion:
        state.active = version
        state.activation_history.append(version)
        entry, model = state.entries[version]
        telemetry.counter_add(f"registry.{action}")
        telemetry.gauge_set(f"registry.active.{lineage}", version)
        for callback in self._subscribers:
            callback(lineage, entry, model)
        return entry
