"""Process-pool fan-out with a deterministic serial fallback.

The evaluation pipeline decomposes into independent cells — (program,
model, fold) — whose inputs are fully determined by configuration and
seed.  :class:`ParallelExecutor` runs such cells across worker processes
and guarantees **bit-identical results to a serial run**:

* results return in submission order, never completion order;
* tasks carry every seed they need explicitly (see
  :func:`repro.runtime.cache.derive_seed`) — no global RNG is shared, so
  scheduling cannot perturb numbers;
* at ``jobs=1`` (the default) no pool is created at all: tasks run in the
  calling process, which keeps tracebacks simple and is the reference
  behaviour the parallel path must match.

Tasks must be module-level callables with picklable arguments.  When a
task or argument cannot be pickled the executor degrades to the serial
path rather than crashing — parallelism is an optimisation, never a
correctness requirement.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .. import telemetry
from ..errors import EvaluationError

__all__ = ["ParallelExecutor", "clamp_jobs", "default_jobs"]

T = TypeVar("T")


def clamp_jobs(jobs: int, *, source: str = "--jobs") -> int:
    """Clamp a requested worker count to the CPUs actually available.

    Workers beyond ``os.cpu_count()`` only time-slice the same cores, and
    the fork/IPC overhead makes the "parallel" run *slower* than serial —
    an oversubscription artifact that reads as a parallelism regression in
    benchmarks.  Entry points that accept a request (``--jobs``,
    ``REPRO_JOBS``) clamp through here; constructing
    :class:`ParallelExecutor` directly stays unclamped, so tests and
    callers that deliberately oversubscribe still can.

    Emits a one-line :class:`RuntimeWarning` and bumps the
    ``runtime.jobs.clamped`` counter when the request is reduced.
    """
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        warnings.warn(
            f"{source}={jobs} exceeds the {cpus} available CPU(s); clamping "
            f"to {cpus} (oversubscribed workers time-slice one core and run "
            "slower than serial)",
            RuntimeWarning,
            stacklevel=2,
        )
        telemetry.counter_add("runtime.jobs.clamped")
        return cpus
    return jobs


def default_jobs() -> int:
    """Job count from ``REPRO_JOBS`` (default 1: deterministic serial),
    clamped to the available CPUs."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    if not value:
        return 1
    return clamp_jobs(max(1, int(value)), source="REPRO_JOBS")


def _call(task: tuple[Callable[..., T], tuple]) -> T:
    function, args = task
    return function(*args)


def _call_traced(task: tuple[Callable[..., T], tuple]) -> tuple[T, dict]:
    """Run one task in a worker with telemetry capture.

    The worker records into a fresh registry (forked workers inherit the
    coordinator's counts, which must not be double-reported), wraps the
    task in an ``executor.task`` span, and ships the snapshot *delta* back
    alongside the result for the coordinator to merge in submission order.
    """
    function, args = task
    telemetry._begin_worker_capture()
    with telemetry.span("executor.task", function=function.__name__):
        result = function(*args)
    return result, telemetry.snapshot()


@dataclass(frozen=True)
class ParallelExecutor:
    """Ordered fan-out of independent tasks over worker processes.

    Attributes:
        jobs: worker-process count; ``1`` means run serially in-process.
        chunksize: tasks handed to a worker per dispatch (keep at 1 for
            coarse tasks like training runs).
    """

    jobs: int = 1
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise EvaluationError("jobs must be >= 1")
        if self.chunksize < 1:
            raise EvaluationError("chunksize must be >= 1")

    @property
    def is_parallel(self) -> bool:
        return self.jobs > 1

    def map(self, function: Callable[..., T], items: Iterable[Any]) -> list[T]:
        """Apply ``function`` to each item; results in input order."""
        return self.starmap(function, [(item,) for item in items])

    def starmap(
        self, function: Callable[..., T], argument_tuples: Sequence[tuple]
    ) -> list[T]:
        """Apply ``function`` to each argument tuple; results in input order."""
        tasks = [(function, tuple(args)) for args in argument_tuples]
        if not tasks:
            return []
        traced = telemetry.enabled()
        if traced:
            telemetry.counter_add("executor.batches")
            telemetry.counter_add("executor.tasks", len(tasks))
            telemetry.gauge_set("executor.jobs", self.jobs)
        if self.is_parallel and len(tasks) > 1 and _picklable(tasks):
            # fork is markedly cheaper than spawn and available on the
            # platforms the suite targets; fall back where it is not.
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            context = multiprocessing.get_context(method)
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                if not traced:
                    return list(pool.map(_call, tasks, chunksize=self.chunksize))
                # Workers capture per-task telemetry deltas; merging them in
                # submission order makes the coordinator's registry match a
                # serial run's (see tests/test_telemetry.py::TestJobsParity).
                pairs = list(pool.map(_call_traced, tasks, chunksize=self.chunksize))
                for _, delta in pairs:
                    telemetry.merge_snapshot(delta)
                return [result for result, _ in pairs]
        if not traced:
            return [function(*args) for _, args in tasks]
        results = []
        for task_function, args in tasks:
            with telemetry.span("executor.task", function=task_function.__name__):
                results.append(task_function(*args))
        return results


def _picklable(tasks: list[tuple[Callable, tuple]]) -> bool:
    try:
        pickle.dumps(tasks)
    except Exception:
        return False
    return True
