"""Resumable measurement grids: one spec, any cell function.

A *grid* is the cartesian product of named axes — (program × model ×
attack × severity), (program × model), ... — where every cell is a pure
function of (spec configuration, cell point, derived seed).  That purity
buys three properties the evaluation layer keeps re-implementing, now in
one place:

* **fan-out** — cells are independent, so the whole grid runs through a
  :class:`~repro.runtime.executor.ParallelExecutor` at once, bit-identical
  to a serial run (each cell derives its own seed; no shared RNG);
* **resume** — each cell's result is persisted to an
  :class:`~repro.runtime.cache.ArtifactCache` under a content hash of its
  exact inputs *by the worker that computed it*, write-then-rename atomic.
  A run killed mid-grid (``SIGKILL`` included) resumes from the completed
  cells and recomputes only the missing ones; because cells are pure, the
  resumed results are bit-identical to an uninterrupted run;
* **one surface** — :func:`repro.api.run_grid` takes any
  :class:`GridSpec`; the accuracy grid
  (:func:`repro.eval.runners.accuracy_grid`) and the adversarial
  robustness grid (:func:`repro.robustness.robustness_grid`) are two
  instances of the same machinery.

Cell functions must be **module-level callables** (they cross process
boundaries) with the signature ``cell(point, config, seed, cache)`` where
``point`` is a dict of axis values, ``config`` is the spec's opaque config
object, ``seed`` is the per-cell derived seed, and ``cache`` is the
artifact cache handle (or ``None``).  The return value must pickle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from .. import telemetry
from ..errors import EvaluationError
from .cache import ArtifactCache, derive_seed, stable_hash
from .executor import ParallelExecutor

__all__ = ["GridAxis", "GridResult", "GridSpec", "run_grid"]


@dataclass(frozen=True)
class GridAxis:
    """One named dimension of a grid (e.g. ``program``, ``severity``)."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.name:
            raise EvaluationError("grid axis needs a name")
        if not self.values:
            raise EvaluationError(f"grid axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise EvaluationError(f"grid axis {self.name!r} repeats values")


@dataclass(frozen=True)
class GridSpec:
    """A complete, picklable description of one measurement grid.

    Attributes:
        name: grid family name; part of every cell's cache key, so two
            different grids never collide in a shared cache.
        axes: the grid dimensions, in iteration order (the last axis
            varies fastest).
        cell: module-level callable ``(point, config, seed, cache)`` that
            computes one cell.  Must be picklable by reference and
            deterministic in its arguments — resume correctness depends
            on it.
        config: opaque per-grid configuration handed to every cell;
            hashed into the cache key, so a config change invalidates
            cached cells.
        seed: master seed; each cell derives an independent child seed
            from it and its point.
        version: artifact format version; bump when the cell's *output*
            shape changes so stale cached cells are not resumed into a
            new-format run.
    """

    name: str
    axes: tuple[GridAxis, ...]
    cell: Callable[[Mapping[str, Any], Any, int, ArtifactCache | None], Any]
    config: Any = None
    seed: int = 0
    version: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise EvaluationError("grid spec needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise EvaluationError(f"duplicate axis names in {names}")

    @property
    def n_cells(self) -> int:
        product = 1
        for axis in self.axes:
            product *= len(axis.values)
        return product

    def points(self) -> list[dict[str, Any]]:
        """Every cell point in deterministic order (last axis fastest)."""
        return [
            dict(zip([axis.name for axis in self.axes], combo))
            for combo in itertools.product(*(axis.values for axis in self.axes))
        ]

    def cell_key(self, point: Mapping[str, Any]) -> str:
        """Content hash of everything one cell's result depends on."""
        return stable_hash(
            {
                "artifact": "grid_cell",
                "grid": self.name,
                "version": self.version,
                "seed": self.seed,
                "config": self.config,
                "point": dict(point),
            }
        )

    def cell_seed(self, point: Mapping[str, Any]) -> int:
        """The cell's independent derived seed (see :func:`derive_seed`)."""
        return derive_seed(self.seed, self.name, sorted(point.items()))


@dataclass
class GridResult:
    """All cell results of one grid run, resume bookkeeping included.

    ``cells`` aligns with ``points`` (the spec's deterministic order), so
    ``zip(result.points, result.cells)`` walks the grid regardless of how
    many cells were resumed versus computed.
    """

    spec: GridSpec
    points: list[dict[str, Any]]
    cells: list[Any]
    resumed: int = 0
    computed: int = 0
    elapsed_s: float = 0.0
    resumed_keys: tuple[str, ...] = field(default_factory=tuple, repr=False)

    def __iter__(self) -> Iterator[tuple[dict[str, Any], Any]]:
        return iter(zip(self.points, self.cells))

    def cell(self, **coords: Any) -> Any:
        """The result at one exact point (every axis named)."""
        for point, cell in zip(self.points, self.cells):
            if point == coords:
                return cell
        raise EvaluationError(f"no grid cell at {coords}")

    def select(self, **coords: Any) -> list[tuple[dict[str, Any], Any]]:
        """All (point, cell) pairs matching a partial point."""
        return [
            (point, cell)
            for point, cell in zip(self.points, self.cells)
            if all(point.get(k) == v for k, v in coords.items())
        ]


def _run_cell_task(
    spec: GridSpec,
    point: dict[str, Any],
    key: str,
    cache: ArtifactCache | None,
) -> Any:
    """Compute one cell and persist it immediately (worker-side).

    Persisting from the worker — not the coordinator — is what makes a
    ``SIGKILL`` mid-grid resumable: every cell that finished before the
    kill is already on disk under its content key (the cache's
    write-then-rename keeps concurrent writers safe), so the resumed run
    recomputes only genuinely unfinished cells.
    """
    with telemetry.span("grid.cell", grid=spec.name):
        result = spec.cell(point, spec.config, spec.cell_seed(point), cache)
    if cache is not None:
        cache.put_object(key, result)
    telemetry.counter_add("grid.cells.computed")
    return result


def run_grid(
    spec: GridSpec,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
    resume: bool = True,
) -> GridResult:
    """Run (or resume) every cell of ``spec``; results in point order.

    Args:
        spec: the grid description (axes, cell function, config, seed).
        executor: fan-out width; default serial.  Results are
            bit-identical at any job count.
        cache: artifact cache for per-cell persistence.  Without one the
            grid still runs, but nothing is resumable.
        resume: when ``True`` (default), cells whose content key is
            already cached are loaded instead of recomputed.  ``False``
            recomputes everything (still writing results through, so a
            later resume sees fresh artifacts).

    Returns:
        A :class:`GridResult`; ``resumed``/``computed`` report how much
        work the cache saved.
    """
    import time

    executor = executor or ParallelExecutor(jobs=1)
    points = spec.points()
    keys = [spec.cell_key(point) for point in points]
    started = time.perf_counter()

    cells: list[Any] = [None] * len(points)
    pending: list[int] = []
    resumed_keys: list[str] = []
    with telemetry.span("grid.run", grid=spec.name):
        telemetry.counter_add("grid.cells", len(points))
        if cache is not None and resume:
            for index, key in enumerate(keys):
                cached = cache.get_object(key)
                if cached is not None:
                    cells[index] = cached
                    resumed_keys.append(key)
                    telemetry.counter_add("grid.cells.resumed")
                else:
                    pending.append(index)
        else:
            pending = list(range(len(points)))

        if pending:
            computed = executor.starmap(
                _run_cell_task,
                [(spec, points[i], keys[i], cache) for i in pending],
            )
            for index, result in zip(pending, computed):
                cells[index] = result

    return GridResult(
        spec=spec,
        points=points,
        cells=cells,
        resumed=len(resumed_keys),
        computed=len(pending),
        elapsed_s=time.perf_counter() - started,
        resumed_keys=tuple(resumed_keys),
    )


def grid_cells_cached(
    spec: GridSpec, cache: ArtifactCache, points: Sequence[Mapping[str, Any]] | None = None
) -> int:
    """How many of the spec's cells are already resumable from ``cache``.

    Probes existence without counting cache-stats hits/misses (it peeks at
    the paths directly), so a progress probe does not skew telemetry.
    """
    if points is None:
        points = spec.points()
    return sum(
        1
        for point in points
        if cache._object_path(spec.cell_key(point)).exists()
    )
