"""Execution layer: parallel fan-out and content-addressed artifact caching.

The pipeline's experiment cells — (program, model, fold) — are pure
functions of configuration and seed.  This package exploits that twice:

* :class:`ParallelExecutor` fans independent cells out across worker
  processes, bit-identical to a serial run (``jobs=1`` is the reference
  path);
* :class:`ArtifactCache` keys trained HMMs and static-analysis results by
  a stable content hash of their inputs, so unchanged cells load from
  disk instead of recomputing;
* :class:`ModelRegistry` layers deployment lifecycle on top: named
  detector lineages with monotonically-versioned publishes, staged
  rollout/rollback, and the activation hook the serving layer warm-swaps
  from (see :mod:`repro.gateway`).

All are plumbed through :func:`repro.core.crossval.cross_validate`,
:mod:`repro.eval.runners`, :func:`repro.analysis.pipeline.analyze_program`,
the benchmark harness, and the CLI (``--jobs``, ``--cache-dir``,
``--no-cache``, ``gateway``).
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    derive_seed,
    program_fingerprint,
    stable_hash,
)
from .executor import ParallelExecutor, clamp_jobs, default_jobs
from .grid import GridAxis, GridResult, GridSpec, run_grid
from .registry import ModelRegistry, ModelVersion, RegistryError

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "GridAxis",
    "GridResult",
    "GridSpec",
    "ModelRegistry",
    "ModelVersion",
    "ParallelExecutor",
    "RegistryError",
    "clamp_jobs",
    "default_jobs",
    "derive_seed",
    "program_fingerprint",
    "run_grid",
    "stable_hash",
]
