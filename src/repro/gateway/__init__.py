"""Async HTTP gateway over the detection service + versioned model registry.

The network edge of the serving stack (see ``docs/gateway.md``):

* :class:`~repro.gateway.server.DetectionGateway` — stdlib-only asyncio
  HTTP/1.1 front end feeding the service's bounded admission queues;
* :func:`~repro.gateway.exposition.render_prometheus` — ``/metrics`` in
  Prometheus text exposition format (validated by
  ``scripts/validate_prometheus.py``).

Quick start::

    from repro.gateway import DetectionGateway, GatewayConfig

    service.start()                 # background pump
    with DetectionGateway(service, registry, GatewayConfig(port=0)) as gw:
        print(f"listening on http://127.0.0.1:{gw.port}")
        ...
"""

from .exposition import render_prometheus
from .server import (
    DetectionGateway,
    GatewayConfig,
    GatewayError,
    outcome_status,
    outcome_to_json,
)

__all__ = [
    "DetectionGateway",
    "GatewayConfig",
    "GatewayError",
    "outcome_status",
    "outcome_to_json",
    "render_prometheus",
]
