"""Async HTTP front end over the detection service + model registry.

A deliberately minimal, dependency-free gateway: handwritten HTTP/1.1 over
``asyncio.start_server`` (keep-alive, ``Content-Length`` framing, JSON
bodies) feeding the existing **bounded admission queues** of
:class:`~repro.service.service.DetectionService` /
:class:`~repro.service.sharded.ShardedDetectionService`.  The gateway adds
no queueing of its own — backpressure is the service's typed
:class:`~repro.service.outcomes.Overloaded` outcome, surfaced as HTTP 429
(admission shed) or 503 (shutdown / shard down), so a load balancer sees
the same story the in-process API tells.

Endpoints (all JSON unless noted)::

    GET    /health                                    liveness + fleet summary
    GET    /metrics                                   Prometheus text exposition
    POST   /v1/sessions                               {detector, session, mode}
    POST   /v1/sessions/{detector}/{session}/observe  {window|symbol|symbols}
    DELETE /v1/sessions/{detector}/{session}
    GET    /v1/registry                               lineages + active versions
    POST   /v1/registry/{lineage}/publish             {path|cache_key, activate?, metadata?}
    POST   /v1/registry/{lineage}/rollout             {version}
    POST   /v1/registry/{lineage}/rollback
    POST   /v1/admin/pump                             one drain round (test hook)
    POST   /v1/admin/close                            {drain?} service shutdown

**Warm-swap**: the gateway subscribes to its
:class:`~repro.runtime.registry.ModelRegistry`; every activation (rollout,
rollback, ``publish(activate=True)``) of a lineage whose name matches a
registered detector is pushed into the live service via
``service.swap_detector`` — the lane drains under the old model first (the
swap barrier), then in-flight sessions are rebound in place.  No session is
dropped or gap-marked by an upgrade; ``tests/test_gateway_e2e.py`` proves
this black-box over a sharded fleet.

Event-loop discipline: every service call (lock + pipe I/O) and every
``Ticket.result`` wait runs in ``asyncio.to_thread``, so slow drains never
stall the accept loop or other connections.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from dataclasses import dataclass

from .. import telemetry
from ..errors import ReproError, ServiceError
from ..runtime.registry import ModelRegistry, RegistryError
from ..service.fleet import rebuild_detector, resolve_model
from ..service.outcomes import (
    Absorbed,
    Failed,
    Overloaded,
    Scored,
    ShedReason,
    Streamed,
)
from ..telemetry import DEFAULT_SECONDS_BUCKETS
from .exposition import render_prometheus

__all__ = [
    "DetectionGateway",
    "GatewayConfig",
    "GatewayError",
    "outcome_status",
    "outcome_to_json",
]


class GatewayError(ReproError):
    """Gateway lifecycle misuse (double start, failed bind, ...)."""


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for one :class:`DetectionGateway`.

    Attributes:
        host: bind address.
        port: bind port; ``0`` asks the kernel for an ephemeral one (read
            it back from :attr:`DetectionGateway.port` after start — the
            test harness and CLI both do).
        result_timeout_s: how long ``observe`` waits for a ticket before
            answering 503; under a running pump this bounds a stuck drain,
            it is not a latency budget.
        max_body_bytes: request bodies above this answer 413.
        call_kind: trace alphabet for detectors rebuilt from registry
            activations (matches the fleet's training, default syscall).
    """

    host: str = "127.0.0.1"
    port: int = 0
    result_timeout_s: float = 30.0
    max_body_bytes: int = 1 << 20
    call_kind: str = "syscall"


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HTTPError(Exception):
    """Raised by handlers to short-circuit into an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def outcome_status(outcome) -> int:
    """The HTTP status one service outcome maps to.

    ``Overloaded`` splits by reason: admission sheds (queue full, shed
    oldest, deadline) are the client's 429 — retry with backoff — while a
    shutdown shed is the deployment's 503.  ``Failed`` is 500: the request
    was accepted but scoring raised.
    """
    if isinstance(outcome, Overloaded):
        return 503 if outcome.reason is ShedReason.SHUTDOWN else 429
    if isinstance(outcome, Failed):
        return 500
    return 200


def outcome_to_json(outcome) -> dict:
    """A JSON-safe dict for one typed outcome (tagged by ``kind``).

    Floats pass through :func:`json.dumps` via ``repr`` and round-trip
    bit-exactly — the e2e suite leans on this to assert pre-swap scores
    are *identical* to the old model's, not merely close.
    """
    if isinstance(outcome, Scored):
        return {
            "kind": "scored",
            "detector": outcome.detector,
            "session": outcome.session,
            "score": outcome.score,
            "batch_size": outcome.batch_size,
            "queued_s": outcome.queued_s,
            "anomalous": outcome.anomalous,
            "gap": outcome.gap,
            "alert": dataclasses.asdict(outcome.alert)
            if outcome.alert is not None
            else None,
        }
    if isinstance(outcome, Streamed):
        return {
            "kind": "streamed",
            "detector": outcome.detector,
            "session": outcome.session,
            "surprise": outcome.surprise,
            "windowed_score": outcome.windowed_score,
            "batch_size": outcome.batch_size,
            "queued_s": outcome.queued_s,
            "anomalous": outcome.anomalous,
            "gap": outcome.gap,
        }
    if isinstance(outcome, Absorbed):
        return {
            "kind": "absorbed",
            "detector": outcome.detector,
            "session": outcome.session,
            "queued_s": outcome.queued_s,
        }
    if isinstance(outcome, Overloaded):
        return {
            "kind": "overloaded",
            "detector": outcome.detector,
            "session": outcome.session,
            "reason": outcome.reason.value,
            "depth": outcome.depth,
            "queued_s": outcome.queued_s,
        }
    if isinstance(outcome, Failed):
        return {
            "kind": "failed",
            "detector": outcome.detector,
            "session": outcome.session,
            "error": outcome.error,
            "queued_s": outcome.queued_s,
        }
    raise TypeError(f"not a service outcome: {type(outcome).__name__}")


def _version_to_json(entry, active: int | None) -> dict:
    return {
        "lineage": entry.lineage,
        "version": entry.version,
        "params_hash": entry.params_hash,
        "created_at": entry.created_at,
        "metadata": dict(entry.metadata),
        "cache_key": entry.cache_key,
        "active": entry.version == active,
    }


def _service_error_status(exc: ServiceError) -> int:
    text = str(exc)
    if "closed" in text or "shard" in text and "died" in text:
        return 503
    if text.startswith("no detector") or "is not open" in text:
        return 404
    return 400


class DetectionGateway:
    """One HTTP server bound to one service + one registry.

    The server runs its asyncio loop in a dedicated daemon thread
    (:meth:`start` / :meth:`stop`), so the same object serves both the CLI
    (start, print address, sleep) and in-process tests.  The service's own
    background pump (``service.start()``) is the caller's to manage — the
    CLI starts it; the e2e 429 fixture deliberately does not.
    """

    def __init__(
        self,
        service,
        registry: ModelRegistry | None = None,
        config: GatewayConfig | None = None,
    ) -> None:
        self.service = service
        self.registry = registry if registry is not None else ModelRegistry()
        self.config = config or GatewayConfig()
        self.port: int | None = None
        self._t0 = time.monotonic()
        self._inflight = 0
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.registry.subscribe(self._on_activation)

    # ------------------------------------------------------------------
    # Warm-swap seam
    # ------------------------------------------------------------------
    def _on_activation(self, lineage: str, entry, model) -> None:
        """Registry subscriber: push every activation into the live fleet.

        Lineage names double as detector names; an activation for a
        lineage the service does not serve is staged only (it becomes
        servable the moment a detector with that name registers).
        """
        if lineage not in self.service.detectors:
            return
        detector = rebuild_detector(
            model, kind=self.config.call_kind, name=lineage
        )
        self.service.swap_detector(lineage, detector)
        telemetry.counter_add("gateway.swaps")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind and serve in a background thread; returns once listening
        (``self.port`` is then the real bound port)."""
        if self._thread is not None:
            raise GatewayError("gateway already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="gateway", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise GatewayError("gateway did not come up within 15s")
        if self._startup_error is not None:
            raise GatewayError(
                f"gateway failed to bind {self.config.host}:{self.config.port}: "
                f"{self._startup_error}"
            )

    def stop(self) -> None:
        """Stop accepting, close the loop, join the thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        thread.join(timeout=15.0)
        self._thread = None

    def __enter__(self) -> "DetectionGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._shutdown.wait()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break  # client went away between requests
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 431, {"error": "headers too large"}, False
                    )
                    break
                try:
                    method, path, version, headers = self._parse_head(head)
                except ValueError as exc:
                    await self._respond(writer, 400, {"error": str(exc)}, False)
                    break
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"}, False
                    )
                    break
                if length > self.config.max_body_bytes:
                    # Drain the declared body (bounded) before answering:
                    # closing with unread bytes in flight RSTs the socket
                    # and the client dies on send() without ever seeing
                    # the 413.  Absurd declarations just get the close.
                    remaining = length
                    if length <= 4 * self.config.max_body_bytes:
                        while remaining:
                            chunk = await reader.read(min(65536, remaining))
                            if not chunk:
                                break
                            remaining -= len(chunk)
                    await self._respond(
                        writer,
                        413,
                        {"error": f"body over {self.config.max_body_bytes} bytes"},
                        False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                status, payload, raw = await self._serve(method, path, body)
                await self._respond(writer, status, payload, keep_alive, raw)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels live connection tasks; finishing
            # normally here keeps asyncio.run's teardown quiet (the
            # connection is closed below either way).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Teardown can cancel the wait itself; the transport is
                # already closing, so swallowing keeps shutdown quiet.
                pass

    @staticmethod
    def _parse_head(head: bytes):
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ValueError("undecodable request head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line {lines[0]!r}")
        method, target, version = parts
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise ValueError(f"unsupported HTTP version {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, version, headers

    async def _respond(
        self, writer, status: int, payload, keep_alive: bool, raw: bytes | None = None
    ) -> None:
        if raw is not None:
            body = raw
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _serve(self, method: str, target: str, body: bytes):
        """Dispatch one request; returns ``(status, payload, raw_bytes)``."""
        started = time.monotonic()
        self._inflight += 1
        telemetry.counter_add("gateway.requests")
        telemetry.gauge_set("gateway.inflight", self._inflight)
        raw: bytes | None = None
        try:
            status, payload, raw = await self._route(method, target, body)
        except _HTTPError as exc:
            status, payload = exc.status, {"error": exc.message}
        except RegistryError as exc:
            status, payload = 404, {"error": str(exc)}
        except ServiceError as exc:
            status, payload = _service_error_status(exc), {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            self._inflight -= 1
            telemetry.gauge_set("gateway.inflight", self._inflight)
        telemetry.counter_add(f"gateway.responses.{status // 100}xx")
        telemetry.observe(
            "gateway.latency_s",
            time.monotonic() - started,
            DEFAULT_SECONDS_BUCKETS,
        )
        return status, payload, raw

    async def _route(self, method: str, target: str, body: bytes):
        path = target.split("?", 1)[0]
        parts = tuple(p for p in path.split("/") if p)

        if parts == ("health",):
            self._require(method, "GET")
            return 200, await asyncio.to_thread(self._health), None
        if parts == ("metrics",):
            self._require(method, "GET")
            text = await asyncio.to_thread(self._metrics_text)
            return 200, None, text.encode("utf-8")
        if parts == ("v1", "sessions"):
            self._require(method, "POST")
            return await self._open_session(self._json(body))
        if len(parts) == 5 and parts[:2] == ("v1", "sessions") and parts[4] == "observe":
            self._require(method, "POST")
            return await self._observe(parts[2], parts[3], self._json(body))
        if len(parts) == 4 and parts[:2] == ("v1", "sessions"):
            self._require(method, "DELETE")
            return await self._close_session(parts[2], parts[3])
        if parts == ("v1", "registry"):
            self._require(method, "GET")
            return 200, await asyncio.to_thread(self._registry_index), None
        if len(parts) == 4 and parts[:2] == ("v1", "registry"):
            self._require(method, "POST")
            lineage, action = parts[2], parts[3]
            if action == "publish":
                return await self._publish(lineage, self._json(body))
            if action == "rollout":
                return await self._rollout(lineage, self._json(body))
            if action == "rollback":
                return await self._rollback(lineage)
            raise _HTTPError(404, f"unknown registry action {action!r}")
        if parts == ("v1", "admin", "pump"):
            self._require(method, "POST")
            resolved = await asyncio.to_thread(self.service.pump)
            return 200, {"resolved": resolved}, None
        if parts == ("v1", "admin", "close"):
            self._require(method, "POST")
            payload = self._json(body) if body else {}
            drain = bool(payload.get("drain", True))
            handled = await asyncio.to_thread(self.service.close, drain)
            return 200, {"handled": handled, "drain": drain}, None
        raise _HTTPError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"use {expected}, not {method}")

    @staticmethod
    def _json(body: bytes) -> dict:
        if not body:
            raise _HTTPError(400, "a JSON body is required")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "the JSON body must be an object")
        return payload

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        info = {
            "status": "ok",
            "detectors": sorted(self.service.detectors),
            "lineages": list(self.registry.lineages()),
            "uptime_s": time.monotonic() - self._t0,
        }
        try:
            info["pending"] = self.service.pending
        except ServiceError:
            info["status"] = "closed"
        shards = getattr(self.service, "shards", None)
        if isinstance(shards, int):
            info["shards"] = shards
            info["live_shards"] = self.service.live_shards
        return info

    def _metrics_text(self) -> str:
        sync = getattr(self.service, "sync_telemetry", None)
        if sync is not None:
            try:
                sync()
            except ServiceError:
                pass  # closed service: render what the parent already holds
        snap = telemetry.snapshot() if telemetry.enabled() else None
        try:
            stats = self.service.stats.as_dict()
        except ServiceError:  # pragma: no cover - stats never raises today
            stats = {}
        extra = {
            "gateway.uptime_seconds": time.monotonic() - self._t0,
            "gateway.inflight_requests": self._inflight,
        }
        return render_prometheus(snap, stats, extra)

    async def _open_session(self, payload: dict):
        detector = payload.get("detector")
        session_id = payload.get("session")
        mode = payload.get("mode", "window")
        if not isinstance(detector, str) or not isinstance(session_id, str):
            raise _HTTPError(400, "detector and session must be strings")
        if mode not in ("window", "monitor", "stream"):
            raise _HTTPError(400, f"unknown mode {mode!r}")
        session = await asyncio.to_thread(
            self.service.open_session, detector, session_id, mode
        )
        return (
            200,
            {
                "detector": detector,
                "session": session_id,
                "mode": session.mode.value,
            },
            None,
        )

    async def _close_session(self, detector: str, session_id: str):
        existed = await asyncio.to_thread(
            self.service.close_session, detector, session_id
        )
        return 200, {"detector": detector, "session": session_id, "closed": existed}, None

    async def _observe(self, detector: str, session_id: str, payload: dict):
        window = payload.get("window")
        symbol = payload.get("symbol")
        symbols = payload.get("symbols")
        given = [x for x in (window, symbol, symbols) if x is not None]
        if len(given) != 1:
            raise _HTTPError(
                400, "give exactly one of window, symbol, or symbols"
            )
        if window is not None:
            if not isinstance(window, list) or not all(
                isinstance(s, str) for s in window
            ):
                raise _HTTPError(400, "window must be a list of strings")
            tickets = [
                await asyncio.to_thread(
                    self.service.submit, detector, session_id, window=window
                )
            ]
        elif symbol is not None:
            if not isinstance(symbol, str):
                raise _HTTPError(400, "symbol must be a string")
            tickets = [
                await asyncio.to_thread(
                    self.service.submit, detector, session_id, symbol=symbol
                )
            ]
        else:
            if not isinstance(symbols, list) or not all(
                isinstance(s, str) for s in symbols
            ):
                raise _HTTPError(400, "symbols must be a list of strings")
            if not symbols:
                raise _HTTPError(400, "symbols must not be empty")
            tickets = []
            for item in symbols:
                tickets.append(
                    await asyncio.to_thread(
                        self.service.submit, detector, session_id, symbol=item
                    )
                )
        outcomes = []
        for ticket in tickets:
            try:
                outcome = await asyncio.to_thread(
                    ticket.result, self.config.result_timeout_s
                )
            except TimeoutError:
                raise _HTTPError(
                    503,
                    f"no outcome within {self.config.result_timeout_s}s "
                    "(is the pump running?)",
                ) from None
            outcomes.append(outcome)
        status = max(outcome_status(o) for o in outcomes)
        if symbols is not None:
            return status, {"results": [outcome_to_json(o) for o in outcomes]}, None
        return status, outcome_to_json(outcomes[0]), None

    def _registry_index(self) -> dict:
        lineages = {}
        for lineage in self.registry.lineages():
            active = self.registry.active_version(lineage)
            lineages[lineage] = {
                "versions": list(self.registry.versions(lineage)),
                "active": active,
            }
        return {"lineages": lineages, "detectors": sorted(self.service.detectors)}

    async def _publish(self, lineage: str, payload: dict):
        path = payload.get("path")
        cache_key = payload.get("cache_key")
        if (path is None) == (cache_key is None):
            raise _HTTPError(400, "publish needs exactly one of path or cache_key")
        if path is not None and not isinstance(path, str):
            raise _HTTPError(400, "path must be a server-side string path")
        if cache_key is not None and not isinstance(cache_key, str):
            raise _HTTPError(400, "cache_key must be a string")
        source = path if path is not None else f"cache:{cache_key}"
        activate = bool(payload.get("activate", False))
        metadata = payload.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise _HTTPError(400, "metadata must be an object")

        def publish():
            model = resolve_model(source, cache=self.registry.cache)
            entry = self.registry.publish(
                lineage, model, metadata=metadata, activate=activate
            )
            return entry

        entry = await asyncio.to_thread(publish)
        active = self.registry.active_version(lineage)
        return 200, _version_to_json(entry, active), None

    async def _rollout(self, lineage: str, payload: dict):
        version = payload.get("version")
        if not isinstance(version, int):
            raise _HTTPError(400, "rollout needs an integer version")
        entry = await asyncio.to_thread(self.registry.rollout, lineage, version)
        return 200, _version_to_json(entry, entry.version), None

    async def _rollback(self, lineage: str):
        entry = await asyncio.to_thread(self.registry.rollback, lineage)
        return 200, _version_to_json(entry, entry.version), None
