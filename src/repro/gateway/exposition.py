"""Prometheus text exposition of the telemetry registry + service stats.

The gateway's ``/metrics`` endpoint renders whatever the in-process
telemetry snapshot holds — counters, gauges, fixed-bucket histograms, span
aggregates — plus the service's :class:`~repro.service.service.ServiceStats`
into the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4), with no client-library dependency:

* dotted repro metric names flatten to legal Prometheus names under the
  ``repro_`` namespace (``service.shed.queue_full`` →
  ``repro_service_shed_queue_full_total``);
* per-entity suffixes become labels (``service.queue.depth.gzip`` →
  ``repro_service_queue_depth{detector="gzip"}``), so a fleet of detectors
  is one metric family, not a family per detector;
* telemetry histograms convert from per-bucket counts to Prometheus's
  cumulative ``_bucket{le=...}`` form with the mandatory ``+Inf`` bucket,
  ``_sum`` and ``_count``;
* span aggregates export as two counters (``repro_span_total``,
  ``repro_span_duration_seconds_total``) labeled by span name.

``scripts/validate_prometheus.py`` holds the line-grammar validator CI
scrapes this output through.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping

__all__ = ["render_prometheus"]

#: Dotted-prefix families whose final dotted component is an entity name,
#: exported as a label instead of being baked into the metric name.
_LABELED_PREFIXES: tuple[tuple[str, str, str], ...] = (
    ("service.queue.depth.", "repro_service_queue_depth", "detector"),
    ("registry.versions.", "repro_registry_versions", "lineage"),
    ("registry.active.", "repro_registry_active_version", "lineage"),
    ("gateway.responses.", "repro_gateway_responses_total", "status"),
)

#: ServiceStats keys that are monotone counters (exported ``_total``);
#: everything else in the stats dict exports as a gauge.
_STATS_COUNTERS = frozenset(
    {
        "submitted",
        "scored",
        "streamed",
        "absorbed",
        "failed",
        "shed_queue_full",
        "shed_oldest",
        "shed_deadline",
        "shed_shutdown",
        "shed_total",
        "batches",
        "shard_crashes",
    }
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize(raw: str) -> str:
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Family:
    """One metric family: TYPE/HELP header plus its grouped samples."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: list[tuple[str, Mapping[str, str], float]] = []
        self._seen: set[tuple] = set()

    def add(self, value: float, labels: Mapping[str, str] | None = None,
            suffix: str = "") -> None:
        """Add one sample; the first writer of a (suffix, labels) key wins.

        Service stats render before the telemetry snapshot, so when both
        carry the same counter (e.g. ``submitted`` and the
        ``service.submitted`` telemetry counter) the stats value — the
        fleet-merged, crash-aware one — is the one exposed, and the output
        never holds duplicate samples (which scrapers reject).
        """
        labels = labels or {}
        key = (suffix, tuple(sorted(labels.items())))
        if key in self._seen:
            return
        self._seen.add(key)
        self.samples.append((suffix, labels, float(value)))

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {_escape_help(self.help_text)}"
        yield f"# TYPE {self.name} {self.kind}"
        for suffix, labels, value in self.samples:
            label_str = ""
            if labels:
                inner = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in labels.items()
                )
                label_str = "{" + inner + "}"
            yield f"{self.name}{suffix}{label_str} {_format_value(value)}"


class _Exposition:
    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> _Family:
        existing = self._families.get(name)
        if existing is None:
            existing = self._families[name] = _Family(name, kind, help_text)
        return existing

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"


def _route(raw: str, default_suffix: str) -> tuple[str, dict[str, str]]:
    """Map one dotted repro metric name to (family name, labels)."""
    for prefix, family, label in _LABELED_PREFIXES:
        if raw.startswith(prefix):
            return family, {label: raw[len(prefix):]}
    name = "repro_" + _sanitize(raw)
    if default_suffix and not name.endswith(default_suffix):
        name += default_suffix
    return name, {}


def render_prometheus(
    snapshot: Mapping | None = None,
    service_stats: Mapping | None = None,
    extra_gauges: Mapping[str, float] | None = None,
) -> str:
    """Render a telemetry snapshot (+ service stats) as exposition text.

    Args:
        snapshot: a :func:`repro.telemetry.snapshot` payload (or ``None``
            for none — e.g. a deployment running with telemetry off still
            exposes its service stats).
        service_stats: a ``ServiceStats.as_dict()`` /
            ``ShardedServiceStats.as_dict()`` payload, exported under
            ``repro_service_*``.
        extra_gauges: ad-hoc point-in-time values (``repro_<name>``),
            e.g. the gateway's uptime and inflight-request count.
    """
    expo = _Exposition()
    snapshot = snapshot or {}

    # Stats first: where a stats key and a telemetry counter name the same
    # family, the merged stats value wins (see _Family.add).
    for key, value in (service_stats or {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in _STATS_COUNTERS:
            family = expo.family(
                f"repro_service_{_sanitize(key)}_total",
                "counter",
                f"service stats counter {key}",
            )
        else:
            family = expo.family(
                f"repro_service_{_sanitize(key)}",
                "gauge",
                f"service stats gauge {key}",
            )
        family.add(value)

    for raw, value in snapshot.get("counters", {}).items():
        name, labels = _route(raw, "_total")
        family = expo.family(name, "counter", f"repro counter {raw.rsplit('.', 1)[0] if labels else raw}")
        family.add(value, labels)

    for raw, payload in snapshot.get("gauges", {}).items():
        name, labels = _route(raw, "")
        family = expo.family(name, "gauge", f"repro gauge {raw.rsplit('.', 1)[0] if labels else raw}")
        family.add(payload["value"], labels)

    for raw, payload in snapshot.get("histograms", {}).items():
        name, labels = _route(raw, "")
        family = expo.family(name, "histogram", f"repro histogram {raw}")
        cumulative = 0
        for bound, count in zip(payload["boundaries"], payload["counts"]):
            cumulative += count
            family.add(
                cumulative,
                {**labels, "le": _format_value(bound)},
                suffix="_bucket",
            )
        family.add(payload["count"], {**labels, "le": "+Inf"}, suffix="_bucket")
        family.add(payload["sum"], labels, suffix="_sum")
        family.add(payload["count"], labels, suffix="_count")

    spans = snapshot.get("spans", {})
    if spans:
        count_family = expo.family(
            "repro_span_total", "counter", "completed spans by name"
        )
        wall_family = expo.family(
            "repro_span_duration_seconds_total",
            "counter",
            "cumulative span wall time by name",
        )
        for raw, payload in spans.items():
            count_family.add(payload["count"], {"span": raw})
            wall_family.add(payload["wall_s"], {"span": raw})

    for key, value in (extra_gauges or {}).items():
        family = expo.family(
            f"repro_{_sanitize(key)}", "gauge", f"gateway gauge {key}"
        )
        family.add(value)

    return expo.render()
