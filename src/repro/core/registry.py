"""Factory for the four compared models (Section V-A).

Maps the paper's model names to constructors:

* ``cmarkov``          — static init, context-sensitive, cluster-reduced;
* ``stilo``            — static init, context-insensitive;
* ``regular-basic``    — random init, context-insensitive;
* ``regular-context``  — random init, context-sensitive.
"""

from __future__ import annotations

from typing import Callable

from ..errors import EvaluationError
from ..program.calls import CallKind
from ..program.program import Program
from .detector import Detector, DetectorConfig
from .ngram import NGramDetector
from .regular import RegularDetector
from .static_models import ClusterPolicy, CMarkovDetector, StiloDetector

#: The four model names, in the paper's presentation order.
MODEL_NAMES: tuple[str, ...] = (
    "cmarkov",
    "stilo",
    "regular-basic",
    "regular-context",
)

#: Extra related-work baselines (Section VI) available beyond the paper's
#: four compared models.
EXTRA_MODEL_NAMES: tuple[str, ...] = ("ngram", "ngram-context")


def make_detector(
    model_name: str,
    program: Program,
    kind: CallKind,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> Detector:
    """Instantiate one of the four compared detectors.

    Raises:
        EvaluationError: for an unknown model name.
    """
    if model_name == "cmarkov":
        return CMarkovDetector(
            program, kind=kind, config=config, cluster_policy=cluster_policy
        )
    if model_name == "stilo":
        return StiloDetector(program, kind=kind, config=config)
    if model_name == "regular-basic":
        return RegularDetector(kind=kind, context=False, config=config)
    if model_name == "regular-context":
        return RegularDetector(kind=kind, context=True, config=config)
    if model_name == "ngram":
        return NGramDetector(kind=kind, context=False, config=config)
    if model_name == "ngram-context":
        return NGramDetector(kind=kind, context=True, config=config)
    raise EvaluationError(
        f"unknown model {model_name!r}; choose from "
        f"{MODEL_NAMES + EXTRA_MODEL_NAMES}"
    )


def detector_factory(
    model_name: str,
    program: Program,
    kind: CallKind,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> Callable[[], Detector]:
    """A zero-argument factory for cross-validation."""

    def build() -> Detector:
        return make_detector(
            model_name, program, kind, config=config, cluster_policy=cluster_policy
        )

    return build


def model_is_context_sensitive(model_name: str) -> bool:
    """Whether a model observes ``call@caller`` symbols."""
    if model_name in ("cmarkov", "regular-context", "ngram-context"):
        return True
    if model_name in ("stilo", "regular-basic", "ngram"):
        return False
    raise EvaluationError(f"unknown model {model_name!r}")
