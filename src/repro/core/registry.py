"""Factory for the four compared models (Section V-A).

Maps the paper's model names to constructors:

* ``cmarkov``          — static init, context-sensitive, cluster-reduced;
* ``stilo``            — static init, context-insensitive;
* ``regular-basic``    — random init, context-insensitive;
* ``regular-context``  — random init, context-sensitive.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

from ..errors import EvaluationError, ReproDeprecationWarning
from ..program.calls import CallKind
from ..program.program import Program
from .detector import Detector, DetectorConfig
from .ngram import NGramDetector
from .regular import RegularDetector
from .static_models import ClusterPolicy, CMarkovDetector, StiloDetector

#: The four model names, in the paper's presentation order.
MODEL_NAMES: tuple[str, ...] = (
    "cmarkov",
    "stilo",
    "regular-basic",
    "regular-context",
)

#: Extra related-work baselines (Section VI) available beyond the paper's
#: four compared models.
EXTRA_MODEL_NAMES: tuple[str, ...] = ("ngram", "ngram-context")


def build_detector(
    model_name: str,
    program: Program,
    kind: CallKind | str,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> Detector:
    """Instantiate one of the compared detectors (the canonical constructor).

    Prefer importing this through the :mod:`repro.api` facade.

    Args:
        model_name: one of :data:`MODEL_NAMES` or :data:`EXTRA_MODEL_NAMES`.
        program: the analyzed program (static-init models derive their
            initialization from its CFGs).
        kind: observation family — a :class:`~repro.program.calls.CallKind`
            or its string value (``"syscall"`` / ``"libcall"``).
        config: detector knobs; defaults to :class:`DetectorConfig`.
        cluster_policy: CMarkov-only state-reduction policy.

    Raises:
        EvaluationError: for an unknown model name.
    """
    kind = CallKind(kind)
    if model_name == "cmarkov":
        return CMarkovDetector(
            program, kind=kind, config=config, cluster_policy=cluster_policy
        )
    if model_name == "stilo":
        return StiloDetector(program, kind=kind, config=config)
    if model_name == "regular-basic":
        return RegularDetector(kind=kind, context=False, config=config)
    if model_name == "regular-context":
        return RegularDetector(kind=kind, context=True, config=config)
    if model_name == "ngram":
        return NGramDetector(kind=kind, context=False, config=config)
    if model_name == "ngram-context":
        return NGramDetector(kind=kind, context=True, config=config)
    raise EvaluationError(
        f"unknown model {model_name!r}; choose from "
        f"{MODEL_NAMES + EXTRA_MODEL_NAMES}"
    )


@dataclass(frozen=True)
class DetectorSpec:
    """A picklable zero-argument detector factory.

    Unlike a closure, a spec crosses process boundaries, so
    :func:`repro.core.crossval.cross_validate` can fan folds out through a
    :class:`repro.runtime.ParallelExecutor`, and it exposes the exact
    inputs a trained model depends on — which is what the
    :class:`repro.runtime.ArtifactCache` keys artifacts by.
    """

    model_name: str
    program: Program
    kind: CallKind
    config: DetectorConfig | None = None
    cluster_policy: ClusterPolicy | None = None

    def __call__(self) -> Detector:
        return build_detector(
            self.model_name,
            self.program,
            self.kind,
            config=self.config,
            cluster_policy=self.cluster_policy,
        )

    def cache_key_parts(self) -> dict:
        """The keyed inputs a trained model is a pure function of."""
        from ..runtime.cache import program_fingerprint

        return {
            "model": self.model_name,
            "program": program_fingerprint(self.program),
            "kind": self.kind.value,
            "detector_config": self.config,
            "cluster_policy": self.cluster_policy,
        }


def detector_spec(
    model_name: str,
    program: Program,
    kind: CallKind | str,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> DetectorSpec:
    """A picklable, content-keyable detector recipe (see :class:`DetectorSpec`).

    Cross-validation and the parallel executor consume specs rather than
    detectors so recipes can cross process boundaries and feed cache keys.
    """
    return DetectorSpec(
        model_name=model_name,
        program=program,
        kind=CallKind(kind),
        config=config,
        cluster_policy=cluster_policy,
    )


# ---------------------------------------------------------------------------
# Deprecated entry points (kept as thin shims; see repro.api)
# ---------------------------------------------------------------------------


def make_detector(
    model_name: str,
    program: Program,
    kind: CallKind,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> Detector:
    """Deprecated alias of :func:`build_detector`.

    .. deprecated:: 1.1
        Use :func:`repro.api.build_detector`.
    """
    warnings.warn(
        "make_detector() is deprecated; use repro.api.build_detector()",
        ReproDeprecationWarning,
        stacklevel=2,
    )
    return build_detector(
        model_name, program, kind, config=config, cluster_policy=cluster_policy
    )


def detector_factory(
    model_name: str,
    program: Program,
    kind: CallKind,
    config: DetectorConfig | None = None,
    cluster_policy: ClusterPolicy | None = None,
) -> Callable[[], Detector]:
    """Deprecated alias of :func:`detector_spec`.

    .. deprecated:: 1.1
        Use :func:`repro.api.detector_spec` (or construct
        :class:`DetectorSpec` directly).
    """
    warnings.warn(
        "detector_factory() is deprecated; use repro.api.detector_spec()",
        ReproDeprecationWarning,
        stacklevel=2,
    )
    return detector_spec(
        model_name, program, kind, config=config, cluster_policy=cluster_policy
    )


def model_is_context_sensitive(model_name: str) -> bool:
    """Whether a model observes ``call@caller`` symbols."""
    if model_name in ("cmarkov", "regular-context", "ngram-context"):
        return True
    if model_name in ("stilo", "regular-basic", "ngram"):
        return False
    raise EvaluationError(f"unknown model {model_name!r}")
