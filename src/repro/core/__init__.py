"""Detection core: the four compared models, metrics, and cross-validation."""

from .crossval import CrossValidationResult, FoldOutcome, cross_validate
from .detector import (
    Detector,
    DetectorConfig,
    FitResult,
    HmmDetector,
    PretrainedDetector,
)
from .drift import DriftReport, compare_models, needs_retraining
from .ensemble import EnsembleDetector, EnsembleMember
from .monitor import Alert, MonitorStats, OnlineMonitor
from .ngram import NGramDetector
from .metrics import (
    CurvePoint,
    auc_score,
    curve,
    detection_rate,
    fn_at_fp,
    rates_at_threshold,
)
from .regular import RegularDetector
from .streaming import StreamingScorer
from .registry import (
    EXTRA_MODEL_NAMES,
    MODEL_NAMES,
    DetectorSpec,
    build_detector,
    detector_factory,
    detector_spec,
    make_detector,
    model_is_context_sensitive,
)
from .static_models import ClusterPolicy, CMarkovDetector, StiloDetector
from .thresholds import margin_threshold, threshold_for_fp_budget

__all__ = [
    "EXTRA_MODEL_NAMES",
    "MODEL_NAMES",
    "HmmDetector",
    "NGramDetector",
    "Alert",
    "CMarkovDetector",
    "MonitorStats",
    "OnlineMonitor",
    "ClusterPolicy",
    "CrossValidationResult",
    "CurvePoint",
    "Detector",
    "DriftReport",
    "EnsembleDetector",
    "EnsembleMember",
    "compare_models",
    "needs_retraining",
    "DetectorConfig",
    "DetectorSpec",
    "FitResult",
    "FoldOutcome",
    "PretrainedDetector",
    "build_detector",
    "detector_spec",
    "RegularDetector",
    "StreamingScorer",
    "StiloDetector",
    "auc_score",
    "cross_validate",
    "curve",
    "detection_rate",
    "detector_factory",
    "fn_at_fp",
    "make_detector",
    "margin_threshold",
    "model_is_context_sensitive",
    "rates_at_threshold",
    "threshold_for_fp_budget",
]
