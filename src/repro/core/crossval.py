"""10-fold cross-validation of detectors (Section V-A).

"We perform 10-fold cross validation on the rest of the normal data":
each fold trains on 9/10 of the unique normal segments and scores the held
out tenth as the *normal* test set, against a fixed abnormal set.

Folds are independent — each carries its own training data and seed — so
they fan out through a :class:`repro.runtime.ParallelExecutor` with results
bit-identical to the serial path, and trained models are memoised in a
:class:`repro.runtime.ArtifactCache` keyed by the detector spec plus the
fold's exact training content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..errors import EvaluationError
from ..runtime.cache import ArtifactCache, CacheStats, stable_hash
from ..runtime.executor import ParallelExecutor
from ..tracing.segments import Segment, SegmentSet
from .detector import Detector
from .metrics import auc_score, fn_at_fp

DetectorFactory = Callable[[], Detector]


@dataclass
class FoldOutcome:
    """Scores and summary metrics for one fold."""

    normal_scores: np.ndarray
    abnormal_scores: np.ndarray
    fn_by_fp: dict[float, float]
    auc: float
    train_seconds: float
    n_states: int = 0
    from_cache: bool = False


@dataclass
class CrossValidationResult:
    """Aggregated k-fold outcome for one detector on one program."""

    detector_name: str
    folds: list[FoldOutcome] = field(default_factory=list)
    cache_stats: CacheStats | None = None

    def mean_fn_at(self, fp_target: float) -> float:
        values = [fold.fn_by_fp[fp_target] for fold in self.folds]
        return float(np.mean(values))

    @property
    def mean_auc(self) -> float:
        return float(np.mean([fold.auc for fold in self.folds]))

    @property
    def total_train_seconds(self) -> float:
        return float(sum(fold.train_seconds for fold in self.folds))

    def pooled_scores(self) -> tuple[np.ndarray, np.ndarray]:
        """All folds' normal and abnormal scores concatenated."""
        normal = np.concatenate([fold.normal_scores for fold in self.folds])
        abnormal = np.concatenate([fold.abnormal_scores for fold in self.folds])
        return normal, abnormal


def trained_model_key(
    factory: DetectorFactory, train_part: SegmentSet
) -> str | None:
    """Cache key for a model trained by ``factory`` on ``train_part``.

    Covers every input the trained parameters depend on — the detector
    spec (model, program fingerprint, configs, cluster policy, seed) plus
    the exact training content.  Returns ``None`` if the factory does not
    expose its keyed inputs (plain closures).
    """
    parts_of = getattr(factory, "cache_key_parts", None)
    if parts_of is None:
        return None
    return stable_hash(
        {
            "artifact": "fold_model",
            "factory": parts_of(),
            "train_segments": sorted(train_part.counts.items()),
        }
    )


def run_fold(
    factory: DetectorFactory,
    train_part: SegmentSet,
    test_part: SegmentSet,
    abnormal_segments: Sequence[Segment],
    fp_targets: Sequence[float],
    cache: ArtifactCache | None = None,
) -> tuple[str, FoldOutcome, CacheStats | None]:
    """Fit and score one fold (runs in a worker process when parallel).

    Returns the detector name, the fold outcome, and the cache-counter
    delta this fold produced (for the coordinator to merge when the fold
    ran in a worker process).
    """
    before = (
        CacheStats(**cache.stats.as_dict()) if cache is not None else None
    )
    detector = factory()
    cached_model = None
    key = None
    with telemetry.span("crossval.fold", detector=detector.name):
        telemetry.counter_add("crossval.folds")
        # Only HMM-backed detectors persist a standalone model artifact.
        cacheable = cache is not None and hasattr(detector, "load_pretrained")
        if cacheable:
            key = trained_model_key(factory, train_part)
            if key is not None:
                cached_model = cache.get_model(key)

        if cached_model is not None:
            detector.load_pretrained(cached_model)
            train_seconds = 0.0
            n_states = cached_model.n_states
            from_cache = True
            telemetry.counter_add("crossval.folds_from_cache")
        else:
            fit = detector.fit(train_part)
            train_seconds = fit.train_seconds
            n_states = fit.n_states
            from_cache = False
            if cacheable and key is not None:
                cache.put_model(key, detector.model)

        with telemetry.span("crossval.score"):
            normal_scores = detector.score(test_part.segments())
            abnormal_scores = detector.score(list(abnormal_segments))
    outcome = FoldOutcome(
        normal_scores=normal_scores,
        abnormal_scores=abnormal_scores,
        fn_by_fp=fn_at_fp(normal_scores, abnormal_scores, fp_targets),
        auc=auc_score(normal_scores, abnormal_scores),
        train_seconds=train_seconds,
        n_states=n_states,
        from_cache=from_cache,
    )
    delta = None
    if cache is not None and before is not None:
        after = cache.stats
        delta = CacheStats(
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
            corrupt=after.corrupt - before.corrupt,
            writes=after.writes - before.writes,
        )
    return detector.name, outcome, delta


def cross_validate(
    factory: DetectorFactory,
    normal_segments: SegmentSet,
    abnormal_segments: Sequence[Segment],
    k: int = 10,
    fp_targets: Sequence[float] = (0.0001, 0.001, 0.01, 0.05),
    seed: int = 0,
    executor: ParallelExecutor | None = None,
    cache: ArtifactCache | None = None,
) -> CrossValidationResult:
    """Run k-fold cross-validation.

    Args:
        factory: builds a fresh (unfitted) detector per fold.  A
            :class:`repro.core.registry.DetectorSpec` enables parallel
            execution (picklable) and model caching (content-keyable);
            plain closures still work but run serially and uncached.
        normal_segments: deduplicated normal segments.
        abnormal_segments: fixed abnormal test segments (Abnormal-S or
            attack traces).
        k: fold count (the paper uses 10).
        fp_targets: FP budgets at which FN is extracted.
        seed: fold-assignment seed.
        executor: fans folds out over worker processes; ``None`` (or
            ``jobs=1``) runs the reference serial path.  Results are
            bit-identical either way.
        cache: memoises each fold's trained model by (detector spec,
            training content).
    """
    if not abnormal_segments:
        raise EvaluationError("abnormal segment set is empty")
    abnormal = list(abnormal_segments)
    fp_targets = tuple(fp_targets)
    tasks = [
        (factory, train_part, test_part, abnormal, fp_targets, cache)
        for train_part, test_part in normal_segments.folds(k=k, seed=seed)
    ]
    executor = executor or ParallelExecutor(jobs=1)
    fold_results = executor.starmap(run_fold, tasks)

    result: CrossValidationResult | None = None
    merged = CacheStats() if cache is not None else None
    for detector_name, outcome, stats_delta in fold_results:
        if result is None:
            result = CrossValidationResult(detector_name=detector_name)
        result.folds.append(outcome)
        if merged is not None and stats_delta is not None:
            merged.merge(stats_delta)
    assert result is not None
    if cache is not None and merged is not None:
        result.cache_stats = merged
        if executor.is_parallel:
            # Worker processes counted against their own copies; fold the
            # deltas back into the coordinating process's cache handle.
            cache.stats.merge(merged)
    return result
