"""10-fold cross-validation of detectors (Section V-A).

"We perform 10-fold cross validation on the rest of the normal data":
each fold trains on 9/10 of the unique normal segments and scores the held
out tenth as the *normal* test set, against a fixed abnormal set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import EvaluationError
from ..tracing.segments import Segment, SegmentSet
from .detector import Detector
from .metrics import auc_score, fn_at_fp

DetectorFactory = Callable[[], Detector]


@dataclass
class FoldOutcome:
    """Scores and summary metrics for one fold."""

    normal_scores: np.ndarray
    abnormal_scores: np.ndarray
    fn_by_fp: dict[float, float]
    auc: float
    train_seconds: float
    n_states: int = 0


@dataclass
class CrossValidationResult:
    """Aggregated k-fold outcome for one detector on one program."""

    detector_name: str
    folds: list[FoldOutcome] = field(default_factory=list)

    def mean_fn_at(self, fp_target: float) -> float:
        values = [fold.fn_by_fp[fp_target] for fold in self.folds]
        return float(np.mean(values))

    @property
    def mean_auc(self) -> float:
        return float(np.mean([fold.auc for fold in self.folds]))

    @property
    def total_train_seconds(self) -> float:
        return float(sum(fold.train_seconds for fold in self.folds))

    def pooled_scores(self) -> tuple[np.ndarray, np.ndarray]:
        """All folds' normal and abnormal scores concatenated."""
        normal = np.concatenate([fold.normal_scores for fold in self.folds])
        abnormal = np.concatenate([fold.abnormal_scores for fold in self.folds])
        return normal, abnormal


def cross_validate(
    factory: DetectorFactory,
    normal_segments: SegmentSet,
    abnormal_segments: Sequence[Segment],
    k: int = 10,
    fp_targets: Sequence[float] = (0.0001, 0.001, 0.01, 0.05),
    seed: int = 0,
) -> CrossValidationResult:
    """Run k-fold cross-validation.

    Args:
        factory: builds a fresh (unfitted) detector per fold.
        normal_segments: deduplicated normal segments.
        abnormal_segments: fixed abnormal test segments (Abnormal-S or
            attack traces).
        k: fold count (the paper uses 10).
        fp_targets: FP budgets at which FN is extracted.
        seed: fold-assignment seed.
    """
    if not abnormal_segments:
        raise EvaluationError("abnormal segment set is empty")
    result: CrossValidationResult | None = None
    for train_part, test_part in normal_segments.folds(k=k, seed=seed):
        detector = factory()
        if result is None:
            result = CrossValidationResult(detector_name=detector.name)
        fit = detector.fit(train_part)
        normal_scores = detector.score(test_part.segments())
        abnormal_scores = detector.score(list(abnormal_segments))
        result.folds.append(
            FoldOutcome(
                normal_scores=normal_scores,
                abnormal_scores=abnormal_scores,
                fn_by_fp=fn_at_fp(normal_scores, abnormal_scores, fp_targets),
                auc=auc_score(normal_scores, abnormal_scores),
                train_seconds=fit.train_seconds,
                n_states=fit.n_states,
            )
        )
    assert result is not None
    return result
