"""The n-gram ("stide") baseline from the paper's related work.

"The n-gram models [1, 32, 33] construct a set of all allowable call
sequences from the execution traces of a program.  It is the simplest
flow-sensitive solution" (Section VI).  This is Forrest et al.'s sequence
time-delay embedding: training memorizes every observed window of ``n``
consecutive calls; detection slides the same window over a segment and
counts mismatches.

Unlike the HMM models the verdict is *set membership*, not likelihood, so
the per-segment "score" is the negated mismatch fraction — kept on the
shared higher-is-more-normal scale so thresholds, metrics, and the online
monitor all work unchanged.  Comparing it against CMarkov quantifies what
probabilistic reasoning adds on top of pure flow sensitivity.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import NotFittedError, TraceError
from ..hmm.baumwelch import TrainingReport
from ..program.calls import CallKind
from ..tracing.segments import Segment, SegmentSet
from .detector import Detector, DetectorConfig, FitResult

#: Forrest et al.'s classic window size.
DEFAULT_WINDOW = 6


class NGramDetector(Detector):
    """Set-membership detector over sliding n-call windows.

    Args:
        kind: syscall or libcall observations.
        context: observe ``call@caller`` symbols (an n-gram analogue of
            Regular-context) or bare names (the classic stide).
        window: n-gram window size (default 6, per the original papers).
        config: shared detector knobs (only the training cap is used).
    """

    def __init__(
        self,
        kind: CallKind,
        context: bool,
        window: int = DEFAULT_WINDOW,
        config: DetectorConfig | None = None,
    ) -> None:
        super().__init__(kind=kind, context=context, config=config)
        if window <= 0:
            raise TraceError("window must be positive")
        self.window = window
        self.name = "ngram-context" if context else "ngram"
        self._database: frozenset[tuple[str, ...]] | None = None

    # ------------------------------------------------------------------
    # Detector interface
    # ------------------------------------------------------------------
    def fit(self, normal_segments: SegmentSet) -> FitResult:
        """Memorize every n-window of the normal segments."""
        if normal_segments.n_unique == 0:
            raise TraceError(f"{self.name}: no training segments")
        if normal_segments.length < self.window:
            raise TraceError(
                f"{self.name}: window {self.window} exceeds segment "
                f"length {normal_segments.length}"
            )
        started = time.perf_counter()
        database: set[tuple[str, ...]] = set()
        for segment in normal_segments.counts:
            for start in range(len(segment) - self.window + 1):
                database.add(segment[start : start + self.window])
        self._database = frozenset(database)
        elapsed = time.perf_counter() - started
        return FitResult(
            report=TrainingReport(iterations=1, converged=True),
            n_states=len(database),  # database size plays the "model size" role
            n_train_segments=normal_segments.n_unique,
            n_termination_segments=0,
            train_seconds=elapsed,
        )

    def score(self, segments: Sequence[Segment]) -> np.ndarray:
        """Negated mismatch fraction per segment (0 = fully normal).

        Raises:
            TraceError: when a segment is shorter than the window — it has
                no windows at all, and silently calling it normal would be
                a detection hole.
        """
        database = self.database
        if not segments:
            return np.empty(0)
        scores = np.empty(len(segments))
        for index, segment in enumerate(segments):
            n_windows = len(segment) - self.window + 1
            if n_windows < 1:
                raise TraceError(
                    f"{self.name}: segment of length {len(segment)} has no "
                    f"window of size {self.window}"
                )
            mismatches = sum(
                1
                for start in range(n_windows)
                if segment[start : start + self.window] not in database
            )
            scores[index] = -mismatches / n_windows
        return scores

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def database(self) -> frozenset[tuple[str, ...]]:
        if self._database is None:
            raise NotFittedError(f"{self.name}: fit() has not been called")
        return self._database

    @property
    def is_fitted(self) -> bool:
        return self._database is not None
