"""Ensemble detection: combine the libcall and syscall models.

The paper trains *separate* models per call family and observes that
"detection with library calls yield more precise results than that with
system calls" while syscall models enforce the security-critical boundary.
A deployment wants both: this module combines any set of fitted detectors
into one verdict.

Two combination rules:

* ``any`` — alert when any member flags its segment (union of alarms:
  maximal recall, FP rates add);
* ``mean`` — average the members' *calibrated* scores; calibration maps
  each member's score through its own normal-score distribution (empirical
  CDF), so families with different likelihood scales combine sanely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import EvaluationError, NotFittedError
from ..tracing.segments import Segment
from .detector import Detector


@dataclass(frozen=True)
class EnsembleMember:
    """One fitted detector plus its calibration data and threshold."""

    detector: Detector
    calibration_scores: np.ndarray
    threshold: float


class EnsembleDetector:
    """Combine per-family detectors into one verdict.

    Args:
        members: family key (e.g. ``"libcall"``/``"syscall"``) -> member.
        rule: ``"any"`` or ``"mean"``.

    Scoring input differs from single detectors: segments are supplied *per
    family*, since each family observes a different event stream.
    """

    def __init__(
        self, members: Mapping[str, EnsembleMember], rule: str = "any"
    ) -> None:
        if not members:
            raise EvaluationError("ensemble needs at least one member")
        if rule not in ("any", "mean"):
            raise EvaluationError(f"unknown combination rule {rule!r}")
        for key, member in members.items():
            if not member.detector.is_fitted:
                raise NotFittedError(f"ensemble member {key!r} is not fitted")
            if member.calibration_scores.size == 0:
                raise EvaluationError(f"member {key!r} has no calibration scores")
        self.members = dict(members)
        self.rule = rule

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(scores: np.ndarray, calibration: np.ndarray) -> np.ndarray:
        """Map raw scores to their percentile under the calibration set —
        the empirical probability a normal segment scores lower."""
        sorted_calibration = np.sort(calibration)
        ranks = np.searchsorted(sorted_calibration, scores, side="right")
        return ranks / sorted_calibration.size

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def classify(
        self, segments_by_family: Mapping[str, Sequence[Segment]]
    ) -> np.ndarray:
        """Boolean anomaly verdicts; input segment lists must align."""
        self._check_families(segments_by_family)
        lengths = {len(v) for v in segments_by_family.values()}
        if len(lengths) != 1:
            raise EvaluationError("per-family segment lists must align")
        (n,) = lengths
        if n == 0:
            return np.zeros(0, dtype=bool)

        if self.rule == "any":
            verdict = np.zeros(n, dtype=bool)
            for key, member in self.members.items():
                scores = member.detector.score(list(segments_by_family[key]))
                verdict |= scores < member.threshold
            return verdict

        combined = self.score(segments_by_family)
        # Mean rule: flag when the combined percentile is as extreme as the
        # strictest member threshold percentile.
        cutoff = np.mean(
            [
                self._percentile(
                    np.array([member.threshold]), member.calibration_scores
                )[0]
                for member in self.members.values()
            ]
        )
        return combined < cutoff

    def score(
        self, segments_by_family: Mapping[str, Sequence[Segment]]
    ) -> np.ndarray:
        """Combined calibrated score in [0, 1]; lower = more anomalous."""
        self._check_families(segments_by_family)
        parts = []
        for key, member in self.members.items():
            raw = member.detector.score(list(segments_by_family[key]))
            parts.append(self._percentile(raw, member.calibration_scores))
        return np.mean(parts, axis=0)

    def _check_families(self, segments_by_family: Mapping[str, object]) -> None:
        missing = set(self.members) - set(segments_by_family)
        if missing:
            raise EvaluationError(f"missing segment streams for {sorted(missing)}")
