"""Common detector API shared by CMarkov, STILO, and the Regular baselines.

A detector wraps one HMM over one observation family (syscall/libcall ×
context), and exposes the paper's two-phase workflow:

* :meth:`Detector.fit` — train on *normal* segments, holding out 20 % as the
  termination set that decides convergence (Section V-A);
* :meth:`Detector.score` — per-segment log-likelihood (normalized per
  symbol), the quantity thresholded by Equations 3-4.

Scores are ``log P(segment | λ) / len(segment)``; higher means more normal.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError, TraceError
from ..hmm.baumwelch import TrainingConfig, TrainingReport, train
from ..hmm.forward import log_likelihood_unique
from ..hmm.model import HiddenMarkovModel
from ..program.calls import CallKind
from ..tracing.segments import Segment, SegmentSet


@dataclass(frozen=True)
class DetectorConfig:
    """Shared detector knobs.

    Attributes:
        termination_fraction: share of normal data held out to decide
            training termination (the paper uses 20 %).
        training: Baum-Welch configuration.
        seed: seed for data splits (and random initialization, where used).
        max_training_segments: optional cap on unique training segments —
            laptop-scale experiments subsample very large segment sets; the
            cap is applied deterministically (highest-multiplicity first) and
            reported on the fit result.
    """

    termination_fraction: float = 0.2
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0
    max_training_segments: int | None = None


@dataclass
class FitResult:
    """Outcome of one training run."""

    report: TrainingReport
    n_states: int
    n_train_segments: int
    n_termination_segments: int
    train_seconds: float
    subsampled: bool = False


class Detector(abc.ABC):
    """Anomaly detector over call segments (minimal interface).

    Concrete families: :class:`HmmDetector` (the paper's four models) and
    :class:`~repro.core.ngram.NGramDetector` (the related-work baseline).
    """

    #: short model name ("cmarkov", "stilo", "regular-basic", ...)
    name: str = "detector"

    def __init__(self, kind: CallKind, context: bool, config: DetectorConfig | None = None):
        self.kind = kind
        self.context = context
        self.config = config or DetectorConfig()

    @abc.abstractmethod
    def fit(self, normal_segments: SegmentSet) -> FitResult:
        """Train on normal segments; returns training diagnostics."""

    @abc.abstractmethod
    def score(self, segments: Sequence[Segment]) -> np.ndarray:
        """Per-segment normality score (higher = more normal)."""

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether the detector is ready to score — :meth:`fit` was called
        *or* a pretrained model was installed (see
        :attr:`trained_in_process` for the distinction)."""

    @property
    def trained_in_process(self) -> bool:
        """Whether :meth:`fit` ran in this process.

        ``False`` for a detector that only loaded a pretrained model:
        it can score (``is_fitted`` is ``True``) but carries no training
        diagnostics (``fit_result`` raises with a message saying so).
        """
        return self.is_fitted

    def classify(self, segments: Sequence[Segment], threshold: float) -> np.ndarray:
        """Boolean anomaly verdict per segment.

        The library-wide convention (see :data:`repro.api.THRESHOLD_RULE`):
        a segment is anomalous iff ``score < threshold`` — *strictly* below,
        so a score exactly at the threshold is normal.  Every consumer
        (:class:`~repro.core.monitor.OnlineMonitor`, the detection service,
        Equations 3-4 in :mod:`repro.core.metrics`) applies this same rule.
        """
        return self.score(segments) < threshold


class HmmDetector(Detector):
    """Shared machinery for the HMM-based detectors."""

    def __init__(self, kind: CallKind, context: bool, config: DetectorConfig | None = None):
        super().__init__(kind=kind, context=context, config=config)
        self._model: HiddenMarkovModel | None = None
        self._fit_result: FitResult | None = None
        self._pretrained = False

    # ------------------------------------------------------------------
    # Template methods
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_initial_model(self, training_segments: SegmentSet) -> HiddenMarkovModel:
        """Construct the pre-training HMM (random or statically initialized)."""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, normal_segments: SegmentSet) -> FitResult:
        """Train on normal segments; returns training diagnostics."""
        if normal_segments.n_unique == 0:
            raise TraceError(f"{self.name}: no training segments")
        working = normal_segments
        subsampled = False
        cap = self.config.max_training_segments
        if cap is not None and working.n_unique > cap:
            working = _cap_segments(working, cap)
            subsampled = True

        train_part, termination_part = working.split(
            [1.0 - self.config.termination_fraction, self.config.termination_fraction],
            seed=self.config.seed,
        )
        if train_part.n_unique == 0:
            train_part, termination_part = working, working

        initial = self.build_initial_model(train_part)
        train_segments = train_part.segments()
        train_obs = initial.encode(train_segments)
        weights = train_part.weights(train_segments)
        holdout_obs = (
            initial.encode(termination_part.segments())
            if termination_part.n_unique
            else None
        )

        started = time.perf_counter()
        model, report = train(
            initial,
            train_obs,
            holdout_obs=holdout_obs,
            weights=weights,
            config=self.config.training,
        )
        elapsed = time.perf_counter() - started

        self._model = model
        self._pretrained = False
        self._fit_result = FitResult(
            report=report,
            n_states=model.n_states,
            n_train_segments=train_part.n_unique,
            n_termination_segments=termination_part.n_unique,
            train_seconds=elapsed,
            subsampled=subsampled,
        )
        return self._fit_result

    def score(self, segments: Sequence[Segment]) -> np.ndarray:
        """Per-symbol mean log-likelihood of each segment (higher = normal).

        Scoring is duplicate-aware: repeated segments (sliding windows over
        repetitive call streams are mostly repeats) run the forward
        recursion once and share the result — bit-identical to scoring
        every row, see :func:`repro.hmm.kernels.log_likelihood_unique`.
        """
        model = self.model
        if not segments:
            return np.empty(0)
        obs = model.encode(segments)
        return log_likelihood_unique(model, obs) / obs.shape[1]

    def load_pretrained(self, model: HiddenMarkovModel) -> None:
        """Install an externally trained model (e.g. from
        :func:`repro.hmm.serialize.load_model`) instead of calling
        :meth:`fit` — the deployment path where training happened elsewhere.

        The detector becomes *fitted* (it can score) but not *trained in
        process*: :attr:`fit_result` keeps raising, with a message that
        says the diagnostics live wherever training actually ran.
        """
        model.validate()
        self._model = model
        self._fit_result = None
        self._pretrained = True

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def model(self) -> HiddenMarkovModel:
        if self._model is None:
            raise NotFittedError(f"{self.name}: fit() has not been called")
        return self._model

    @property
    def fit_result(self) -> FitResult:
        if self._fit_result is None:
            if self._pretrained:
                raise NotFittedError(
                    f"{self.name}: holds a pretrained model, so it can score "
                    "(is_fitted is True) but fit() never ran in this process "
                    "— training diagnostics live where the model was trained. "
                    "Check detector.trained_in_process before reading "
                    "fit_result."
                )
            raise NotFittedError(f"{self.name}: fit() has not been called")
        return self._fit_result

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def trained_in_process(self) -> bool:
        return self._fit_result is not None


class PretrainedDetector(HmmDetector):
    """A scoring-only detector wrapped around an externally trained HMM.

    The deployment path (:func:`repro.api.load_pretrained`, the detection
    service's fleet loader): no :class:`~repro.program.program.Program` is
    needed because no initialization or training happens here.  ``fit``
    therefore raises — retraining requires one of the real detector
    families built via :func:`repro.api.build_detector`.
    """

    name = "pretrained"

    def __init__(
        self,
        model: HiddenMarkovModel,
        kind: CallKind = CallKind.SYSCALL,
        context: bool | None = None,
        name: str | None = None,
    ):
        if context is None:
            # Context-sensitive alphabets symbolize calls as "call@caller".
            context = any("@" in symbol for symbol in model.symbols)
        super().__init__(kind=kind, context=context)
        if name is not None:
            self.name = name
        self.load_pretrained(model)

    def build_initial_model(self, training_segments: SegmentSet) -> HiddenMarkovModel:
        raise ModelError(
            "a pretrained detector cannot be (re)trained: it has no "
            "initializer; build a detector family via "
            "repro.api.build_detector() to train"
        )


def _cap_segments(segments: SegmentSet, cap: int) -> SegmentSet:
    """Keep the ``cap`` most frequent unique segments (ties: lexicographic)."""
    capped = SegmentSet(length=segments.length)
    ranked = sorted(segments.counts.items(), key=lambda item: (-item[1], item[0]))
    for segment, count in ranked[:cap]:
        capped.counts[segment] = count
    return capped
