"""Streaming surprise: incremental forward filtering over a live call feed.

The windowed monitor (:class:`~repro.core.monitor.OnlineMonitor`) re-runs
the forward algorithm over every 15-call window — ``O(T·N²)`` per event.
For high-rate feeds (the paper quotes 0.038 ms per 15-call segment and
suggests offline/parallel evaluation for production), this module offers
the cheaper alternative: maintain the HMM's *filtering distribution*
``P[state | history]`` across the whole stream and emit, per event, the
instantaneous **surprise**

    surprise_t = -log P[o_t | o_1 .. o_{t-1}]

which is exactly the per-step normalizer of the scaled forward recursion —
one ``O(N²)`` update per event, no window recomputation.  A windowed score
can still be recovered as the mean of the last ``T`` surprisals.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ModelError
from ..hmm.forward import SCALE_FLOOR
from ..hmm.model import HiddenMarkovModel


class StreamingScorer:
    """Incremental forward filter over one observation stream.

    Args:
        model: the trained HMM.
        window: number of recent surprisals averaged by
            :attr:`windowed_score` (defaults to the paper's 15).
    """

    def __init__(self, model: HiddenMarkovModel, window: int = 15) -> None:
        if window <= 0:
            raise ModelError("window must be positive")
        self.model = model
        self.window = window
        self._belief = model.initial.copy()
        self._started = False
        self._recent: deque[float] = deque(maxlen=window)
        self.events = 0

    @classmethod
    def for_detector(cls, detector, window: int = 15) -> "StreamingScorer":
        """A scorer over a fitted detector's model.

        The detection service opens one scorer per streaming session; this
        constructor is the supported seam (it works for any detector that
        exposes a ``model`` — i.e. the HMM families).
        """
        model = getattr(detector, "model", None)
        if not isinstance(model, HiddenMarkovModel):
            raise ModelError(
                f"{getattr(detector, 'name', detector)!r} exposes no HMM; "
                "streaming sessions need an HMM-backed detector"
            )
        return cls(model, window=window)

    def observe(self, symbol: str) -> float:
        """Consume one symbol; returns its surprise (-log predictive prob).

        Higher surprise = less expected.  The belief state is updated in
        place, so consecutive calls score the whole history, not a window.
        """
        index = self.model.encode_symbol(symbol)
        if self._started:
            predictive = self._belief @ self.model.transition
        else:
            predictive = self._belief
            self._started = True
        joint = predictive * self.model.emission[:, index]
        total = float(joint.sum())
        total = max(total, SCALE_FLOOR)
        self._belief = joint / total
        self.events += 1
        surprise = -float(np.log(total))
        self._recent.append(surprise)
        return surprise

    def observe_many(self, symbols) -> list[float]:
        """Consume a run of symbols in order; returns their surprisals.

        The service's micro-batch drain hands each streaming session its
        queued symbols as one run — sequential within the session (the
        belief update is order-dependent) while *sessions* proceed
        independently of each other.
        """
        return [self.observe(symbol) for symbol in symbols]

    @property
    def windowed_score(self) -> float:
        """Mean negative surprise over the last ``window`` events — on the
        same higher-is-more-normal scale as :meth:`Detector.score`."""
        if not self._recent:
            raise ModelError("no events observed yet")
        return -float(np.mean(self._recent))

    @property
    def window_full(self) -> bool:
        return len(self._recent) == self.window

    def reset(self) -> None:
        """Restart the filter (process restart / context switch)."""
        self._belief = self.model.initial.copy()
        self._started = False
        self._recent.clear()
        self.events = 0

    def rebind(self, model: HiddenMarkovModel) -> None:
        """Swap in a retrained model mid-stream (the service's warm-swap).

        The recent-surprisal window survives — :attr:`windowed_score`
        stays continuous across the swap — but the belief state restarts
        from the new model's initial distribution: the old posterior lives
        over the old model's hidden states, which a retrain renumbers or
        resizes, so carrying it over would be meaningless (or shape-wrong).
        """
        if not isinstance(model, HiddenMarkovModel):
            raise ModelError(
                f"rebind takes a HiddenMarkovModel, not {type(model).__name__}"
            )
        self.model = model
        self._belief = model.initial.copy()
        self._started = False
