"""Streaming surprise: incremental forward filtering over a live call feed.

The windowed monitor (:class:`~repro.core.monitor.OnlineMonitor`) re-runs
the forward algorithm over every 15-call window — ``O(T·N²)`` per event.
For high-rate feeds (the paper quotes 0.038 ms per 15-call segment and
suggests offline/parallel evaluation for production), this module offers
the cheaper alternative: maintain the HMM's *filtering distribution*
``P[state | history]`` across the whole stream and emit, per event, the
instantaneous **surprise**

    surprise_t = -log P[o_t | o_1 .. o_{t-1}]

which is exactly the per-step normalizer of the scaled forward recursion —
one ``O(N²)`` update per event, no window recomputation.  A windowed score
can still be recovered as the mean of the last ``T`` surprisals.

Two implementations live behind one flag:

* the **incremental fast path** (default) delegates to the
  zero-allocation :class:`~repro.hmm.kernels.StreamingState` kernels —
  the belief update writes into preallocated buffers and the last
  ``window`` surprisals sit in a ring buffer instead of a deque;
* the **legacy path** (``incremental=False``, or
  ``REPRO_STREAMING_INCREMENTAL=0``) is the original allocating filter,
  kept verbatim as the bit-exactness oracle — the same pattern as the
  ``bench_em_kernels`` verbatim-legacy gates.  The two paths produce
  bit-identical surprisals, windowed scores, and belief states
  (``tests/test_streaming_incremental.py`` proves it property-wise;
  ``benchmarks/bench_streaming_forward.py`` gates it with exit 1).
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from .. import telemetry
from ..errors import ModelError
from ..hmm import backends
from ..hmm.forward import SCALE_FLOOR
from ..hmm.kernels import (
    StreamingState,
    streaming_rebind,
    streaming_recent,
    streaming_reset,
    streaming_step,
    streaming_step_with,
)
from ..hmm.model import HiddenMarkovModel

#: Environment switch for the incremental fast path (default on); set to
#: ``0``/``false``/``off`` to fall back to the verbatim legacy filter —
#: the escape hatch if a BLAS build ever breaks the height-invariance
#: contract the kernels rely on.
INCREMENTAL_ENV = "REPRO_STREAMING_INCREMENTAL"

#: Telemetry bucket bounds for per-event surprise (``-log`` predictive
#: probability: ~0 for expected calls, tens for alphabet-edge surprises).
SURPRISE_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0,
    5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0,
)


def _incremental_default() -> bool:
    value = os.environ.get(INCREMENTAL_ENV, "1").strip().lower()
    return value not in {"0", "false", "no", "off"}


class StreamingScorer:
    """Incremental forward filter over one observation stream.

    Args:
        model: the trained HMM.
        window: number of recent surprisals averaged by
            :attr:`windowed_score` (defaults to the paper's 15).
        incremental: use the ring-buffer fast path (default: the
            :data:`INCREMENTAL_ENV` environment switch, normally on).
            ``False`` runs the verbatim legacy filter — bit-identical,
            just slower; it exists as the oracle the fast path is gated
            against.
        kernel_backend: named kernel backend
            (:mod:`repro.hmm.backends`) the per-event step dispatches
            through — e.g. ``"compiled"``.  ``None`` (default) follows
            the ambient selection (an enclosing
            :func:`~repro.hmm.backends.backend_scope` — the service
            drain sets one — else the process default).  An explicit
            name is resolved once here and pinned: a scorer constructed
            with ``kernel_backend="numpy"`` stays on numpy even inside a
            compiled scope.  Only meaningful on the incremental path
            (the legacy filter is the oracle and never dispatches).
    """

    def __init__(
        self,
        model: HiddenMarkovModel,
        window: int = 15,
        incremental: bool | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        if window <= 0:
            raise ModelError("window must be positive")
        self.model = model
        self.window = window
        self.kernel_backend = kernel_backend
        self._backend = (
            backends.resolve_backend(kernel_backend)
            if kernel_backend is not None
            else None
        )
        self.incremental = (
            _incremental_default() if incremental is None else bool(incremental)
        )
        self.events = 0
        self._state: StreamingState | None = None
        self._recent: deque[float] = deque(maxlen=window)
        if self.incremental:
            self._state = StreamingState(model, window)
        else:
            self._belief = model.initial.copy()
            self._started = False

    @classmethod
    def for_detector(
        cls, detector, window: int = 15, kernel_backend: str | None = None
    ) -> "StreamingScorer":
        """A scorer over a fitted detector's model.

        The detection service opens one scorer per streaming session; this
        constructor is the supported seam (it works for any detector that
        exposes a ``model`` — i.e. the HMM families).
        """
        model = getattr(detector, "model", None)
        if not isinstance(model, HiddenMarkovModel):
            raise ModelError(
                f"{getattr(detector, 'name', detector)!r} exposes no HMM; "
                "streaming sessions need an HMM-backed detector"
            )
        return cls(model, window=window, kernel_backend=kernel_backend)

    def observe(self, symbol: str) -> float:
        """Consume one symbol; returns its surprise (-log predictive prob).

        Higher surprise = less expected.  The belief state is updated in
        place, so consecutive calls score the whole history, not a window.

        Telemetry (fast path): one ``hmm.forward.incremental.events``
        count and one ``hmm.forward.incremental.surprise`` histogram
        sample **per event** — batch entry points must not add their own
        per-call samples, or percentile estimates skew toward batch
        boundaries.  The legacy path stays uninstrumented: it is the
        verbatim oracle.
        """
        index = self.model.encode_symbol(symbol)
        state = self._state
        if state is not None:
            if self.kernel_backend is None:
                surprise = streaming_step(self.model, state, index)
            else:
                # Pinned backend: dispatch through the held instance
                # (no thread-local scope push/pop per event).
                surprise = streaming_step_with(
                    self._backend, self.model, state, index
                )
            self.events += 1
            if telemetry.enabled():
                telemetry.counter_add("hmm.forward.incremental.events")
                telemetry.observe(
                    "hmm.forward.incremental.surprise",
                    surprise,
                    boundaries=SURPRISE_BUCKETS,
                )
            return surprise
        # -- verbatim legacy filter (the bit-exactness oracle) below.
        if self._started:
            predictive = self._belief @ self.model.transition
        else:
            predictive = self._belief
            self._started = True
        joint = predictive * self.model.emission[:, index]
        total = float(joint.sum())
        total = max(total, SCALE_FLOOR)
        self._belief = joint / total
        self.events += 1
        surprise = -float(np.log(total))
        self._recent.append(surprise)
        return surprise

    def observe_many(self, symbols) -> list[float]:
        """Consume a run of symbols in order; returns their surprisals.

        The service's micro-batch drain hands each streaming session its
        queued symbols as one run — sequential within the session (the
        belief update is order-dependent) while *sessions* proceed
        independently of each other.

        Telemetry counts **events, not calls**: every symbol lands its
        own histogram sample via :meth:`observe`; this entry point only
        adds one ``hmm.forward.incremental.batches`` count per non-empty
        run, so latency/surprise percentiles are per-event no matter how
        the stream is chunked.
        """
        surprisals = [self.observe(symbol) for symbol in symbols]
        if surprisals and self._state is not None and telemetry.enabled():
            telemetry.counter_add("hmm.forward.incremental.batches")
        return surprisals

    @property
    def windowed_score(self) -> float:
        """Mean negative surprise over the last ``window`` events — on the
        same higher-is-more-normal scale as :meth:`Detector.score`."""
        state = self._state
        if state is not None:
            if state.count == 0:
                raise ModelError("no events observed yet")
            # streaming_recent materializes the ring in stream order, so
            # np.mean reduces in exactly the order the legacy deque did.
            return -float(np.mean(streaming_recent(state)))
        if not self._recent:
            raise ModelError("no events observed yet")
        return -float(np.mean(self._recent))

    @property
    def window_full(self) -> bool:
        if self._state is not None:
            return self._state.count >= self.window
        return len(self._recent) == self.window

    def reset(self) -> None:
        """Restart the filter (process restart / context switch)."""
        if self._state is not None:
            streaming_reset(self.model, self._state)
        else:
            self._belief = self.model.initial.copy()
            self._started = False
            self._recent.clear()
        self.events = 0

    def rebind(self, model: HiddenMarkovModel) -> None:
        """Swap in a retrained model mid-stream (the service's warm-swap).

        The recent-surprisal window survives — :attr:`windowed_score`
        stays continuous across the swap — but the belief state restarts
        from the new model's initial distribution: the old posterior lives
        over the old model's hidden states, which a retrain renumbers or
        resizes, so carrying it over would be meaningless (or shape-wrong).
        On the fast path this is :func:`~repro.hmm.kernels.streaming_rebind`
        — the carried kernel state (belief, scratch, emission transpose)
        is invalidated and rebuilt while the surprisal ring is kept.
        """
        if not isinstance(model, HiddenMarkovModel):
            raise ModelError(
                f"rebind takes a HiddenMarkovModel, not {type(model).__name__}"
            )
        self.model = model
        if self._state is not None:
            streaming_rebind(model, self._state)
        else:
            self._belief = model.initial.copy()
            self._started = False
