"""Threshold selection for deployment-style classification.

Experiments sweep thresholds (see :mod:`repro.core.metrics`); a deployed
detector needs a single ``T``.  The paper's operating points correspond to
fixing a false-positive budget on held-out normal traffic; this module
derives such thresholds.
"""

from __future__ import annotations

import numpy as np

from ..errors import EvaluationError


def threshold_for_fp_budget(normal_scores: np.ndarray, fp_budget: float) -> float:
    """Largest threshold flagging at most ``fp_budget`` of normal segments.

    Args:
        normal_scores: per-symbol log-likelihood scores of held-out normal
            segments.
        fp_budget: tolerated false-positive rate in [0, 1].

    Returns:
        A threshold ``T`` such that ``score < T`` flags at most the budgeted
        share of the provided normal scores.
    """
    scores = np.sort(np.asarray(normal_scores))
    if scores.size == 0:
        raise EvaluationError("no normal scores supplied")
    if not 0 <= fp_budget <= 1:
        raise EvaluationError(f"fp budget {fp_budget} outside [0, 1]")
    allowed = int(np.floor(fp_budget * scores.size))
    if allowed == 0:
        return float(scores[0])
    return float(scores[allowed])


def margin_threshold(normal_scores: np.ndarray, margin: float = 3.0) -> float:
    """Robust fallback: median minus ``margin`` MADs of the normal scores."""
    scores = np.asarray(normal_scores)
    if scores.size == 0:
        raise EvaluationError("no normal scores supplied")
    median = float(np.median(scores))
    mad = float(np.median(np.abs(scores - median)))
    return median - margin * max(mad, 1e-12)
