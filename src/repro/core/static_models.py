"""STILO and CMarkov: statically-initialized HMM detectors.

Both run the static pipeline of :mod:`repro.analysis` and initialize the
HMM from the aggregated call-transition matrix
(:func:`repro.reduction.initializer.initialize_hmm`).  They differ in:

* **STILO** — context-insensitive labels (bare call names), no clustering;
  the reproduction of the paper's prior work [4] it compares against.
* **CMarkov** — 1-level calling-context labels, with optional PCA+K-means
  state reduction (applied when the state count crosses a threshold, as the
  paper does for models with > 800 states; laptop-scale experiments set the
  threshold lower to exercise the same machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.pipeline import StaticAnalysis, analyze_program
from ..hmm.model import HiddenMarkovModel
from ..program.calls import CallKind
from ..program.program import Program
from ..reduction.cluster import CallClustering, cluster_calls
from ..reduction.initializer import initialize_hmm
from ..tracing.segments import SegmentSet
from .detector import DetectorConfig, HmmDetector


@dataclass(frozen=True)
class ClusterPolicy:
    """When and how much to reduce hidden states.

    Attributes:
        ratio: target ``K / n_states`` (paper: 1/3 to 1/2); ``None``
            disables clustering entirely.
        min_states: clustering only triggers above this state count (the
            paper's prototype reduces models with > 800 states).
    """

    ratio: float | None = 0.5
    min_states: int = 800

    def applies(self, n_states: int) -> bool:
        return self.ratio is not None and n_states > self.min_states


class StaticallyInitializedDetector(HmmDetector):
    """Shared machinery for STILO and CMarkov."""

    def __init__(
        self,
        program: Program,
        kind: CallKind,
        context: bool,
        config: DetectorConfig | None = None,
        cluster_policy: ClusterPolicy | None = None,
    ) -> None:
        super().__init__(kind=kind, context=context, config=config)
        self.program = program
        self.cluster_policy = cluster_policy or ClusterPolicy()
        self._analysis: StaticAnalysis | None = None
        self._clustering: CallClustering | None = None

    @property
    def analysis(self) -> StaticAnalysis:
        """The static pipeline result (computed lazily, cached)."""
        if self._analysis is None:
            self._analysis = analyze_program(self.program, self.kind, self.context)
        return self._analysis

    @property
    def clustering(self) -> CallClustering | None:
        """The state-reduction clustering, if one was applied."""
        return self._clustering

    def build_initial_model(self, training_segments: SegmentSet) -> HiddenMarkovModel:
        summary = self.analysis.program_summary
        clustering = None
        if self.cluster_policy.applies(len(summary.space)):
            assert self.cluster_policy.ratio is not None
            clustering = cluster_calls(
                summary, ratio=self.cluster_policy.ratio, seed=self.config.seed
            )
        self._clustering = clustering
        return initialize_hmm(summary, clustering=clustering)


class StiloDetector(StaticallyInitializedDetector):
    """STILO: statically initialized, context-insensitive (the paper's [4])."""

    def __init__(
        self,
        program: Program,
        kind: CallKind,
        config: DetectorConfig | None = None,
    ) -> None:
        # STILO never clusters: without context its state counts stay small.
        super().__init__(
            program,
            kind=kind,
            context=False,
            config=config,
            cluster_policy=ClusterPolicy(ratio=None),
        )
        self.name = "stilo"


class CMarkovDetector(StaticallyInitializedDetector):
    """CMarkov: statically initialized, context-sensitive, cluster-reduced."""

    def __init__(
        self,
        program: Program,
        kind: CallKind,
        config: DetectorConfig | None = None,
        cluster_policy: ClusterPolicy | None = None,
    ) -> None:
        super().__init__(
            program,
            kind=kind,
            context=True,
            config=config,
            cluster_policy=cluster_policy or ClusterPolicy(),
        )
        self.name = "cmarkov"
