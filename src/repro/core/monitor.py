"""Online monitoring: streaming anomaly detection over a live call feed.

The paper's deployment story intercepts calls as the program runs and
classifies sliding 15-call windows.  :class:`OnlineMonitor` packages that:
feed it :class:`~repro.tracing.events.CallEvent` objects (or raw symbols)
one at a time; it maintains the window, scores each complete window under a
fitted detector, and emits :class:`Alert` records whenever the score drops
below the operating threshold.

A short cooldown suppresses the alert storm a single bad call would cause
as it slides through up to ``segment_length`` consecutive windows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import telemetry
from ..errors import NotFittedError, TraceError
from ..tracing.events import CallEvent
from ..tracing.segments import DEFAULT_SEGMENT_LENGTH
from .detector import Detector


@dataclass(frozen=True)
class Alert:
    """One anomaly alert.

    Attributes:
        event_index: index of the newest event in the flagged window.
        window: the flagged window's symbols.
        score: per-symbol log-likelihood of the window.
        threshold: operating threshold at alert time.
    """

    event_index: int
    window: tuple[str, ...]
    score: float
    threshold: float


@dataclass
class MonitorStats:
    """Aggregate counters for one monitoring session."""

    events: int = 0
    windows_scored: int = 0
    alerts: int = 0
    suppressed: int = 0
    min_score: float = field(default=float("inf"))


class OnlineMonitor:
    """Streaming detector over a live sequence of call events.

    Args:
        detector: a *fitted* detector; its ``kind``/``context`` settings
            decide which events are observed and how they're symbolized.
        threshold: operating threshold (e.g. from
            :func:`~repro.core.thresholds.threshold_for_fp_budget`).
        segment_length: sliding-window length (the paper's 15).
        cooldown: windows to skip after an alert before alerting again; the
            default of one window length collapses each incident into a
            single alert.
    """

    def __init__(
        self,
        detector: Detector,
        threshold: float,
        segment_length: int = DEFAULT_SEGMENT_LENGTH,
        cooldown: int | None = None,
    ) -> None:
        if not detector.is_fitted:
            raise NotFittedError("OnlineMonitor requires a fitted detector")
        if segment_length <= 0:
            raise TraceError("segment_length must be positive")
        self.detector = detector
        self.threshold = threshold
        self.segment_length = segment_length
        self.cooldown = segment_length if cooldown is None else cooldown
        self._window: deque[str] = deque(maxlen=segment_length)
        self._cooldown_left = 0
        # Event indices of windows returned by push() but not yet scored —
        # batched callers push a whole drain before applying its scores, so
        # alerts must remember which event completed their window.
        self._pending_indices: deque[int] = deque()
        self.stats = MonitorStats()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe_event(self, event: CallEvent) -> Alert | None:
        """Feed one call event; events of other kinds are ignored."""
        if event.kind is not self.detector.kind:
            return None
        return self.observe_symbol(event.symbol(self.detector.context))

    def observe_symbol(self, symbol: str) -> Alert | None:
        """Feed one pre-symbolized observation."""
        window = self.push(symbol)
        if window is None:
            return None
        score = float(self.detector.score([window])[0])
        return self.apply_score(window, score)

    # ------------------------------------------------------------------
    # Split-phase API (external scoring)
    # ------------------------------------------------------------------
    # The detection service multiplexes many monitors over one detector and
    # scores their ready windows as one micro-batch; it therefore needs the
    # window bookkeeping and the alert decision as separate steps, with the
    # actual `detector.score` call lifted out.  `observe_symbol` is exactly
    # `push` + score + `apply_score`.

    def push(self, symbol: str) -> tuple[str, ...] | None:
        """Advance the sliding window; returns the window once it is full.

        Does *not* score.  Callers that batch scoring externally must pass
        every returned window to :meth:`apply_score` (in order) to keep the
        cooldown/stats state consistent.
        """
        self.stats.events += 1
        telemetry.counter_add("monitor.events")
        self._window.append(symbol)
        if len(self._window) < self.segment_length:
            return None
        self._pending_indices.append(self.stats.events - 1)
        return tuple(self._window)

    def apply_score(self, window: tuple[str, ...], score: float) -> Alert | None:
        """Apply one externally computed window score to the alert logic.

        The flagging rule is the library-wide convention (see
        :data:`repro.api.THRESHOLD_RULE`): anomalous iff
        ``score < threshold``, strictly.
        """
        score = float(score)
        event_index = (
            self._pending_indices.popleft()
            if self._pending_indices
            else self.stats.events - 1
        )
        self.stats.windows_scored += 1
        self.stats.min_score = min(self.stats.min_score, score)
        telemetry.counter_add("monitor.windows_scored")
        telemetry.observe("monitor.score", score)

        if score >= self.threshold:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
            return None
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self.stats.suppressed += 1
            telemetry.counter_add("monitor.suppressed")
            return None

        self._cooldown_left = self.cooldown
        self.stats.alerts += 1
        telemetry.counter_add("monitor.alerts")
        return Alert(
            event_index=event_index,
            window=window,
            score=score,
            threshold=self.threshold,
        )

    def observe_many(self, events: list[CallEvent]) -> list[Alert]:
        """Feed a batch of events, returning every alert raised."""
        alerts = []
        for event in events:
            alert = self.observe_event(event)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def rebind(self, detector: Detector) -> None:
        """Swap in a retrained detector mid-stream (the service warm-swap).

        The sliding symbol window, cooldown, and stats survive — the trace
        stayed contiguous, only the scoring model changed.  The monitor
        carries no per-model scoring state to invalidate (every window is
        recomputed from its symbols at drain time), so unlike
        :meth:`StreamingScorer.rebind` there is no filter to restart; the
        same fitted-detector validation as construction still applies so a
        bad swap fails at the barrier, not at the next score.
        """
        if not detector.is_fitted:
            raise NotFittedError("OnlineMonitor requires a fitted detector")
        self.detector = detector

    def break_window(self) -> None:
        """Discard the sliding window at a stream discontinuity.

        A window spanning a trace gap never occurred in the monitored
        process — scoring it would fabricate transitions — so the monitor
        restarts window accumulation at the next symbol.  Cooldown, stats,
        and windows already emitted for scoring are untouched: they
        describe the contiguous stream before the gap.
        """
        self._window.clear()

    def reset(self) -> None:
        """Clear the window and cooldown (e.g. on process restart)."""
        self._window.clear()
        self._cooldown_left = 0
        self._pending_indices.clear()
