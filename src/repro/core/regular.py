"""Regular-basic and Regular-context: the randomly-initialized baselines.

These are "the widely accepted HMM-based classification, which is the
state-of-the-art probabilistic anomaly detection model" (Section V-A):
one hidden state per distinct observed call, all parameters random.
Regular-context differs only in observing ``call@caller`` symbols.
"""

from __future__ import annotations

from ..hmm.model import HiddenMarkovModel
from ..hmm.random_init import random_model
from ..program.calls import CallKind
from ..tracing.segments import SegmentSet
from .detector import DetectorConfig, HmmDetector


class RegularDetector(HmmDetector):
    """Randomly-initialized HMM detector (basic or context variant).

    The observation alphabet and the hidden-state count are taken from the
    *training traces*: one state per distinct observed call, exactly the
    regular-model setup the paper compares against.
    """

    def __init__(
        self,
        kind: CallKind,
        context: bool,
        config: DetectorConfig | None = None,
    ) -> None:
        super().__init__(kind=kind, context=context, config=config)
        self.name = "regular-context" if context else "regular-basic"

    def build_initial_model(self, training_segments: SegmentSet) -> HiddenMarkovModel:
        observed = training_segments.alphabet()
        return random_model(
            symbols=observed,
            n_states=len(observed),
            seed=self.config.seed,
        )
