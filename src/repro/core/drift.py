"""Model drift: compare trained models across software versions.

A CMarkov model encodes one program *version*.  When the program updates,
the behaviour model must be retrained — but operators need to know *when*
(silent drift produces false positives) and *where* (which calls changed).
This module compares two models over a shared alphabet:

* per-state symmetrized KL divergence between transition rows;
* emission-mass movement per observation symbol;
* an overall drift score that a retraining policy can threshold.

Comparison requires structurally compatible models (same state labels);
CMarkov models of successive versions of the same program satisfy this for
the unchanged part of the label space, which is exactly the part worth
comparing — new/removed labels are reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..hmm.model import HiddenMarkovModel

_EPS = 1e-12


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    p = np.maximum(p, _EPS)
    q = np.maximum(q, _EPS)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


def symmetrized_kl(p: np.ndarray, q: np.ndarray) -> float:
    """Jeffreys divergence between two discrete distributions."""
    return 0.5 * (_kl(p, q) + _kl(q, p))


@dataclass(frozen=True)
class DriftReport:
    """Drift between two models over their shared structure.

    Attributes:
        shared_states: state labels present in both models.
        added_states: labels only in the new model.
        removed_states: labels only in the old model.
        transition_divergence: per-shared-state Jeffreys divergence of
            transition rows (restricted to shared states).
        emission_divergence: per-shared-state Jeffreys divergence of
            emission rows (restricted to shared symbols).
        drift_score: mean of the per-state divergences — the retraining
            trigger metric.
    """

    shared_states: tuple[str, ...]
    added_states: tuple[str, ...]
    removed_states: tuple[str, ...]
    transition_divergence: dict[str, float]
    emission_divergence: dict[str, float]
    drift_score: float

    def most_drifted(self, top: int = 5) -> list[tuple[str, float]]:
        """States ranked by combined divergence, worst first."""
        combined = {
            label: self.transition_divergence[label]
            + self.emission_divergence[label]
            for label in self.shared_states
        }
        ranked = sorted(combined.items(), key=lambda item: -item[1])
        return ranked[:top]


def compare_models(
    old: HiddenMarkovModel, new: HiddenMarkovModel
) -> DriftReport:
    """Compare two trained models that share (part of) a label space.

    Raises:
        ModelError: when either model lacks state labels (nothing to align
            on) or the models share no states at all.
    """
    if old.state_labels is None or new.state_labels is None:
        raise ModelError("drift comparison needs state-labeled models")
    old_index = {label: i for i, label in enumerate(old.state_labels)}
    new_index = {label: i for i, label in enumerate(new.state_labels)}
    shared = tuple(sorted(set(old_index) & set(new_index)))
    if not shared:
        raise ModelError("models share no state labels")
    added = tuple(sorted(set(new_index) - set(old_index)))
    removed = tuple(sorted(set(old_index) - set(new_index)))

    old_states = [old_index[label] for label in shared]
    new_states = [new_index[label] for label in shared]

    # Transition rows restricted to the shared state set.
    old_trans = old.transition[np.ix_(old_states, old_states)]
    new_trans = new.transition[np.ix_(new_states, new_states)]

    shared_symbols = sorted(set(old.symbols) & set(new.symbols))
    old_symbol_index = [old.symbols.index(s) for s in shared_symbols]
    new_symbol_index = [new.symbols.index(s) for s in shared_symbols]
    old_emit = old.emission[np.ix_(old_states, old_symbol_index)]
    new_emit = new.emission[np.ix_(new_states, new_symbol_index)]

    transition_divergence = {
        label: symmetrized_kl(old_trans[i], new_trans[i])
        for i, label in enumerate(shared)
    }
    emission_divergence = {
        label: symmetrized_kl(old_emit[i], new_emit[i])
        for i, label in enumerate(shared)
    }
    per_state = [
        transition_divergence[label] + emission_divergence[label]
        for label in shared
    ]
    return DriftReport(
        shared_states=shared,
        added_states=added,
        removed_states=removed,
        transition_divergence=transition_divergence,
        emission_divergence=emission_divergence,
        drift_score=float(np.mean(per_state)),
    )


def needs_retraining(
    report: DriftReport, score_threshold: float = 0.5, structure_threshold: float = 0.1
) -> bool:
    """Retraining policy: drift score too high, or too much structural churn.

    Args:
        report: output of :func:`compare_models`.
        score_threshold: drift-score trigger.
        structure_threshold: fraction of added+removed states (relative to
            the old model's shared+removed universe) that triggers
            retraining regardless of parameter drift.
    """
    total_old = len(report.shared_states) + len(report.removed_states)
    churn = (len(report.added_states) + len(report.removed_states)) / max(
        total_old, 1
    )
    return report.drift_score > score_threshold or churn > structure_threshold
