"""Detection accuracy metrics (Equations 3-4) and curve construction.

Given per-segment scores (per-symbol mean log-likelihood; higher = more
normal) and a threshold ``T``:

* ``FP = |{normal segments with score < T}| / |normal|``   (Eq. 4)
* ``FN = |{abnormal segments with score >= T}| / |abnormal|`` (Eq. 3)

The flagging rule is the library-wide convention pinned on the
:mod:`repro.api` facade: anomalous iff ``score < T`` (*strictly* below), so
a score exactly at ``T`` is classified normal — and therefore counts as a
false negative when the segment is abnormal.  Earlier revisions drifted and
used strict ``>`` for FN, silently excusing exact-threshold misses; FP/FN
are now exact complements of the one rule.

Sweeping ``T`` yields the FP/FN trade-off curves of Figures 2-5; the paper
compares models by their false-negative rate at matched low false-positive
rates, which :func:`fn_at_fp` extracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import EvaluationError


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of a detector."""

    threshold: float
    false_positive_rate: float
    false_negative_rate: float


def rates_at_threshold(
    normal_scores: np.ndarray, abnormal_scores: np.ndarray, threshold: float
) -> tuple[float, float]:
    """``(FP, FN)`` at one threshold, per Equations 3-4."""
    normal_scores = np.asarray(normal_scores)
    abnormal_scores = np.asarray(abnormal_scores)
    if normal_scores.size == 0 or abnormal_scores.size == 0:
        raise EvaluationError("need both normal and abnormal scores")
    fp = float(np.mean(normal_scores < threshold))
    fn = float(np.mean(abnormal_scores >= threshold))
    return fp, fn


def curve(
    normal_scores: np.ndarray,
    abnormal_scores: np.ndarray,
    n_points: int = 200,
) -> list[CurvePoint]:
    """FP/FN curve over a threshold sweep spanning both score ranges."""
    normal_scores = np.asarray(normal_scores)
    abnormal_scores = np.asarray(abnormal_scores)
    combined = np.concatenate([normal_scores, abnormal_scores])
    lo, hi = float(combined.min()), float(combined.max())
    if lo == hi:
        thresholds = np.array([lo])
    else:
        thresholds = np.linspace(lo, hi, n_points)
    points = []
    for threshold in thresholds:
        fp, fn = rates_at_threshold(normal_scores, abnormal_scores, float(threshold))
        points.append(
            CurvePoint(
                threshold=float(threshold),
                false_positive_rate=fp,
                false_negative_rate=fn,
            )
        )
    return points


def fn_at_fp(
    normal_scores: np.ndarray,
    abnormal_scores: np.ndarray,
    fp_targets: Sequence[float],
) -> dict[float, float]:
    """Lowest achievable FN at each FP budget.

    For each target, the threshold is the largest one keeping
    ``FP <= target`` (computed exactly from the sorted normal scores), and
    the FN at that threshold is reported.  This is how Figures 2-5 compare
    models: FN on synthetic abnormal segments at matched low FP on held-out
    normal segments.
    """
    normal_scores = np.sort(np.asarray(normal_scores))
    abnormal_scores = np.asarray(abnormal_scores)
    if normal_scores.size == 0 or abnormal_scores.size == 0:
        raise EvaluationError("need both normal and abnormal scores")
    out: dict[float, float] = {}
    n = normal_scores.size
    for target in fp_targets:
        if not 0 <= target <= 1:
            raise EvaluationError(f"fp target {target} outside [0, 1]")
        # Allow at most floor(target * n) normal scores strictly below T.
        allowed = int(np.floor(target * n))
        if allowed == 0:
            threshold = float(normal_scores[0])  # nothing below the minimum
        else:
            threshold = float(normal_scores[allowed])
        # FN under the pinned convention: abnormal segments NOT flagged by
        # `score < T`, i.e. those with score >= T (ties are normal).
        fn = float(np.mean(abnormal_scores >= threshold))
        out[float(target)] = fn
    return out


def auc_score(normal_scores: np.ndarray, abnormal_scores: np.ndarray) -> float:
    """Area under the ROC curve (probability a normal segment outscores an
    abnormal one; ties count half).  1.0 = perfect separation."""
    normal_scores = np.asarray(normal_scores)
    abnormal_scores = np.asarray(abnormal_scores)
    if normal_scores.size == 0 or abnormal_scores.size == 0:
        raise EvaluationError("need both normal and abnormal scores")
    # Rank-sum formulation, O((n+m) log(n+m)).
    combined = np.concatenate([abnormal_scores, normal_scores])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, combined.size + 1)
    # Average ranks for ties.
    sorted_vals = combined[order]
    start = 0
    for end in range(1, combined.size + 1):
        if end == combined.size or sorted_vals[end] != sorted_vals[start]:
            if end - start > 1:
                ranks_slice = order[start:end]
                ranks[ranks_slice] = ranks[ranks_slice].mean()
            start = end
    n_abnormal = abnormal_scores.size
    n_normal = normal_scores.size
    rank_sum_normal = ranks[n_abnormal:].sum()
    u_statistic = rank_sum_normal - n_normal * (n_normal + 1) / 2
    return float(u_statistic / (n_normal * n_abnormal))


def detection_rate(scores: np.ndarray, threshold: float) -> float:
    """Fraction of segments flagged anomalous at ``threshold``."""
    scores = np.asarray(scores)
    if scores.size == 0:
        raise EvaluationError("no scores to classify")
    return float(np.mean(scores < threshold))
