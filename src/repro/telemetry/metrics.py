"""Metric primitives: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns every metric recorded in one process.  Its
:meth:`~MetricsRegistry.snapshot` is a plain-``dict`` (JSON- and
pickle-safe) view of the current values, and :meth:`~MetricsRegistry.merge`
folds one snapshot into another registry — the mechanism
:class:`repro.runtime.ParallelExecutor` uses to carry worker-process
metrics back to the coordinator, mirroring how
:class:`repro.runtime.cache.CacheStats` deltas merge back after a fold.

Merge algebra (exercised by ``tests/test_properties_telemetry.py``):

* counters and histograms merge by elementwise addition — associative and
  commutative, so the merged totals are independent of worker scheduling;
* span aggregates merge by summing counts/durations and taking the max of
  maxima — likewise order-independent;
* gauges are *last-writer-wins* in merge order; the executor merges worker
  snapshots in submission order, so the surviving value matches a serial
  run's final write.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SCORE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default bucket upper bounds for per-symbol log-likelihood scores (the
#: quantity every detector thresholds; more negative means more anomalous).
DEFAULT_SCORE_BUCKETS: tuple[float, ...] = (
    -50.0, -20.0, -10.0, -7.5, -5.0, -4.0, -3.0, -2.5,
    -2.0, -1.5, -1.0, -0.75, -0.5, -0.25, -0.1, 0.0,
)

#: Default bucket upper bounds for wall-clock durations in seconds.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Fixed-boundary histogram of observed values.

    ``boundaries`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit overflow
    bucket past the last bound, so ``len(counts) == len(boundaries) + 1``
    and the bucket counts always sum to the observation count.
    """

    __slots__ = ("boundaries", "counts", "count", "total", "min", "max")

    def __init__(self, boundaries: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly ascending")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)


@dataclass
class SpanAggregate:
    """Accumulated timing for every completed span of one name."""

    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    max_wall_s: float = 0.0

    def record(self, wall_s: float, cpu_s: float) -> None:
        self.count += 1
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        if wall_s > self.max_wall_s:
            self.max_wall_s = wall_s


@dataclass
class MetricsRegistry:
    """All metrics recorded in one process, addressable by name.

    Metric accessors create on first use, so instrumented code never
    pre-registers anything.  The registry holds no locks, thread-locals, or
    open handles — it pickles cleanly across process boundaries (the same
    requirement :class:`repro.core.registry.DetectorSpec` satisfies for
    parallel cross-validation).
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    spans: dict[str, SpanAggregate] = field(default_factory=dict)

    # -- accessors (create on first use) -------------------------------
    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, boundaries: Iterable[float] = DEFAULT_SCORE_BUCKETS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(boundaries)
        return histogram

    def record_span(self, name: str, wall_s: float, cpu_s: float) -> None:
        aggregate = self.spans.get(name)
        if aggregate is None:
            aggregate = self.spans[name] = SpanAggregate()
        aggregate.record(wall_s, cpu_s)

    # -- export / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict (JSON- and pickle-safe) view of every metric."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {
                k: {"value": g.value, "updates": g.updates}
                for k, g in sorted(self.gauges.items())
            },
            "histograms": {
                k: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for k, h in sorted(self.histograms.items())
            },
            "spans": {
                k: {
                    "count": s.count,
                    "wall_s": s.wall_s,
                    "cpu_s": s.cpu_s,
                    "max_wall_s": s.max_wall_s,
                }
                for k, s in sorted(self.spans.items())
            },
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry.  Counter/histogram/span merges are associative and
        commutative; gauges take the snapshot's value when it recorded any
        update (last writer wins in merge order)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if payload["updates"]:
                gauge.value = payload["value"]
            gauge.updates += payload["updates"]
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["boundaries"])
            if list(histogram.boundaries) != list(payload["boundaries"]):
                raise ValueError(
                    f"histogram {name!r}: bucket boundaries differ; "
                    "cannot merge"
                )
            histogram.counts = [
                a + b for a, b in zip(histogram.counts, payload["counts"])
            ]
            histogram.count += payload["count"]
            histogram.total += payload["sum"]
            if payload["count"]:
                histogram.min = min(histogram.min, payload["min"])
                histogram.max = max(histogram.max, payload["max"])
        for name, payload in snapshot.get("spans", {}).items():
            aggregate = self.spans.get(name)
            if aggregate is None:
                aggregate = self.spans[name] = SpanAggregate()
            aggregate.count += payload["count"]
            aggregate.wall_s += payload["wall_s"]
            aggregate.cpu_s += payload["cpu_s"]
            aggregate.max_wall_s = max(aggregate.max_wall_s, payload["max_wall_s"])

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
