"""Profiler hooks: observe spans and metric writes as they happen.

Where :mod:`~repro.telemetry.metrics` answers "how much, in total?" and
:mod:`~repro.telemetry.spans` answers "where did the time go?", profiler
hooks answer "show me the events as they stream by" — the extension point
for ad-hoc tooling (flame-graph feeds, slow-span logging, external metric
exporters) without touching the instrumented code.

A hook subclasses :class:`ProfilerHook` and overrides any subset of the
callbacks; the :class:`Profiler` fans events out to every registered hook.
Hooks only fire while telemetry is enabled, so the disabled hot path stays
free of any dispatch cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spans import Span

__all__ = ["Profiler", "ProfilerHook", "CollectingProfiler", "SlowSpanProfiler"]


class ProfilerHook:
    """Base class for profiling hooks; override what you need."""

    def on_span_start(self, span: "Span") -> None:
        """A span was entered (timing not yet known)."""

    def on_span_end(self, span: "Span") -> None:
        """A span exited; ``span.wall_s`` / ``span.cpu_s`` are final."""

    def on_metric(self, kind: str, name: str, value: float) -> None:
        """A metric was written: ``kind`` is counter/gauge/histogram."""


class Profiler:
    """Fans telemetry events out to registered hooks."""

    def __init__(self) -> None:
        self.hooks: list[ProfilerHook] = []

    def add(self, hook: ProfilerHook) -> ProfilerHook:
        self.hooks.append(hook)
        return hook

    def remove(self, hook: ProfilerHook) -> None:
        self.hooks.remove(hook)

    def __bool__(self) -> bool:
        return bool(self.hooks)

    # -- dispatch ------------------------------------------------------
    def span_start(self, span: "Span") -> None:
        for hook in self.hooks:
            hook.on_span_start(span)

    def span_end(self, span: "Span") -> None:
        for hook in self.hooks:
            hook.on_span_end(span)

    def metric(self, kind: str, name: str, value: float) -> None:
        for hook in self.hooks:
            hook.on_metric(kind, name, value)


class CollectingProfiler(ProfilerHook):
    """Records every event as ``(event, name, value)`` tuples — the hook
    the test suite uses to assert instrumentation points fire."""

    def __init__(self) -> None:
        self.events: list[tuple[str, str, float]] = []

    def on_span_start(self, span: "Span") -> None:
        self.events.append(("span_start", span.name, 0.0))

    def on_span_end(self, span: "Span") -> None:
        self.events.append(("span_end", span.name, span.wall_s))

    def on_metric(self, kind: str, name: str, value: float) -> None:
        self.events.append((f"metric_{kind}", name, float(value)))


class SlowSpanProfiler(ProfilerHook):
    """Collects spans whose wall time exceeds a threshold (a poor man's
    "log slow queries"); useful when hunting pipeline stragglers."""

    def __init__(self, threshold_s: float) -> None:
        self.threshold_s = threshold_s
        self.slow: list[tuple[str, float]] = []

    def on_span_end(self, span: "Span") -> None:
        if span.wall_s >= self.threshold_s:
            self.slow.append((span.name, span.wall_s))
