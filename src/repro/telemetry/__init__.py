"""Telemetry: spans, metrics, and profiling hooks for the whole pipeline.

(Named ``telemetry`` — not ``tracing`` — because :mod:`repro.tracing` is
the *program-trace* substrate; this package is about observing the
detector pipeline itself.)

Everything routes through one module-level switch:

* **Disabled (the default)** — every helper below is a no-op: ``span()``
  returns a shared do-nothing context manager and the metric writers
  return immediately after a single global load + ``None`` check.  The
  golden-number suite (``tests/test_golden.py``) proves results are
  bit-identical with telemetry on or off.
* **Enabled** (:func:`enable`, :func:`session`, or the CLI's
  ``--metrics-out`` / ``REPRO_METRICS_OUT``) — spans build timed trees,
  counters/gauges/histograms accumulate in a
  :class:`~repro.telemetry.metrics.MetricsRegistry`, and registered
  :class:`~repro.telemetry.profiler.ProfilerHook` objects see every event.

:func:`snapshot` exports the registry as a plain JSON-safe dict (see
``docs/telemetry.md`` for the schema and metric catalog), and
:func:`merge_snapshot` folds worker-process snapshots back into the
coordinating process — :class:`repro.runtime.ParallelExecutor` does this
automatically, so ``--jobs N`` produces the same merged counters as a
serial run.

Typical use::

    from repro import telemetry

    with telemetry.session() as registry:
        run_accuracy_comparison("gzip", CallKind.SYSCALL)
        print(registry.snapshot()["spans"]["hmm.train.iteration"])
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from .metrics import (
    DEFAULT_SCORE_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import CollectingProfiler, Profiler, ProfilerHook, SlowSpanProfiler
from .spans import NOOP_SPAN, Span, Tracer

__all__ = [
    "CollectingProfiler",
    "Counter",
    "DEFAULT_SCORE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "ProfilerHook",
    "SlowSpanProfiler",
    "Span",
    "Telemetry",
    "Tracer",
    "add_profiler",
    "counter_add",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get",
    "merge_snapshot",
    "observe",
    "observe_many",
    "remove_profiler",
    "session",
    "snapshot",
    "span",
    "write_snapshot",
]


@dataclass
class Telemetry:
    """One enabled telemetry context: registry + tracer + profiler."""

    registry: MetricsRegistry
    tracer: Tracer
    profiler: Profiler


#: The active context, or ``None`` when telemetry is off.  Instrumented
#: code never touches this directly — it calls the helpers below, whose
#: disabled cost is one global load and a ``None`` check.
_STATE: Telemetry | None = None


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _STATE is not None


def get() -> Telemetry | None:
    """The active :class:`Telemetry` context, or ``None`` when disabled."""
    return _STATE


def enable(
    registry: MetricsRegistry | None = None, max_roots: int = 64
) -> Telemetry:
    """Switch telemetry on (replacing any active context) and return it."""
    global _STATE
    registry = registry if registry is not None else MetricsRegistry()
    profiler = Profiler()
    _STATE = Telemetry(
        registry=registry,
        tracer=Tracer(registry, max_roots=max_roots, profiler=profiler),
        profiler=profiler,
    )
    return _STATE


def disable() -> Telemetry | None:
    """Switch telemetry off; returns the context that was active (its
    registry keeps the recorded values, so a final snapshot still works)."""
    global _STATE
    state = _STATE
    _STATE = None
    return state


@contextmanager
def session(
    registry: MetricsRegistry | None = None, max_roots: int = 64
) -> Iterator[MetricsRegistry]:
    """Enable telemetry for a ``with`` block, then restore the previous
    state (which is how tests isolate their telemetry)."""
    global _STATE
    previous = _STATE
    state = enable(registry=registry, max_roots=max_roots)
    try:
        yield state.registry
    finally:
        _STATE = previous


# ---------------------------------------------------------------------------
# Instrumentation helpers (no-ops while disabled)
# ---------------------------------------------------------------------------


def span(name: str, **attributes: Any):
    """A timed span context manager, or the shared no-op when disabled."""
    state = _STATE
    if state is None:
        return NOOP_SPAN
    return state.tracer.span(name, **attributes)


def counter_add(name: str, amount: float = 1) -> None:
    """Increment a counter (created on first use)."""
    state = _STATE
    if state is None:
        return
    state.registry.counter(name).inc(amount)
    if state.profiler:
        state.profiler.metric("counter", name, amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge to a point-in-time value."""
    state = _STATE
    if state is None:
        return
    state.registry.gauge(name).set(value)
    if state.profiler:
        state.profiler.metric("gauge", name, value)


def observe(
    name: str, value: float, boundaries: Iterable[float] = DEFAULT_SCORE_BUCKETS
) -> None:
    """Record one observation into a fixed-bucket histogram."""
    state = _STATE
    if state is None:
        return
    state.registry.histogram(name, boundaries).observe(value)
    if state.profiler:
        state.profiler.metric("histogram", name, value)


def observe_many(
    name: str,
    values: Iterable[float],
    boundaries: Iterable[float] = DEFAULT_SCORE_BUCKETS,
) -> None:
    """Record a batch of observations into a fixed-bucket histogram."""
    state = _STATE
    if state is None:
        return
    histogram = state.registry.histogram(name, boundaries)
    histogram.observe_many(values)
    if state.profiler:
        for value in values:
            state.profiler.metric("histogram", name, float(value))


def add_profiler(hook: ProfilerHook) -> ProfilerHook:
    """Register a profiling hook on the active context (raises if off)."""
    if _STATE is None:
        raise RuntimeError("telemetry is disabled; call enable() first")
    return _STATE.profiler.add(hook)


def remove_profiler(hook: ProfilerHook) -> None:
    if _STATE is not None:
        _STATE.profiler.remove(hook)


# ---------------------------------------------------------------------------
# Export / merge
# ---------------------------------------------------------------------------


def snapshot() -> dict:
    """The active registry as a plain JSON-safe dict (empty schema when
    disabled), plus the retained span trees."""
    state = _STATE
    if state is None:
        payload = MetricsRegistry().snapshot()
        payload["enabled"] = False
        payload["span_trees"] = []
        return payload
    payload = state.registry.snapshot()
    payload["enabled"] = True
    payload["span_trees"] = state.tracer.trees()
    return payload


def merge_snapshot(payload: dict) -> None:
    """Fold a worker-process snapshot into the active registry (no-op when
    disabled).  Span trees are not merged — only the aggregates travel."""
    state = _STATE
    if state is None:
        return
    state.registry.merge(payload)


def write_snapshot(path: str | Path) -> Path:
    """Write :func:`snapshot` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(snapshot(), indent=2) + "\n", encoding="utf-8")
    return path


def _begin_worker_capture() -> Telemetry:
    """(Internal) Install a fresh enabled context in a worker process.

    Forked workers inherit the coordinator's registry contents; capturing
    into a fresh registry makes each task's snapshot a clean *delta* that
    the coordinator can merge exactly once.  Called by
    :class:`repro.runtime.ParallelExecutor`'s task wrapper.
    """
    return enable()
