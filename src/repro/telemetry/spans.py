"""Span tracing: nested timed regions with wall-clock and CPU durations.

A :class:`Span` is a context manager; entering pushes it onto the tracer's
stack (so spans opened inside it become children), exiting records wall and
CPU time.  The :class:`Tracer` keeps two views:

* per-name aggregates in the owning :class:`~repro.telemetry.metrics.MetricsRegistry`
  (count / total wall / total CPU / max wall), which is what snapshots and
  worker merge-back carry;
* the most recent completed root-span *trees* (bounded), for drill-down in
  tests and interactive debugging.

Timing invariant: a child span opens after and closes before its parent,
both on the same monotonic clock, so ``child.wall_s <= parent.wall_s``
always holds within a tree (property-tested).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One timed region.  Created via :meth:`Tracer.span`, used as ``with``.

    Attributes (populated on exit):
        wall_s: elapsed wall-clock seconds (monotonic clock).
        cpu_s: elapsed process CPU seconds.
        children: spans fully nested inside this one.
    """

    __slots__ = (
        "name", "attributes", "tracer", "children",
        "wall_s", "cpu_s", "_wall_start", "_cpu_start",
    )

    def __init__(self, name: str, tracer: "Tracer", attributes: dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.tracer = tracer
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall_start = 0.0
        self._cpu_start = 0.0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._cpu_start = time.process_time()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start
        self.tracer._pop(self)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def tree(self) -> dict:
        """This span and its descendants as nested plain dicts."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [child.tree() for child in self.children],
        }


class _NoopSpan:
    """Shared do-nothing span returned whenever telemetry is disabled.

    One module-level instance; entering/exiting touches nothing, so an
    instrumented hot path costs a single global load plus an attribute
    check when telemetry is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Builds span trees and feeds per-name aggregates into a registry.

    Args:
        registry: destination for per-name span aggregates.
        max_roots: how many completed root-span trees to retain (oldest
            dropped first) — bounds memory on long runs.
        profiler: optional :class:`~repro.telemetry.profiler.Profiler`
            notified on every span start/end.
    """

    def __init__(self, registry, max_roots: int = 64, profiler=None) -> None:
        self.registry = registry
        self.profiler = profiler
        self.roots: Deque[Span] = deque(maxlen=max_roots)
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a new span; nests under the currently active span."""
        return Span(name, self, attributes)

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- bookkeeping (driven by Span.__enter__/__exit__) ---------------
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        if self.profiler:
            self.profiler.span_start(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits arriving out of order (a span kept alive past its
        # parent): unwind to — and including — the exiting span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack:
            self.roots.append(span)
        self.registry.record_span(span.name, span.wall_s, span.cpu_s)
        if self.profiler:
            self.profiler.span_end(span)

    def trees(self) -> list[dict]:
        """The retained completed root spans, oldest first."""
        return [root.tree() for root in self.roots]
