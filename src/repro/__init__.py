"""CMarkov reproduction: context-sensitive probabilistic program anomaly
detection (Xu, Tian, Yao, Ryder — DSN 2016).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.program` — program substrate (toy IR, corpus, binary layout);
* :mod:`repro.analysis` — static probability forecast and aggregation;
* :mod:`repro.hmm` — hidden Markov model machinery;
* :mod:`repro.reduction` — PCA + K-means state reduction, static HMM init;
* :mod:`repro.tracing` — trace executor, workloads, segmentation;
* :mod:`repro.core` — the four detectors, metrics, cross-validation;
* :mod:`repro.attacks` — Abnormal-S, ROP chains, exploit payloads, mimicry;
* :mod:`repro.gadgets` — ROP gadget scanning and context filtering;
* :mod:`repro.eval` — per-table/figure experiment runners;
* :mod:`repro.runtime` — parallel execution and artifact caching;
* :mod:`repro.service` — micro-batched multi-tenant detection service;
* :mod:`repro.telemetry` — spans, metrics, and profiling hooks (off by
  default; ``--metrics-out`` / :func:`repro.telemetry.enable` switch it on).

The supported import surface is the :mod:`repro.api` facade —
``build_detector`` / ``fit`` / ``score`` / ``open_monitor`` /
``load_pretrained`` — re-exported here.  Older constructor aliases
(``make_detector``, ``detector_factory``) remain as shims that emit
:class:`~repro.errors.ReproDeprecationWarning`.
"""

from . import api, telemetry

from .api import (
    THRESHOLD_RULE,
    build_detector,
    detector_spec,
    fit,
    load_pretrained,
    open_monitor,
    score,
)
from .core import (
    CMarkovDetector,
    ClusterPolicy,
    Detector,
    DetectorConfig,
    PretrainedDetector,
    RegularDetector,
    StiloDetector,
    make_detector,
)
from .errors import (
    AnalysisError,
    EvaluationError,
    ModelError,
    NotFittedError,
    ProgramStructureError,
    ReproDeprecationWarning,
    ReproError,
    ServiceError,
    TraceError,
)
from .eval import ExperimentConfig
from .program import CallKind, Program, load_corpus, load_program

__version__ = "1.1.0"

__all__ = [
    "AnalysisError",
    "CallKind",
    "CMarkovDetector",
    "ClusterPolicy",
    "Detector",
    "DetectorConfig",
    "EvaluationError",
    "ExperimentConfig",
    "ModelError",
    "NotFittedError",
    "PretrainedDetector",
    "Program",
    "ProgramStructureError",
    "RegularDetector",
    "ReproDeprecationWarning",
    "ReproError",
    "ServiceError",
    "StiloDetector",
    "THRESHOLD_RULE",
    "TraceError",
    "api",
    "build_detector",
    "detector_spec",
    "fit",
    "load_corpus",
    "load_pretrained",
    "load_program",
    "make_detector",
    "open_monitor",
    "score",
    "telemetry",
    "__version__",
]
