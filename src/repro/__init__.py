"""CMarkov reproduction: context-sensitive probabilistic program anomaly
detection (Xu, Tian, Yao, Ryder — DSN 2016).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.program` — program substrate (toy IR, corpus, binary layout);
* :mod:`repro.analysis` — static probability forecast and aggregation;
* :mod:`repro.hmm` — hidden Markov model machinery;
* :mod:`repro.reduction` — PCA + K-means state reduction, static HMM init;
* :mod:`repro.tracing` — trace executor, workloads, segmentation;
* :mod:`repro.core` — the four detectors, metrics, cross-validation;
* :mod:`repro.attacks` — Abnormal-S, ROP chains, exploit payloads, mimicry;
* :mod:`repro.gadgets` — ROP gadget scanning and context filtering;
* :mod:`repro.eval` — per-table/figure experiment runners;
* :mod:`repro.runtime` — parallel execution and artifact caching;
* :mod:`repro.telemetry` — spans, metrics, and profiling hooks (off by
  default; ``--metrics-out`` / :func:`repro.telemetry.enable` switch it on).
"""

from . import telemetry

from .core import (
    CMarkovDetector,
    ClusterPolicy,
    Detector,
    DetectorConfig,
    RegularDetector,
    StiloDetector,
    make_detector,
)
from .errors import (
    AnalysisError,
    EvaluationError,
    ModelError,
    NotFittedError,
    ProgramStructureError,
    ReproError,
    TraceError,
)
from .eval import ExperimentConfig
from .program import CallKind, Program, load_corpus, load_program

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "CallKind",
    "CMarkovDetector",
    "ClusterPolicy",
    "Detector",
    "DetectorConfig",
    "EvaluationError",
    "ExperimentConfig",
    "ModelError",
    "NotFittedError",
    "Program",
    "ProgramStructureError",
    "RegularDetector",
    "ReproError",
    "StiloDetector",
    "TraceError",
    "load_corpus",
    "load_program",
    "make_detector",
    "telemetry",
    "__version__",
]
