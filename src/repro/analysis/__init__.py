"""Static analysis: probability forecast, context labels, aggregation.

Implements Definitions 2-6 and Equations 1-2 of the paper plus the
call-graph aggregation pass, producing the call-transition summaries that
initialize CMarkov/STILO hidden Markov models.
"""

from .aggregate import AggregationResult, aggregate_program, function_matrix
from .branching import UNIFORM, BranchPolicy, edge_probabilities, loop_biased
from .labels import LabelSpace, build_label_space
from .matrix import CallSummary
from .pipeline import StaticAnalysis, analyze_program
from .reachability import conditional_probabilities, reachability
from .summary import summarize_function

__all__ = [
    "UNIFORM",
    "AggregationResult",
    "BranchPolicy",
    "edge_probabilities",
    "loop_biased",
    "CallSummary",
    "LabelSpace",
    "StaticAnalysis",
    "aggregate_program",
    "analyze_program",
    "build_label_space",
    "conditional_probabilities",
    "function_matrix",
    "reachability",
    "summarize_function",
]
