"""Aggregation of call transitions across the call graph (Section IV).

Callee summaries are inlined into callers bottom-up, so the final summary of
the program's entry function "captures the execution pattern of the entire
program rather than single functions" and "consists of only system calls or
library calls" — internal calls are dissolved.  Context labels are assigned
where a call site lexically lives (``write@f`` stays ``write@f`` after being
inlined into ``g``), exactly as the paper prescribes.

Recursive call edges (call-graph SCCs and self-calls) are treated as
call-free pass-throughs; the behaviour they contribute is learned from
traces during HMM training, mirroring the paper's treatment of recursion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..program.callgraph import CallGraph, build_call_graph
from ..program.calls import CallKind
from ..program.program import Program
from .branching import UNIFORM, BranchPolicy
from .labels import LabelSpace, build_label_space
from .matrix import CallSummary
from .summary import summarize_function


@dataclass
class AggregationResult:
    """Output of whole-program aggregation.

    Attributes:
        program: the analyzed program.
        space: the label space shared by all summaries.
        call_graph: derived call graph (with recursive edges marked).
        function_summaries: fully-inlined summary per function.
        program_summary: the entry function's summary — the aggregated
            call-transition matrix of the program.
    """

    program: Program
    space: LabelSpace
    call_graph: CallGraph
    function_summaries: dict[str, CallSummary]
    program_summary: CallSummary


def aggregate_program(
    program: Program,
    kind: CallKind,
    context: bool,
    space: LabelSpace | None = None,
    policy: BranchPolicy = UNIFORM,
) -> AggregationResult:
    """Run CONTEXT IDENTIFICATION + PROBABILITY FORECAST + aggregation.

    Args:
        program: validated program to analyze.
        kind: model syscalls or libcalls.
        context: attach 1-level calling context to labels.
        space: optional pre-built label space (must match ``kind``/``context``).

    Returns:
        An :class:`AggregationResult`; ``program_summary`` is what
        initializes the CMarkov / STILO hidden Markov models.
    """
    if space is None:
        space = build_label_space(program, kind, context)
    elif space.kind is not kind or space.context is not context:
        raise AnalysisError("label space does not match requested analysis mode")

    call_graph = build_call_graph(program)
    summaries: dict[str, CallSummary] = {}
    for function_name in call_graph.bottom_up_order():
        cfg = program.function(function_name)
        callees = {
            callee: summaries[callee]
            for callee in call_graph.callees(function_name)
            if callee in summaries
            and not call_graph.is_recursive_edge(function_name, callee)
        }
        summaries[function_name] = summarize_function(
            cfg, space, callees, policy=policy
        )

    entry_name = program.entry_function
    if entry_name not in summaries:
        raise AnalysisError(f"{program.name}: entry function was not summarized")
    return AggregationResult(
        program=program,
        space=space,
        call_graph=call_graph,
        function_summaries=summaries,
        program_summary=summaries[entry_name],
    )


def function_matrix(
    program: Program,
    function_name: str,
    kind: CallKind,
    context: bool,
    space: LabelSpace | None = None,
) -> CallSummary:
    """The *local* call-transition matrix of one function (Definition 5).

    Internal calls are treated as call-free: only the function's own
    syscall/libcall sites appear, each labeled with this function as its
    context.  This is the per-function object that aggregation later inlines.
    """
    if space is None:
        space = build_label_space(program, kind, context)
    return summarize_function(program.function(function_name), space, None)
