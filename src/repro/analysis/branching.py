"""Branch-probability policies for the probability forecast.

The paper's prototype assigns branch probabilities uniformly and notes that
"advanced branch prediction and path frequency approximation techniques can
be utilized" (Section IV).  This module makes the choice pluggable:

* :data:`UNIFORM` — the paper's default: each successor equally likely;
* :func:`loop_biased` — a Ball-Larus-style static heuristic: loop back
  edges are taken with a fixed (high) probability, modelling that loops
  usually iterate more than once.

Policies feed :func:`edge_probabilities`, which the reachability and
summarization passes consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..program.cfg import FunctionCFG


@dataclass(frozen=True)
class BranchPolicy:
    """How to distribute probability over a branch's successors.

    Attributes:
        name: policy identifier (shows up in ablation reports).
        loop_weight: probability assigned (collectively) to back-edge
            successors at nodes that have both back and forward successors;
            ``None`` means uniform over all successors.
    """

    name: str
    loop_weight: float | None = None

    def __post_init__(self) -> None:
        if self.loop_weight is not None and not 0 < self.loop_weight < 1:
            raise AnalysisError("loop_weight must be in (0, 1)")


#: The paper's prototype policy: uniform over successors.
UNIFORM = BranchPolicy(name="uniform")


def loop_biased(loop_weight: float = 0.8) -> BranchPolicy:
    """A policy that expects loops to iterate (back edges likely taken)."""
    return BranchPolicy(name=f"loop-biased-{loop_weight}", loop_weight=loop_weight)


def edge_probabilities(
    cfg: FunctionCFG, policy: BranchPolicy = UNIFORM
) -> dict[tuple[int, int], float]:
    """Edge -> conditional probability under ``policy`` (Definition 2).

    For the uniform policy this matches
    :func:`repro.analysis.reachability.conditional_probabilities` exactly.

    Under a loop-biased policy, two kinds of edges count as "continue the
    loop" and collectively receive ``loop_weight`` at their branch node:

    * back edges themselves (a do-while tail choosing to iterate again);
    * at a *loop head* (target of a back edge), the successors that lead
      into the loop body, i.e. from which the back-edge source is reachable
      without re-entering the head (a while-loop head choosing to iterate).
    """
    if policy.loop_weight is None:
        back: set[tuple[int, int]] = set()
    else:
        back = cfg.back_edges()
    loop_sources: dict[int, set[int]] = {}
    for source, head in back:
        loop_sources.setdefault(head, set()).add(source)

    probabilities: dict[tuple[int, int], float] = {}
    for block_id in cfg.blocks:
        successors = cfg.successors(block_id)
        if not successors:
            continue
        if policy.loop_weight is None:
            loop_successors: list[int] = []
        else:
            loop_successors = [
                dst
                for dst in successors
                if (block_id, dst) in back
                or _enters_loop_body(cfg, block_id, dst, loop_sources)
            ]
        other_successors = [d for d in successors if d not in loop_successors]
        if not loop_successors or not other_successors:
            share = 1.0 / len(successors)
            for dst in successors:
                probabilities[(block_id, dst)] = share
            continue
        assert policy.loop_weight is not None
        loop_share = policy.loop_weight / len(loop_successors)
        other_share = (1.0 - policy.loop_weight) / len(other_successors)
        for dst in loop_successors:
            probabilities[(block_id, dst)] = loop_share
        for dst in other_successors:
            probabilities[(block_id, dst)] = other_share
    return probabilities


def _enters_loop_body(
    cfg: FunctionCFG,
    head: int,
    successor: int,
    loop_sources: dict[int, set[int]],
) -> bool:
    """True when ``successor`` of loop head ``head`` leads into its body."""
    sources = loop_sources.get(head)
    if not sources:
        return False
    # DFS from the successor, never re-entering the head: can we reach a
    # back-edge source of this head?
    seen = {head}
    stack = [successor]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        if node in sources:
            return True
        seen.add(node)
        stack.extend(cfg.successors(node))
    return False
