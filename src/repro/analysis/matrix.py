"""Call-transition matrices and call summaries (Definitions 4-6).

A :class:`CallSummary` is the quantitative behaviour summary of one function
(or, after aggregation, of the whole program) over a fixed
:class:`~repro.analysis.labels.LabelSpace`:

* ``trans[i, j]`` — expected number of adjacent occurrences of the call pair
  ``(label_i -> label_j)`` per execution of the function (the paper's
  transition probability :math:`P^{cf}_{ij}`, Definition 4, generalized to
  expected counts so loop iterations add mass the way dynamic traces do);
* ``entry[i]`` — probability that ``label_i`` is the *first* call emitted;
* ``exit[i]`` — probability that ``label_i`` is the *last* call emitted;
* ``passthrough`` — probability that the function emits no call at all.

These summaries compose: a call site to function ``g`` inside ``f`` splices
``g``'s summary into ``f``'s, which is exactly the paper's "aggregation of
call transitions" (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .labels import LabelSpace


@dataclass
class CallSummary:
    """Behaviour summary of a function or program over a label space."""

    space: LabelSpace
    trans: np.ndarray
    entry: np.ndarray
    exit: np.ndarray
    passthrough: float

    @classmethod
    def empty(cls, space: LabelSpace) -> "CallSummary":
        """A summary that emits nothing (pure pass-through)."""
        n = len(space)
        return cls(
            space=space,
            trans=np.zeros((n, n)),
            entry=np.zeros(n),
            exit=np.zeros(n),
            passthrough=1.0,
        )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self, atol: float = 1e-6) -> None:
        """Check conservation invariants; raise :class:`AnalysisError` if broken.

        ``entry`` plus ``passthrough`` must account for (at most) all paths,
        and the exit mass must match the emitting mass.  "At most" because a
        non-terminating cycle without calls may legitimately drop a sliver
        of mass at the fixpoint tolerance.
        """
        n = len(self.space)
        if self.trans.shape != (n, n) or self.entry.shape != (n,) or self.exit.shape != (n,):
            raise AnalysisError("summary arrays do not match label space size")
        if np.any(self.trans < -atol) or np.any(self.entry < -atol) or np.any(self.exit < -atol):
            raise AnalysisError("negative probability mass in summary")
        entry_total = float(self.entry.sum()) + self.passthrough
        if entry_total > 1.0 + atol:
            raise AnalysisError(f"entry mass {entry_total} exceeds 1")
        exit_total = float(self.exit.sum()) + self.passthrough
        if exit_total > 1.0 + atol:
            raise AnalysisError(f"exit mass {exit_total} exceeds 1")

    @property
    def emitting_mass(self) -> float:
        """Probability that at least one call is emitted."""
        return float(self.entry.sum())

    def active_labels(self) -> list[int]:
        """Indices of labels that carry any probability mass."""
        mask = (
            (self.entry > 0)
            | (self.exit > 0)
            | (self.trans.sum(axis=0) > 0)
            | (self.trans.sum(axis=1) > 0)
        )
        return [int(i) for i in np.flatnonzero(mask)]

    # ------------------------------------------------------------------
    # Definition 6: call-transition vectors
    # ------------------------------------------------------------------
    def transition_vector(self, index: int) -> np.ndarray:
        """Call-transition vector of ``labels[index]`` (Definition 6).

        The concatenation of the label's outgoing row and incoming column of
        the transition matrix — size ``2n``.
        """
        return np.concatenate([self.trans[index, :], self.trans[:, index]])

    def transition_vectors(self, indices: list[int] | None = None) -> np.ndarray:
        """Stack of call-transition vectors, one row per label."""
        if indices is None:
            indices = list(range(len(self.space)))
        if not indices:
            raise AnalysisError("no labels to vectorize")
        rows = self.trans[indices, :]
        cols = self.trans[:, indices].T
        return np.concatenate([rows, cols], axis=1)

    # ------------------------------------------------------------------
    # Derived stochastic forms (HMM initialization inputs)
    # ------------------------------------------------------------------
    def row_stochastic(self, smoothing: float = 0.0) -> np.ndarray:
        """Row-normalized transition matrix with additive smoothing.

        Rows with no mass become uniform — a state we know nothing about
        statically should not forbid any successor before training.

        Shape-driven (not label-space-driven) so it also works on the K×K
        arrays of a cluster-reduced summary.
        """
        n = self.trans.shape[1]
        matrix = self.trans + smoothing
        row_sums = matrix.sum(axis=1, keepdims=True)
        uniform = np.full((1, n), 1.0 / n)
        with np.errstate(invalid="ignore", divide="ignore"):
            normalized = np.where(row_sums > 0, matrix / np.where(row_sums == 0, 1, row_sums), uniform)
        return normalized

    def initial_distribution(self, smoothing: float = 0.0) -> np.ndarray:
        """Normalized entry distribution with additive smoothing."""
        vec = self.entry + smoothing
        total = vec.sum()
        if total <= 0:
            size = self.entry.shape[0]
            return np.full(size, 1.0 / size)
        return vec / total

    def copy(self) -> "CallSummary":
        return CallSummary(
            space=self.space,
            trans=self.trans.copy(),
            entry=self.entry.copy(),
            exit=self.exit.copy(),
            passthrough=self.passthrough,
        )
