"""Observation-label spaces for the static analysis and the detectors.

A *label* is what a detection model observes for one call event:

* context-insensitive models (Regular-basic, STILO) observe the bare call
  name, e.g. ``read``;
* context-sensitive models (Regular-context, CMarkov) observe the 1-level
  calling-context form ``read@sys_read`` (Section II-C of the paper).

The :class:`LabelSpace` fixes the universe of labels for one (program, call
kind, context flag) triple and provides the name <-> index mapping shared by
the call-transition matrices, the HMM alphabets, and the trace symbolizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..program.calls import CallKind
from ..program.program import Program, context_label


@dataclass(frozen=True)
class LabelSpace:
    """An ordered universe of observation labels.

    Attributes:
        kind: which call family is being modeled.
        context: whether labels carry the ``@caller`` context suffix.
        labels: sorted label strings.
    """

    kind: CallKind
    context: bool
    labels: tuple[str, ...]
    _index: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        self._index.update({label: i for i, label in enumerate(self.labels)})
        if len(self._index) != len(self.labels):
            raise AnalysisError("duplicate labels in label space")

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def index(self, label: str) -> int:
        """Index of ``label``; raises :class:`AnalysisError` when unknown."""
        try:
            return self._index[label]
        except KeyError:
            raise AnalysisError(f"label {label!r} not in label space") from None

    def get(self, label: str) -> int | None:
        """Index of ``label`` or ``None`` when unknown."""
        return self._index.get(label)

    def label_for(self, call_name: str, caller: str) -> str:
        """The observation label for a call event in this space."""
        return context_label(call_name, caller) if self.context else call_name


def build_label_space(program: Program, kind: CallKind, context: bool) -> LabelSpace:
    """Collect every statically known label of ``kind`` in ``program``.

    This corresponds to the paper's CONTEXT IDENTIFICATION operation: parse
    every function CFG, find the syscall/libcall sites, and (for the
    context-sensitive variants) attach the enclosing function name.
    """
    labels: set[str] = set()
    for function in program.iter_functions():
        for site in function.calls(kind):
            if context:
                labels.add(context_label(site.name, function.name))
            else:
                labels.add(site.name)
    if not labels:
        raise AnalysisError(f"{program.name}: no {kind.value} sites found")
    return LabelSpace(kind=kind, context=context, labels=tuple(sorted(labels)))
