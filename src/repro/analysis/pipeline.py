"""One-call driver for the full static-analysis pipeline, with timings.

``analyze_program`` runs the three static operations of the paper's workflow
(CONTEXT IDENTIFICATION, PROBABILITY FORECAST, aggregation) and records the
wall-clock cost of each — the data behind Table V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import telemetry
from ..program.calls import CallKind
from ..program.program import Program
from .aggregate import AggregationResult, aggregate_program
from .branching import UNIFORM, BranchPolicy
from .labels import LabelSpace, build_label_space
from .matrix import CallSummary
from .reachability import reachability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.cache import ArtifactCache


@dataclass
class StaticAnalysis:
    """Result of the full static pipeline for one (program, kind, context).

    Attributes:
        result: the aggregation result (summaries, label space, call graph).
        timings_s: seconds spent per stage: ``cfg_construction`` (CFG parse /
            validation + reachability probabilities, the paper's "CFG
            construction + probability estimation" stages) and
            ``aggregation`` (summary inlining across the call graph).
    """

    result: AggregationResult
    timings_s: dict[str, float] = field(default_factory=dict)

    @property
    def space(self) -> LabelSpace:
        return self.result.space

    @property
    def program_summary(self) -> CallSummary:
        return self.result.program_summary


def analyze_program(
    program: Program,
    kind: CallKind,
    context: bool,
    policy: BranchPolicy = UNIFORM,
    cache: "ArtifactCache | None" = None,
) -> StaticAnalysis:
    """Run the static pipeline and time each stage.

    Args:
        cache: optional :class:`repro.runtime.ArtifactCache`.  The analysis
            is keyed by the program's structural fingerprint plus (kind,
            context, policy); a hit returns the stored result — including
            the timings measured when it was first computed — instead of
            re-running the pipeline.

    Returns:
        A :class:`StaticAnalysis` whose ``program_summary`` initializes the
        HMM and whose ``timings_s`` feed the Table V benchmark.
    """
    key = None
    if cache is not None:
        from ..runtime.cache import program_fingerprint

        key = cache.key(
            artifact="static_analysis",
            program=program_fingerprint(program),
            kind=kind.value,
            context=context,
            policy=policy,
        )
        cached = cache.get_object(key)
        if isinstance(cached, StaticAnalysis):
            telemetry.counter_add("analysis.cache_hits")
            return cached

    timings: dict[str, float] = {}

    with telemetry.span(
        "analysis.pipeline", program=program.name, kind=kind.value, context=context
    ):
        telemetry.counter_add("analysis.runs")

        start = time.perf_counter()
        with telemetry.span("analysis.context_identification"):
            program.validate()
            space = build_label_space(program, kind, context)
        timings["context_identification"] = time.perf_counter() - start

        start = time.perf_counter()
        with telemetry.span("analysis.probability_estimation"):
            for function in program.iter_functions():
                reachability(function)
        timings["probability_estimation"] = time.perf_counter() - start

        start = time.perf_counter()
        with telemetry.span("analysis.aggregation"):
            result = aggregate_program(
                program, kind, context, space=space, policy=policy
            )
        timings["aggregation"] = time.perf_counter() - start

    analysis = StaticAnalysis(result=result, timings_s=timings)
    if cache is not None and key is not None:
        cache.put_object(key, analysis)
    return analysis
