"""Function summarization: call-pair transition mass via label propagation.

This implements the paper's PROBABILITY FORECAST (Definitions 4-5,
Equation 2) and the aggregation splice in a single mechanism.  For one
function CFG we propagate, top-down from the entry, a *state vector* over
``labels + ⊥``:

    state[l] = probability mass of paths whose most recent emitted call is l
    state[⊥] = mass of paths that have emitted no call yet

Each block applies a linear transform to its incoming state:

* a plain block forwards the state unchanged;
* a block calling an observable label ``l`` moves *all* mass to ``l`` —
  and, at the fixpoint, contributes ``state[a]`` to the pair ``(a -> l)``
  (exactly Equation 2's reachability-times-path-product, summed over
  call-free paths) and ``state[⊥]`` to the function's entry distribution;
* a block calling an internal function splices the callee's
  :class:`~repro.analysis.matrix.CallSummary` in place: incoming mass flows
  into the callee's entry distribution, the callee's internal transition
  mass is added, and the outgoing state mixes the callee's exit
  distribution with its pass-through.

Cycles are handled by iterating the linear propagation to a fixpoint (see
:mod:`repro.analysis.reachability` for why this converges and why expected
counts are the faithful semantics for trace-trained models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..program.calls import CallKind
from ..program.cfg import FunctionCFG
from .branching import UNIFORM, BranchPolicy, edge_probabilities
from .labels import LabelSpace
from .matrix import CallSummary
from .reachability import DEFAULT_MAX_SWEEPS, DEFAULT_TOL


@dataclass(frozen=True)
class _BlockRole:
    """Pre-resolved behaviour of one block for the propagation pass."""

    kind: str  # "plain" | "emit" | "splice"
    label_index: int = -1
    callee: CallSummary | None = None


def _resolve_roles(
    cfg: FunctionCFG,
    space: LabelSpace,
    callee_summaries: dict[str, CallSummary],
) -> dict[int, _BlockRole]:
    roles: dict[int, _BlockRole] = {}
    for block_id, block in cfg.blocks.items():
        site = block.call
        if site is None:
            roles[block_id] = _BlockRole("plain")
        elif site.kind is space.kind:
            label = space.label_for(site.name, cfg.name)
            index = space.get(label)
            if index is None:
                raise AnalysisError(
                    f"{cfg.name}: label {label!r} missing from label space"
                )
            roles[block_id] = _BlockRole("emit", label_index=index)
        elif site.kind is CallKind.INTERNAL and site.name in callee_summaries:
            roles[block_id] = _BlockRole("splice", callee=callee_summaries[site.name])
        else:
            # Observable call of the other kind, or an internal call with no
            # summary (recursive edge / unanalyzed callee): call-free here.
            roles[block_id] = _BlockRole("plain")
    return roles


def _apply_block(role: _BlockRole, state: np.ndarray) -> np.ndarray:
    """The per-block linear transform O = T(I). ``state[-1]`` is ⊥."""
    if role.kind == "plain":
        return state
    if role.kind == "emit":
        out = np.zeros_like(state)
        out[role.label_index] = state.sum()
        return out
    callee = role.callee
    assert callee is not None
    out = np.empty_like(state)
    total = state.sum()
    out[:-1] = total * callee.exit + callee.passthrough * state[:-1]
    out[-1] = callee.passthrough * state[-1]
    return out


def summarize_function(
    cfg: FunctionCFG,
    space: LabelSpace,
    callee_summaries: dict[str, CallSummary] | None = None,
    tol: float = DEFAULT_TOL,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    policy: BranchPolicy = UNIFORM,
) -> CallSummary:
    """Compute the :class:`CallSummary` of ``cfg`` over ``space``.

    Args:
        cfg: the function's control-flow graph.
        space: global label space of the analysis.
        callee_summaries: summaries for internal callees to splice in.  Pass
            ``None`` (or ``{}``) to get the *local* per-function matrix of
            Definition 5, where internal calls are treated as call-free.
        tol: fixpoint tolerance.
        max_sweeps: iteration cap; exceeded only by non-leaking cycles.
        policy: branch-probability policy (Definition 2); defaults to the
            paper's uniform distribution.

    Returns:
        The function's summary: transition mass, entry/exit distributions,
        and pass-through probability.
    """
    callee_summaries = callee_summaries or {}
    roles = _resolve_roles(cfg, space, callee_summaries)
    cond = edge_probabilities(cfg, policy)
    order = cfg.forward_topological_order()
    position = {block: i for i, block in enumerate(order)}
    n = len(space)
    bot = n

    incoming: dict[int, np.ndarray] = {b: np.zeros(n + 1) for b in cfg.blocks}

    for _ in range(max_sweeps):
        new_in: dict[int, np.ndarray] = {b: np.zeros(n + 1) for b in cfg.blocks}
        new_in[cfg.entry][bot] = 1.0
        # Jacobi step for back edges: use the previous iterate's outflow.
        for block in cfg.blocks:
            succs = cfg.successors(block)
            if not succs:
                continue
            has_back = any(
                not _forward(position, block, dst) for dst in succs
            )
            if not has_back:
                continue
            outflow = _apply_block(roles[block], incoming[block])
            for dst in succs:
                if not _forward(position, block, dst):
                    new_in[dst] += outflow * cond[(block, dst)]
        # Gauss-Seidel over the acyclic skeleton: forward chains settle now.
        for block in order:
            outflow = _apply_block(roles[block], new_in[block])
            for dst in cfg.successors(block):
                if _forward(position, block, dst):
                    new_in[dst] += outflow * cond[(block, dst)]
        delta = max(
            float(np.max(np.abs(new_in[b] - incoming[b]))) for b in cfg.blocks
        )
        incoming = new_in
        if delta < tol:
            break
    else:
        raise AnalysisError(
            f"{cfg.name}: summary fixpoint did not converge in {max_sweeps} sweeps"
        )

    # Accumulation pass at the fixpoint.
    trans = np.zeros((n, n))
    entry = np.zeros(n)
    exit_ = np.zeros(n)
    passthrough = 0.0
    for block in cfg.blocks:
        role = roles[block]
        state = incoming[block]
        if role.kind == "emit":
            label = role.label_index
            trans[:, label] += state[:-1]
            entry[label] += state[bot]
        elif role.kind == "splice":
            callee = role.callee
            assert callee is not None
            trans += np.outer(state[:-1], callee.entry)
            entry += state[bot] * callee.entry
            trans += state.sum() * callee.trans
        if not cfg.successors(block):  # function exit
            outflow = _apply_block(role, state)
            exit_ += outflow[:-1]
            passthrough += outflow[bot]

    summary = CallSummary(
        space=space, trans=trans, entry=entry, exit=exit_, passthrough=passthrough
    )
    summary.validate()
    return summary


def _forward(position: dict[int, int], src: int, dst: int) -> bool:
    src_pos = position.get(src)
    dst_pos = position.get(dst)
    if src_pos is None or dst_pos is None:
        return False
    return src_pos < dst_pos
