"""Conditional and reachability probabilities (Definitions 2-3, Equation 1).

The PROBABILITY FORECAST operation starts from two per-CFG quantities:

* the *conditional probability* ``P[n_j | n_i]`` of each edge — our
  prototype, like the paper's, uses a uniform distribution over a node's
  successors (branch-prediction heuristics could refine this);
* the *reachability probability* of each node — the likelihood that the
  function's control flow reaches it, propagated top-down from the entry
  (Equation 1).

Loops make Equation 1 circular, so we compute the fixpoint of the linear
propagation instead of cutting back edges.  Under uniform branching every
cycle leaks probability through its exit edge, so the iteration converges
geometrically; the resulting value is the *expected number of visits* to a
node, which coincides with Definition 3 on acyclic graphs and is the right
weighting for call-pair counts observed in dynamic traces.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..program.cfg import FunctionCFG
from .branching import UNIFORM, BranchPolicy, edge_probabilities

#: Default fixpoint tolerance for probability propagation.
DEFAULT_TOL = 1e-12
#: Default sweep cap.  Leaky cycles converge geometrically with ratio equal
#: to the loop-continuation probability; a strongly loop-biased policy
#: (e.g. 0.99) needs log(tol)/log(0.99) ≈ 2750 sweeps, so the cap is set
#: well above that.  Only a non-leaking (infinite) cycle exhausts it.
DEFAULT_MAX_SWEEPS = 5000


def conditional_probabilities(cfg: FunctionCFG) -> dict[tuple[int, int], float]:
    """Edge -> conditional probability, uniform over each node's successors."""
    probs: dict[tuple[int, int], float] = {}
    for block_id in cfg.blocks:
        successors = cfg.successors(block_id)
        if not successors:
            continue
        share = 1.0 / len(successors)
        for dst in successors:
            probs[(block_id, dst)] = share
    return probs


def reachability(
    cfg: FunctionCFG,
    tol: float = DEFAULT_TOL,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    policy: BranchPolicy = UNIFORM,
) -> dict[int, float]:
    """Expected visit count of each block, entry = 1 (Equation 1 fixpoint).

    Raises:
        AnalysisError: when the propagation fails to converge, which means
            the CFG contains a cycle that cannot leak probability — a
            structurally infinite loop.
    """
    order = cfg.forward_topological_order()
    position = {block: i for i, block in enumerate(order)}
    cond = edge_probabilities(cfg, policy)
    visits = {block: 0.0 for block in cfg.blocks}
    entry = cfg.entry

    for _ in range(max_sweeps):
        new_visits = {block: 0.0 for block in cfg.blocks}
        new_visits[entry] = 1.0
        # Back-edge (and unreachable-source) contributions feed from the
        # previous iterate: a Jacobi step over the cyclic part.
        for block in cfg.blocks:
            for dst in cfg.successors(block):
                if not _is_forward(position, block, dst):
                    new_visits[dst] += visits[block] * cond[(block, dst)]
        # Forward edges resolve within the sweep (Gauss-Seidel over the
        # acyclic skeleton), so straight-line chains settle in one pass.
        for block in order:
            inflow = new_visits[block]
            for dst in cfg.successors(block):
                if _is_forward(position, block, dst):
                    new_visits[dst] += inflow * cond[(block, dst)]
        delta = max(abs(new_visits[b] - visits[b]) for b in cfg.blocks)
        visits = new_visits
        if delta < tol:
            return visits
    raise AnalysisError(
        f"{cfg.name}: reachability fixpoint did not converge in {max_sweeps} sweeps"
    )


def _is_forward(position: dict[int, int], src: int, dst: int) -> bool:
    """True when ``src -> dst`` respects the quasi-topological order."""
    src_pos = position.get(src)
    dst_pos = position.get(dst)
    if src_pos is None or dst_pos is None:
        return False
    return src_pos < dst_pos
