"""Per-session sticky state: the multi-tenant half of the service.

A *session* is one trace stream (one monitored process / tenant).  Sessions
are sticky: monitor sessions keep their sliding window and cooldown, stream
sessions keep their HMM filtering distribution, across every micro-batch
drain.  Requests from different sessions share a drain's forward pass;
state never leaks between sessions.

Shed symbols leave *gaps*: when admission control drops a monitor/stream
submission, that symbol never reaches the session's sliding window or
filtering distribution, so later scores are computed over a discontinuous
stream.  The session records this (:attr:`Session.gaps`) and every
subsequent ``Scored``/``Streamed`` outcome carries ``gap=True`` until
:meth:`Session.reset`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.detector import Detector
from ..core.monitor import OnlineMonitor
from ..core.streaming import StreamingScorer
from ..errors import ServiceError


class SessionMode(enum.Enum):
    """How a session's submissions are interpreted."""

    #: Client submits complete windows; stateless per session.
    WINDOW = "window"
    #: Client submits raw symbols; the service maintains the sliding
    #: window and alert cooldown (an :class:`OnlineMonitor` per session).
    MONITOR = "monitor"
    #: Client submits raw symbols; the service maintains the incremental
    #: forward filter (a :class:`StreamingScorer` per session).
    STREAM = "stream"


@dataclass
class Session:
    """Sticky state for one (detector, session id) pair."""

    session_id: str
    detector_name: str
    mode: SessionMode
    monitor: OnlineMonitor | None = None
    scorer: StreamingScorer | None = None
    #: Symbols shed from this stream by admission control — nonzero means
    #: the sticky state no longer covers a contiguous slice of the trace.
    gaps: int = 0

    @classmethod
    def open(
        cls,
        session_id: str,
        detector_name: str,
        detector: Detector,
        mode: SessionMode,
        window: int,
        threshold: float | None,
    ) -> "Session":
        monitor = None
        scorer = None
        if mode is SessionMode.MONITOR:
            if threshold is None:
                raise ServiceError(
                    f"monitor sessions need an operating threshold; register "
                    f"detector {detector_name!r} with threshold=..."
                )
            monitor = OnlineMonitor(
                detector, threshold=threshold, segment_length=window
            )
        elif mode is SessionMode.STREAM:
            scorer = StreamingScorer.for_detector(detector, window=window)
        return cls(
            session_id=session_id,
            detector_name=detector_name,
            mode=mode,
            monitor=monitor,
            scorer=scorer,
        )

    def note_gap(self) -> None:
        """Record one lost symbol (no-op for stateless window sessions).

        Besides marking every later outcome ``gap=True``, a monitor
        session discards its sliding window: a window spanning the gap
        never occurred in the monitored process, so scoring it would
        fabricate transitions (:meth:`OnlineMonitor.break_window`).
        Stream sessions keep their forward filter — it marginalizes over
        the unobserved symbols instead of inventing adjacency.
        """
        if self.mode is SessionMode.WINDOW:
            return
        self.gaps += 1
        if self.monitor is not None:
            self.monitor.break_window()

    def swap_detector(self, detector: Detector) -> None:
        """Rebind this session's sticky state to a warm-swapped detector.

        The session survives a model upgrade without being dropped or
        gap-marked — the stream stayed contiguous; only the scoring model
        changed at the swap barrier:

        * **window** sessions are stateless — nothing to rebind;
        * **monitor** sessions keep their sliding symbol window and alert
          cooldown; windows completing after the barrier score under the
          new model (a window symbol outside the new alphabet fails that
          request alone, exactly like any unknown symbol);
        * **stream** sessions keep their recent-surprisal window (so
          ``windowed_score`` stays continuous across the swap) but restart
          the forward filter from the new model's initial distribution —
          the old belief vector is over the *old* model's hidden states
          and cannot be carried across a retrain.
        """
        if self.monitor is not None:
            self.monitor.rebind(detector)
        if self.scorer is not None:
            self.scorer.rebind(detector.model)

    def reset(self) -> None:
        """Clear stream/monitor state (monitored process restarted)."""
        if self.monitor is not None:
            self.monitor.reset()
        if self.scorer is not None:
            self.scorer.reset()
        self.gaps = 0
