"""Shared-memory publication of HMM parameters for multi-process serving.

A sharded deployment runs one :class:`~repro.service.service.DetectionService`
per worker process.  The parameter matrices of a served model — transition,
emission, initial — are read-only after training, yet naive process fan-out
pickles a private copy into every worker (N × the fleet's parameter bytes,
plus serialization time on every spawn/restart).  This module publishes each
model **once** into a :class:`multiprocessing.shared_memory.SharedMemory`
segment and hands workers a tiny picklable :class:`SharedModelSpec`; the
worker side attaches zero-copy ``numpy`` views over the same physical pages.

Lifecycle is refcounted on the publishing side:

* :meth:`SharedModelStore.publish` maps a model into one segment (publishing
  the *same* model object again bumps a refcount instead of re-copying);
* :meth:`SharedModelStore.release` drops one reference and unlinks the
  segment when the count reaches zero;
* :meth:`SharedModelStore.close` force-releases everything — the service
  calls this on shutdown so no segment outlives the deployment.

Workers call :func:`attach_model` / :meth:`ModelAttachment.close` and never
unlink: the publisher owns the segment's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from ..errors import ServiceError
from ..hmm.model import HiddenMarkovModel

__all__ = [
    "ModelAttachment",
    "SharedModelSpec",
    "SharedModelStore",
    "attach_model",
]

#: All three parameter matrices are published as C-contiguous float64 —
#: exactly the dtype :class:`HiddenMarkovModel` normalizes to, so attach is
#: a reinterpretation, never a conversion.
_DTYPE = np.float64


@dataclass(frozen=True)
class SharedModelSpec:
    """A picklable handle to one published model (sent to workers).

    Everything needed to rebuild a :class:`HiddenMarkovModel` view without
    touching the publisher again: the segment name, the array shapes, and
    the (small, string) alphabet metadata that rides along in the pickle.
    """

    segment: str
    n_states: int
    n_symbols: int
    symbols: tuple[str, ...]
    state_labels: tuple[str, ...] | None = None

    @property
    def nbytes(self) -> int:
        """Total payload size of the segment's three arrays."""
        n, m = self.n_states, self.n_symbols
        return (n * n + n * m + n) * np.dtype(_DTYPE).itemsize

    def offsets(self) -> Iterator[tuple[str, tuple[int, ...], int]]:
        """Yield ``(array_name, shape, byte_offset)`` in segment order."""
        n, m = self.n_states, self.n_symbols
        itemsize = np.dtype(_DTYPE).itemsize
        offset = 0
        for name, shape in (
            ("transition", (n, n)),
            ("emission", (n, m)),
            ("initial", (n,)),
        ):
            yield name, shape, offset
            offset += int(np.prod(shape)) * itemsize


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On Python < 3.13 every ``SharedMemory(name=...)`` *attach* also
    registers the segment with the resource tracker, which then unlinks it
    when any attaching process exits — yanking the segment out from under
    every other process (bpo-39959).  Worse, forked workers share the
    publisher's tracker daemon, so attach-side register/unregister pairs
    race each other and clobber the publisher's own registration.  Fix at
    the source: suppress registration for the duration of the attach (the
    3.13+ ``track=False`` parameter, emulated).  The publishing process
    keeps its registration, so crashed deployments still get cleaned up.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    try:  # pragma: no cover - exercised only on pre-3.13 interpreters
        resource_tracker.register = lambda *args, **kwargs: None
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass
class ModelAttachment:
    """A worker-side zero-copy view of a published model.

    Holds the :class:`SharedMemory` handle open for as long as the model's
    arrays are alive — the arrays are views into the mapping, so closing
    the handle early would invalidate them.
    """

    model: HiddenMarkovModel
    _shm: shared_memory.SharedMemory = field(repr=False)

    def close(self) -> None:
        """Drop this process's mapping (never unlinks the segment).

        Safe to call with model views still alive only at process exit;
        a ``BufferError`` from live exports is swallowed because the OS
        reclaims the mapping when the worker dies anyway.
        """
        try:
            self._shm.close()
        except BufferError:  # views still exported; OS cleans up on exit
            pass


def attach_model(spec: SharedModelSpec) -> ModelAttachment:
    """Map a published model into this process, zero-copy.

    The returned model's arrays are read-only views over the shared pages
    (``writeable=False`` — a worker scribbling on shared weights would
    corrupt every sibling shard at once).
    """
    try:
        shm = _open_untracked(spec.segment)
    except FileNotFoundError as exc:
        raise ServiceError(
            f"shared model segment {spec.segment!r} does not exist "
            "(publisher gone or already released)"
        ) from exc
    views = {}
    for name, shape, offset in spec.offsets():
        view = np.ndarray(shape, dtype=_DTYPE, buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    model = HiddenMarkovModel(
        transition=views["transition"],
        emission=views["emission"],
        initial=views["initial"],
        symbols=spec.symbols,
        state_labels=spec.state_labels,
    )
    return ModelAttachment(model=model, _shm=shm)


class SharedModelStore:
    """Publisher-side registry of shared segments with refcounted cleanup.

    One store per sharded service.  Segments are keyed by the identity of
    the published model object: registering the same model under several
    detector names (or to several shards) shares one segment.
    """

    def __init__(self) -> None:
        #: id(model) -> [spec, SharedMemory, refcount]
        self._segments: dict[int, list] = {}

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        """Published payload bytes (what a pickled fan-out would duplicate
        per worker)."""
        return sum(entry[0].nbytes for entry in self._segments.values())

    def publish(self, model: HiddenMarkovModel) -> SharedModelSpec:
        """Map ``model``'s arrays into shared memory (or bump its refcount).

        The copy into the segment happens exactly once per distinct model
        object, no matter how many detectors or shards reference it.
        """
        entry = self._segments.get(id(model))
        if entry is not None:
            entry[2] += 1
            return entry[0]
        spec_shapeless = SharedModelSpec(
            segment="",
            n_states=model.n_states,
            n_symbols=model.n_symbols,
            symbols=tuple(model.symbols),
            state_labels=tuple(model.state_labels)
            if model.state_labels is not None
            else None,
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, spec_shapeless.nbytes)
        )
        spec = SharedModelSpec(
            segment=shm.name,
            n_states=spec_shapeless.n_states,
            n_symbols=spec_shapeless.n_symbols,
            symbols=spec_shapeless.symbols,
            state_labels=spec_shapeless.state_labels,
        )
        for name, shape, offset in spec.offsets():
            view = np.ndarray(shape, dtype=_DTYPE, buffer=shm.buf, offset=offset)
            np.copyto(view, np.ascontiguousarray(getattr(model, name), dtype=_DTYPE))
        self._segments[id(model)] = [spec, shm, 1]
        return spec

    def refcount(self, model: HiddenMarkovModel) -> int:
        entry = self._segments.get(id(model))
        return entry[2] if entry is not None else 0

    def release(self, model: HiddenMarkovModel) -> None:
        """Drop one reference; unlink the segment at refcount zero."""
        entry = self._segments.get(id(model))
        if entry is None:
            raise ServiceError("model is not published in this store")
        entry[2] -= 1
        if entry[2] <= 0:
            del self._segments[id(model)]
            self._destroy(entry[1])

    def close(self) -> None:
        """Force-release every segment (service shutdown)."""
        segments = list(self._segments.values())
        self._segments.clear()
        for _, shm, _ in segments:
            self._destroy(shm)

    @staticmethod
    def _destroy(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - publisher holds no views
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
