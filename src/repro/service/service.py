"""The detection service: many sessions, a fleet of detectors, one batcher.

:class:`DetectionService` is the deployment front door the paper's Section V
points at ("offline/parallel evaluation" of 15-call windows): concurrent
trace streams (*sessions*) submit windows or raw symbols against pretrained
detectors; a micro-batching scheduler drains each detector's bounded queue
and scores every ready window of a drain in **one** vectorized forward
pass.  Admission control sheds load with typed
:class:`~repro.service.outcomes.Overloaded` outcomes instead of blocking or
dropping.

Two deployment shapes:

* **synchronous** — call :meth:`DetectionService.pump` (or
  :meth:`drain_pending`) from your own loop; tickets resolve before pump
  returns.  Deterministic; what the tests and benchmarks drive.
* **threaded** — :meth:`start` launches a background drain loop; tickets
  resolve as the loop gets to them, and the loop survives scoring errors
  (a crashed drain resolves its tickets ``Failed`` and keeps going).
  ``submit`` never waits for a *future* batch, but it does share one
  service lock with the drain, so a producer can block for up to one
  in-flight micro-batch's forward pass.  :meth:`close` stops the loop and
  (by default) gracefully drains everything still queued.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import telemetry
from ..core.detector import Detector
from ..errors import NotFittedError, ServiceError
from ..hmm.model import HiddenMarkovModel
from .config import ServiceConfig
from .outcomes import Overloaded, ShedReason, Ticket
from .scheduler import DetectorLane, MicroBatchScheduler, PendingRequest
from .sessions import Session, SessionMode

log = logging.getLogger(__name__)


@dataclass
class ServiceStats:
    """Aggregate counters for one service instance (all detectors)."""

    submitted: int = 0
    scored: int = 0
    streamed: int = 0
    absorbed: int = 0
    failed: int = 0
    shed_queue_full: int = 0
    shed_oldest: int = 0
    shed_deadline: int = 0
    shed_shutdown: int = 0
    batches: int = 0
    max_batch_size: int = 0
    max_depth_seen: int = 0
    _shed_counter: dict = field(default_factory=dict, repr=False)

    @property
    def shed_total(self) -> int:
        return (
            self.shed_queue_full
            + self.shed_oldest
            + self.shed_deadline
            + self.shed_shutdown
        )

    @property
    def shed_rate(self) -> float:
        """Shed requests as a fraction of submissions (0 when idle)."""
        return self.shed_total / self.submitted if self.submitted else 0.0

    def count_shed(self, reason: ShedReason) -> None:
        attr = f"shed_{reason.value}".replace("shed_shed_", "shed_")
        setattr(self, attr, getattr(self, attr) + 1)
        telemetry.counter_add(f"service.shed.{reason.value}")

    def count_failed(self) -> None:
        self.failed += 1
        telemetry.counter_add("service.failed")

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.max_batch_size = max(self.max_batch_size, size)
        telemetry.counter_add("service.batches")

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "scored": self.scored,
            "streamed": self.streamed,
            "absorbed": self.absorbed,
            "failed": self.failed,
            "shed_queue_full": self.shed_queue_full,
            "shed_oldest": self.shed_oldest,
            "shed_deadline": self.shed_deadline,
            "shed_shutdown": self.shed_shutdown,
            "shed_total": self.shed_total,
            "shed_rate": self.shed_rate,
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "max_depth_seen": self.max_depth_seen,
        }


class DetectionService:
    """Micro-batched, multi-tenant scoring over a fleet of detectors.

    Args:
        config: batching/queueing knobs (:class:`ServiceConfig`).
        clock: monotonic time source; injectable so tests can steer the
            latency budget deterministically.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock
        self.stats = ServiceStats()
        self._lanes: dict[str, DetectorLane] = {}
        self._sessions: dict[tuple[str, str], Session] = {}
        self._scheduler = MicroBatchScheduler(self.config, clock)
        self._lock = threading.RLock()
        self._closed = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Fleet registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        detector: Detector,
        threshold: float | None = None,
        window: int | None = None,
    ) -> None:
        """Add a fitted detector to the fleet under ``name``.

        Args:
            name: routing key used by :meth:`submit` / :meth:`open_session`.
            detector: a fitted (or pretrained-loaded) detector.
            threshold: operating threshold; required for monitor sessions,
                and when present every :class:`Scored` outcome carries the
                ``score < threshold`` verdict.
            window: sliding-window length for monitor/stream sessions
                (defaults to ``config.default_window``).
        """
        if not detector.is_fitted:
            raise NotFittedError(
                f"detector {name!r} is not fitted; the service only scores"
            )
        # Fail at the door, not at drain time: the scheduler's batched
        # forward pass needs an HMM (mirrors StreamingScorer.for_detector).
        if not isinstance(getattr(detector, "model", None), HiddenMarkovModel):
            raise ServiceError(
                f"detector {name!r} exposes no HiddenMarkovModel via .model; "
                "the micro-batched service scores HMM-backed detectors only "
                "(n-gram/ensemble baselines are not servable)"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if name in self._lanes:
                raise ServiceError(f"detector {name!r} already registered")
            self._lanes[name] = DetectorLane(
                name=name,
                detector=detector,
                threshold=threshold,
                window=window if window is not None else self.config.default_window,
            )

    def register_fleet(
        self, detectors: Mapping[str, Detector], thresholds: Mapping[str, float] | None = None
    ) -> None:
        """Register many detectors at once (e.g. from
        :func:`repro.service.fleet.load_fleet`)."""
        thresholds = thresholds or {}
        for name, detector in detectors.items():
            self.register(name, detector, threshold=thresholds.get(name))

    def swap_detector(self, name: str, detector: Detector) -> int:
        """Warm-swap a retrained detector into a live lane.

        The **swap barrier**: the lane's queue is drained to empty first,
        so every window admitted before the swap scores bit-identically to
        what the pre-swap detector would have produced; only requests
        admitted after the barrier see the new model.  Open sessions are
        rebound in place (:meth:`Session.swap_detector`) — they are neither
        dropped nor gap-marked, because no symbol of their stream was lost.

        Returns how many pending requests the barrier drain resolved.

        Same validation as :meth:`register`; the lane's threshold and
        window settings are retained (operating points outlive retrains —
        re-register to change them).
        """
        if not detector.is_fitted:
            raise NotFittedError(
                f"detector {name!r} is not fitted; the service only scores"
            )
        if not isinstance(getattr(detector, "model", None), HiddenMarkovModel):
            raise ServiceError(
                f"detector {name!r} exposes no HiddenMarkovModel via .model; "
                "the micro-batched service scores HMM-backed detectors only "
                "(n-gram/ensemble baselines are not servable)"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            lane = self._lane(name)
            drained = 0
            while lane.queue:
                drained += self._scheduler.drain(lane, self.stats)
            lane.detector = detector
            for (detector_name, _), session in self._sessions.items():
                if detector_name == name:
                    session.swap_detector(detector)
            telemetry.counter_add("service.swaps")
            return drained

    @property
    def detectors(self) -> tuple[str, ...]:
        return tuple(self._lanes)

    def queue_depth(self, name: str) -> int:
        return self._lane(name).depth

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        detector: str,
        session_id: str,
        mode: SessionMode | str = SessionMode.WINDOW,
    ) -> Session:
        """Open (or fetch) the sticky session for ``(detector, session_id)``.

        Window-mode sessions are implicit — submitting a window creates
        one — but monitor/stream sessions must be opened so their sticky
        state (sliding window, filtering distribution) exists before the
        first symbol.
        """
        mode = SessionMode(mode)
        lane = self._lane(detector)
        key = (detector, session_id)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                if existing.mode is not mode:
                    raise ServiceError(
                        f"session {session_id!r} on {detector!r} is open in "
                        f"{existing.mode.value} mode, not {mode.value}"
                    )
                return existing
            session = Session.open(
                session_id=session_id,
                detector_name=detector,
                detector=lane.detector,
                mode=mode,
                window=lane.window,
                threshold=lane.threshold,
            )
            self._sessions[key] = session
            return session

    def close_session(self, detector: str, session_id: str) -> bool:
        """Discard the sticky state for ``(detector, session_id)``.

        Returns whether a session existed.  Requests already queued for the
        session still resolve normally — they hold their own reference —
        but the next ``open_session`` for this id starts fresh.
        """
        self._lane(detector)  # unknown detector raises, mirroring open
        with self._lock:
            return self._sessions.pop((detector, session_id), None) is not None

    def note_gap(self, detector: str, session_id: str, count: int = 1) -> None:
        """Report ``count`` lost symbols on an open monitor/stream session.

        Admission-control sheds mark gaps internally; this is the same
        path for losses the *collector* knows about — a dropped audit
        buffer, lossy transport, or (in the robustness harness) an
        attacker suppressing events.  Every subsequent outcome on the
        session carries ``gap=True``, so downstream consumers can tell a
        verdict over a discontinuous stream from a clean one.
        """
        if count < 1:
            raise ServiceError("note_gap count must be >= 1")
        lane = self._lane(detector)
        with self._lock:
            session = self._sessions.get((detector, session_id))
            if session is None or session.mode is SessionMode.WINDOW:
                raise ServiceError(
                    f"session {session_id!r} on {detector!r} is not an open "
                    "monitor/stream session; gaps apply to symbol streams"
                )
            # Order barrier: symbols submitted before the gap are still
            # queued; drain them into the session first so the gap lands
            # at its true position in the stream (same barrier as
            # swap_detector).
            while lane.queue:
                self._scheduler.drain(lane, self.stats)
            for _ in range(count):
                session.note_gap()
            telemetry.counter_add("service.gaps.reported", count)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        detector: str,
        session_id: str,
        *,
        window: Sequence[str] | None = None,
        symbol: str | None = None,
    ) -> Ticket:
        """Enqueue one scoring request; returns its :class:`Ticket`.

        Exactly one of ``window`` (window-mode sessions) or ``symbol``
        (monitor/stream sessions) must be given.  The ticket resolves at
        the request's drain — immediately under admission-control shed.
        """
        if (window is None) == (symbol is None):
            raise ServiceError("submit takes exactly one of window= or symbol=")
        lane = self._lane(detector)
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            key = (detector, session_id)
            session = self._sessions.get(key)
            if session is None:
                if symbol is not None:
                    raise ServiceError(
                        f"session {session_id!r} on {detector!r} is not open; "
                        "open_session(..., mode='monitor'|'stream') before "
                        "submitting symbols"
                    )
                session = self.open_session(detector, session_id, SessionMode.WINDOW)
            if window is not None and session.mode is not SessionMode.WINDOW:
                raise ServiceError(
                    f"session {session_id!r} is a {session.mode.value} session; "
                    "submit symbol=... instead of window=..."
                )
            if symbol is not None and session.mode is SessionMode.WINDOW:
                raise ServiceError(
                    f"session {session_id!r} is a window session; "
                    "submit window=... instead of symbol=..."
                )
            ticket = Ticket()
            request = PendingRequest(
                ticket=ticket,
                session=session,
                enqueued_at=self.clock(),
                window=tuple(window) if window is not None else None,
                symbol=symbol,
            )
            self.stats.submitted += 1
            telemetry.counter_add("service.submitted")
            shed = lane.admit(request, self.config)
            if shed is not None:
                reason = (
                    ShedReason.QUEUE_FULL
                    if shed is request
                    else ShedReason.SHED_OLDEST
                )
                self.stats.count_shed(reason)
            self.stats.max_depth_seen = max(self.stats.max_depth_seen, lane.depth)
            telemetry.gauge_set(f"service.queue.depth.{detector}", lane.depth)
            return ticket

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pump(self, detector: str | None = None) -> int:
        """Run one drain round; returns how many requests were resolved.

        One round drains up to ``config.max_batch`` requests per lane —
        every lane, or just ``detector``'s.  With
        ``config.cross_detector_batching`` (the default) an all-lanes
        round runs as one *fused* drain: same-shape detectors' windows
        score through a single batched contraction
        (:meth:`MicroBatchScheduler.drain_many`), bit-identical to — and
        several times cheaper than — the per-lane loop it replaces.
        Single-lane pumps (and the swap barrier) keep the per-lane path.
        """
        with self._lock:
            if detector is not None:
                return self._scheduler.drain(self._lane(detector), self.stats)
            lanes = list(self._lanes.values())
            if self.config.cross_detector_batching and len(lanes) > 1:
                return self._scheduler.drain_many(lanes, self.stats)
            return sum(self._scheduler.drain(lane, self.stats) for lane in lanes)

    def drain_pending(self) -> int:
        """Pump until every queue is empty; returns total resolved."""
        total = 0
        while True:
            resolved = self.pump()
            if resolved == 0:
                return total
            total += resolved

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(lane.depth for lane in self._lanes.values())

    # ------------------------------------------------------------------
    # Threaded deployment + shutdown
    # ------------------------------------------------------------------
    def start(self, interval_s: float = 0.001) -> None:
        """Launch the background drain loop (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, args=(interval_s,), name="repro-service", daemon=True
            )
            self._thread.start()

    def _run(self, interval_s: float) -> None:
        while not self._stop.is_set():
            try:
                resolved = self.pump()
            except Exception:
                # drain() already resolved its popped tickets Failed; keep
                # the loop alive so the rest of the backlog still drains
                # (possibly also as Failed) instead of hanging forever.
                log.exception("service drain loop: drain crashed; continuing")
                telemetry.counter_add("service.drain_errors")
                continue
            if resolved == 0:
                # Idle: sleep a beat instead of spinning.
                self._stop.wait(interval_s)

    def close(self, drain: bool = True) -> int:
        """Shut down; returns how many pending requests were handled.

        ``drain=True`` (graceful) scores everything still queued before
        refusing new work; ``drain=False`` resolves the backlog with
        ``Overloaded(SHUTDOWN)`` so no ticket is ever left hanging.
        """
        with self._lock:
            if self._closed:
                return 0
            thread = self._thread
            self._stop.set()
        if thread is not None:
            thread.join()
        with self._lock:
            self._thread = None
            handled = 0
            if drain:
                # Keep draining even if a batch crashes: drain() resolves
                # its popped tickets Failed before raising, so every loop
                # iteration makes progress and no ticket is left hanging.
                while True:
                    try:
                        resolved = self.pump()
                    except Exception:
                        log.exception("close(): drain crashed; continuing")
                        continue
                    if resolved == 0:
                        break
                    handled += resolved
            else:
                for lane in self._lanes.values():
                    while lane.queue:
                        request = lane.queue.popleft()
                        request.session.note_gap()
                        request.ticket._resolve(
                            Overloaded(
                                detector=lane.name,
                                session=request.session.session_id,
                                reason=ShedReason.SHUTDOWN,
                                depth=lane.depth,
                                queued_s=max(
                                    0.0, self.clock() - request.enqueued_at
                                ),
                            )
                        )
                        self.stats.count_shed(ShedReason.SHUTDOWN)
                        handled += 1
            self._closed = True
            return handled

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lane(self, name: str) -> DetectorLane:
        lane = self._lanes.get(name)
        if lane is None:
            raise ServiceError(
                f"no detector {name!r} registered; have {sorted(self._lanes)}"
            )
        return lane


def create_service(
    config: ServiceConfig | None = None,
    *,
    shards: int = 1,
    shard_config=None,
):
    """Build the right service for a shard count.

    ``shards=1`` (and no explicit shard config) returns a plain in-process
    :class:`DetectionService` — zero process overhead, today's exact
    behavior.  Anything else returns a
    :class:`~repro.service.sharded.ShardedDetectionService` fanning the
    identical API out over worker processes (a 1-shard sharded service is
    still bit-identical to the in-process one; it just pays one worker).

    Args:
        config: per-service (per-shard, when sharded) batching knobs.
        shards: worker-process count; ignored when ``shard_config`` is given.
        shard_config: a full :class:`~repro.service.config.ShardConfig` for
            routing/restart knobs beyond the count.
    """
    if shard_config is None and shards == 1:
        return DetectionService(config)
    from .config import ShardConfig
    from .sharded import ShardedDetectionService

    if shard_config is None:
        shard_config = ShardConfig(shards=shards)
    return ShardedDetectionService(config, shard_config)
