"""Process-sharded detection service with shared-memory model weights.

:class:`ShardedDetectionService` scales the single-process
:class:`~repro.service.service.DetectionService` across CPU cores without
changing its semantics: N worker processes each run today's micro-batch
drain loop *unchanged* over their own bounded lanes, and a thin parent-side
router assigns every session to exactly one shard by **consistent hashing
of the session id** — so sticky monitor/stream state lives in one place and
never migrates mid-stream.  The whole :class:`ServiceConfig` travels to
each worker, so the cross-detector fused drain
(``cross_detector_batching``, see
:meth:`repro.service.scheduler.MicroBatchScheduler.drain_many`) runs
inside every shard exactly as in-process: each worker's pump round scores
its same-shape lanes through one batched contraction.

What crosses the process boundary is deliberately small:

* **model parameters never travel** — ``register`` publishes each HMM once
  through a :class:`~repro.service.shm.SharedModelStore` and workers attach
  the same physical pages zero-copy (see :mod:`repro.service.shm`);
* submissions go down a duplex pipe as compact tuples; resolved outcomes
  (the same typed :mod:`~repro.service.outcomes` dataclasses) stream back
  and resolve the parent-side :class:`~repro.service.outcomes.Ticket`.

Semantics preserved across the boundary:

* **single-shard bit-identity** — at ``shards=1`` every submission reaches
  one worker in submission order, drains through an unmodified
  ``DetectionService`` under the same config, and scores bit-identical to
  the in-process service (gated by ``benchmarks/bench_service_sharded.py``
  in CI);
* **no stranded tickets** — a worker that crashes (or is SIGKILLed)
  resolves every in-flight ticket of its shard as a typed
  :class:`~repro.service.outcomes.Failed` outcome from the parent, bumps
  ``service.shard.crashes``, and (by default) a replacement shard respawns
  with the fleet re-registered from shared memory and previously open
  monitor/stream sessions re-opened gap-marked;
* **mergeable telemetry** — each worker records into its own registry and
  the parent folds the snapshots back through the associative/commutative
  :func:`repro.telemetry.merge_snapshot` semantics, so fleet-wide counters
  (submitted / scored / shed / failed) equal a single-process run's.

Unlike the in-process service, admission sheds resolve when their outcome
is *collected* (during ``pump``/``drain_pending``/``close`` or the
``start()`` loop), not synchronously inside ``submit`` — always drain
before reading tickets, exactly like the synchronous deployment shape.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import logging
import multiprocessing
import threading
from dataclasses import dataclass, field

from typing import Mapping, Sequence

from .. import telemetry
from ..core.detector import Detector
from ..errors import NotFittedError, ServiceError
from ..hmm.model import HiddenMarkovModel
from .config import ServiceConfig, ShardConfig
from .fleet import rebuild_detector
from .outcomes import Failed, Ticket
from .service import DetectionService, ServiceStats
from .sessions import SessionMode
from .shm import ModelAttachment, SharedModelSpec, SharedModelStore, attach_model

log = logging.getLogger(__name__)

__all__ = [
    "HashRing",
    "RemoteSession",
    "ShardedDetectionService",
    "ShardedServiceStats",
    "merge_stats_dicts",
]


# ---------------------------------------------------------------------------
# Consistent-hash routing
# ---------------------------------------------------------------------------


def _ring_hash(key: str) -> int:
    """Deterministic 64-bit point (independent of PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent session→shard routing.

    Each shard owns ``virtual_nodes`` points on a 64-bit ring; a key routes
    to the first point clockwise.  Changing the shard count remaps only the
    keys whose arc changed owner (≈ ``1/shards`` of them), which is what
    keeps cross-deployment session placement stable as a fleet grows.
    """

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        if shards <= 0:
            raise ServiceError("HashRing needs at least one shard")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        points = [
            (_ring_hash(f"shard:{shard}:vnode:{vnode}"), shard)
            for shard in range(shards)
            for vnode in range(virtual_nodes)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def route(self, key: str) -> int:
        """The shard owning ``key`` (deterministic across processes/runs)."""
        index = bisect.bisect_right(self._points, _ring_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass
class ShardedServiceStats(ServiceStats):
    """Fleet-wide counters: shard stats merged + parent-side crash counts."""

    shard_crashes: int = 0

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["shard_crashes"] = self.shard_crashes
        return payload


def merge_stats_dicts(
    stats_dicts: Sequence[Mapping],
    shard_crashes: int = 0,
    crash_failed: int = 0,
) -> ShardedServiceStats:
    """Fold per-shard ``ServiceStats.as_dict()`` payloads into fleet totals.

    Associative and commutative like the telemetry snapshot merge: counters
    sum, high-water marks take the max, and the derived rates recompute
    from the merged counters — so the fleet-wide view equals what one
    process counting everything would have recorded.
    """
    merged = ShardedServiceStats(shard_crashes=shard_crashes)
    for stats in stats_dicts:
        merged.submitted += stats["submitted"]
        merged.scored += stats["scored"]
        merged.streamed += stats["streamed"]
        merged.absorbed += stats["absorbed"]
        merged.failed += stats["failed"]
        merged.shed_queue_full += stats["shed_queue_full"]
        merged.shed_oldest += stats["shed_oldest"]
        merged.shed_deadline += stats["shed_deadline"]
        merged.shed_shutdown += stats["shed_shutdown"]
        merged.batches += stats["batches"]
        merged.max_batch_size = max(merged.max_batch_size, stats["max_batch_size"])
        merged.max_depth_seen = max(merged.max_depth_seen, stats["max_depth_seen"])
    merged.failed += crash_failed
    return merged


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _sweep_resolved(conn, pending: dict) -> None:
    """Ship every resolved worker-side ticket back to the parent."""
    done = [
        (req_id, ticket.result(timeout=0))
        for req_id, ticket in pending.items()
        if ticket.done()
    ]
    if done:
        for req_id, _ in done:
            del pending[req_id]
        conn.send(("outcomes", done))


def _drain_all(service: DetectionService) -> int:
    """Pump until empty, surviving drain crashes (same loop as close())."""
    total = 0
    while True:
        try:
            resolved = service.pump()
        except Exception:
            log.exception("shard drain crashed; continuing")
            continue
        if resolved == 0:
            return total
        total += resolved


def _shard_worker_main(
    parent_conn,
    conn,
    shard_index: int,
    config: ServiceConfig,
    telemetry_on: bool,
) -> None:
    """One shard: an unmodified :class:`DetectionService` driven over a pipe.

    The command loop is strictly FIFO — outcomes for a command flush before
    its ack, so by the time the parent sees ``pumped``/``drained``/``closed``
    every ticket that round resolved is already resolved parent-side too.
    """
    if parent_conn is not None:
        parent_conn.close()  # the fork duplicated the parent's end; drop it
    if telemetry_on:
        # Fresh registry even under fork: the parent's inherited counts must
        # not double-merge, and each snapshot we send must be a clean delta.
        telemetry.enable()
    else:
        telemetry.disable()
    service = DetectionService(config)
    pending: dict[int, Ticket] = {}
    #: detector name -> live ModelAttachment (replaced on warm-swap).
    attachments: dict[str, ModelAttachment] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent is gone; nothing to serve
                break
            kind = message[0]
            if kind == "submit":
                for req_id, detector, session_id, window, symbol in message[1]:
                    try:
                        if window is not None:
                            ticket = service.submit(
                                detector, session_id, window=window
                            )
                        else:
                            ticket = service.submit(
                                detector, session_id, symbol=symbol
                            )
                    except Exception as exc:  # parent pre-validates; backstop
                        conn.send(
                            (
                                "outcomes",
                                [
                                    (
                                        req_id,
                                        Failed(
                                            detector=detector,
                                            session=session_id,
                                            error=f"{type(exc).__name__}: {exc}",
                                        ),
                                    )
                                ],
                            )
                        )
                    else:
                        pending[req_id] = ticket
                _sweep_resolved(conn, pending)  # admission sheds resolve now
            elif kind == "pump":
                try:
                    resolved = service.pump(message[1])
                except Exception:
                    # drain() already resolved its popped tickets Failed.
                    log.exception("shard pump crashed; tickets resolved Failed")
                    resolved = 0
                _sweep_resolved(conn, pending)
                conn.send(("pumped", resolved))
            elif kind == "drain":
                resolved = _drain_all(service)
                _sweep_resolved(conn, pending)
                conn.send(("drained", resolved))
            elif kind == "register":
                _, name, spec, threshold, window, kind_value, context, det_name = (
                    message
                )
                try:
                    attachment = attach_model(spec)
                    detector = rebuild_detector(
                        attachment.model,
                        kind=kind_value,
                        context=context,
                        name=det_name,
                    )
                    service.register(
                        name, detector, threshold=threshold, window=window
                    )
                except Exception as exc:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                else:
                    attachments[name] = attachment
                    conn.send(("ok",))
            elif kind == "swap":
                _, name, spec, kind_value, context, det_name = message
                attachment = None
                try:
                    attachment = attach_model(spec)
                    detector = rebuild_detector(
                        attachment.model,
                        kind=kind_value,
                        context=context,
                        name=det_name,
                    )
                    drained = service.swap_detector(name, detector)
                except Exception as exc:
                    if attachment is not None:
                        attachment.close()
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                else:
                    # The barrier drain scored the lane's backlog under the
                    # old model; ship those outcomes before acking so the
                    # parent resolves every pre-swap ticket first.
                    old = attachments.get(name)
                    attachments[name] = attachment
                    if old is not None:
                        old.close()
                    _sweep_resolved(conn, pending)
                    conn.send(("swapped", drained))
            elif kind == "open_session":
                _, detector, session_id, mode_value, pre_gapped = message
                try:
                    session = service.open_session(
                        detector, session_id, SessionMode(mode_value)
                    )
                    if pre_gapped:
                        # Replacement shard after a crash: the sticky state
                        # restarts empty, so the stream is discontinuous.
                        session.note_gap()
                except Exception as exc:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok",))
            elif kind == "close_session":
                _, detector, session_id = message
                try:
                    existed = service.close_session(detector, session_id)
                except Exception as exc:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", existed))
            elif kind == "stats":
                conn.send(("stats", service.stats.as_dict()))
            elif kind == "telemetry":
                if telemetry_on:
                    snap = telemetry.snapshot()
                    telemetry.enable()  # reset: every delta merges exactly once
                else:
                    snap = None
                conn.send(("telemetry", snap))
            elif kind == "close":
                handled = service.close(drain=message[1])
                _sweep_resolved(conn, pending)
                snap = telemetry.snapshot() if telemetry_on else None
                conn.send(("closed", handled, service.stats.as_dict(), snap))
                break
            else:  # pragma: no cover - protocol invariant
                conn.send(("error", f"unknown command {kind!r}"))
    finally:
        for attachment in attachments.values():
            attachment.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Parent-side plumbing
# ---------------------------------------------------------------------------


class _ShardDied(Exception):
    """Internal: the worker process is gone; reroute to crash handling."""


@dataclass
class _Inflight:
    ticket: Ticket
    detector: str
    session_id: str


@dataclass
class _ShardHandle:
    index: int
    process: multiprocessing.process.BaseProcess
    conn: object
    inflight: dict[int, _Inflight] = field(default_factory=dict)
    pending_acks: int = 0
    alive: bool = True


@dataclass(frozen=True)
class RemoteSession:
    """Parent-side descriptor of a session living inside one shard."""

    session_id: str
    detector_name: str
    mode: SessionMode
    shard: int


@dataclass
class _Registration:
    """Everything needed to (re)register one detector into any shard."""

    spec: SharedModelSpec
    model: HiddenMarkovModel
    threshold: float | None
    window: int | None
    kind_value: str
    context: bool | None
    detector_name: str | None


class ShardedDetectionService:
    """The :class:`DetectionService` API, fanned out over worker processes.

    Same registration/submission/outcome surface as the in-process service;
    see the module docstring for what changes (outcome collection timing)
    and what is guaranteed (bit-identity at one shard, no stranded tickets,
    mergeable counters).

    Args:
        config: per-shard batching/queueing knobs (each worker's
            ``DetectionService`` gets this exact config, so one shard
            behaves precisely like today's service).
        shard_config: process fan-out knobs (:class:`ShardConfig`).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        shard_config: ShardConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.shard_config = shard_config or ShardConfig()
        self._ring = HashRing(
            self.shard_config.shards, self.shard_config.virtual_nodes
        )
        self._store = SharedModelStore()
        self._registrations: dict[str, _Registration] = {}
        self._sessions: dict[tuple[str, str], RemoteSession] = {}
        self._gapped: set[tuple[str, str]] = set()
        self._routes: dict[str, int] = {}
        self._req_ids = itertools.count()
        self._lock = threading.RLock()
        self._closed = False
        self._closing = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._shard_crashes = 0
        self._crash_failed = 0
        self._final_worker_stats: list[dict] = []
        self._final_stats: ShardedServiceStats | None = None
        method = self.shard_config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(method)
        self._handles: list[_ShardHandle] = [
            self._spawn(index) for index in range(self.shard_config.shards)
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _ShardHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(parent_conn, child_conn, index, self.config, telemetry.enabled()),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _ShardHandle(index=index, process=process, conn=parent_conn)

    def _restart(self, index: int) -> None:
        """Respawn a crashed shard and rebuild its fleet + session surface."""
        handle = self._spawn(index)
        self._handles[index] = handle
        try:
            for name, registration in self._registrations.items():
                self._register_into(handle, name, registration)
            for (detector, session_id), session in self._sessions.items():
                if session.shard != index or session.mode is SessionMode.WINDOW:
                    continue
                self._request(
                    handle,
                    ("open_session", detector, session_id, session.mode.value, True),
                    "ok",
                )
                self._gapped.add((detector, session_id))
        except _ShardDied:
            # The replacement died during rebuild: degrade instead of
            # respawning again, or an instantly-crashing worker would spin
            # the parent in a fork loop.
            self._on_shard_death(handle, restart=False)

    def _on_shard_death(self, handle: _ShardHandle, restart: bool = True) -> None:
        """Resolve the dead shard's in-flight tickets and (maybe) respawn.

        Extends the no-stranded-tickets invariant across the process
        boundary: every submission routed to the dead worker resolves as a
        typed :class:`Failed` outcome naming the crash.
        """
        if not handle.alive:
            return
        handle.alive = False
        pid = handle.process.pid
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        handle.process.join(timeout=1.0)
        for entry in handle.inflight.values():
            if not entry.ticket.done():
                entry.ticket._resolve(
                    Failed(
                        detector=entry.detector,
                        session=entry.session_id,
                        error=(
                            f"shard {handle.index} worker (pid {pid}) died "
                            "with this request in flight"
                        ),
                    )
                )
                self._crash_failed += 1
            self._gapped.add((entry.detector, entry.session_id))
        handle.inflight.clear()
        handle.pending_acks = 0
        self._shard_crashes += 1
        telemetry.counter_add("service.shard.crashes")
        respawn = (
            restart
            and self.shard_config.restart_crashed_shards
            and not self._closing
        )
        log.error(
            "shard %d worker (pid %s) died; %s",
            handle.index,
            pid,
            "restarting" if respawn else "degrading (no restart)",
        )
        if respawn:
            self._restart(handle.index)

    def _handle_for(self, shard: int) -> _ShardHandle:
        handle = self._handles[shard]
        if not handle.alive:
            raise ServiceError(
                f"shard {shard} is down (worker crashed and "
                "restart_crashed_shards is off); surviving shards still serve"
            )
        return handle

    # ------------------------------------------------------------------
    # Pipe protocol (parent side)
    # ------------------------------------------------------------------
    def _recv(self, handle: _ShardHandle):
        """Blocking receive that notices a dead worker instead of hanging."""
        while True:
            try:
                if handle.conn.poll(0.05):
                    return handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise _ShardDied from exc
            if not handle.process.is_alive():
                # One final poll: the reply may already sit in the buffer.
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError) as exc:
                    raise _ShardDied from exc
                raise _ShardDied

    def _dispatch(self, handle: _ShardHandle, message) -> int:
        """Apply one worker message; returns resolved-by-drain count."""
        kind = message[0]
        if kind == "outcomes":
            for req_id, outcome in message[1]:
                entry = handle.inflight.pop(req_id, None)
                if entry is not None and not entry.ticket.done():
                    entry.ticket._resolve(outcome)
            return 0
        if kind in ("pumped", "drained"):
            handle.pending_acks -= 1
            return message[1]
        raise ServiceError(
            f"unexpected message {kind!r} from shard {handle.index}"
        )

    def _collect_ready(self, handle: _ShardHandle) -> int:
        """Drain every message already buffered on one shard's pipe."""
        total = 0
        try:
            while handle.conn.poll(0):
                total += self._dispatch(handle, handle.conn.recv())
        except (EOFError, OSError):
            self._on_shard_death(handle)
        return total

    def _request(self, handle: _ShardHandle, message, want: str):
        """Send one command and block for its ack, absorbing outcome
        messages (and stale pump acks) that arrive first."""
        handle.conn.send(message)
        while True:
            reply = self._recv(handle)
            kind = reply[0]
            if kind == want:
                return reply
            if kind == "error":
                raise ServiceError(
                    f"shard {handle.index}: {reply[1]}"
                )
            self._dispatch(handle, reply)

    def _register_into(
        self, handle: _ShardHandle, name: str, registration: _Registration
    ) -> None:
        self._request(
            handle,
            (
                "register",
                name,
                registration.spec,
                registration.threshold,
                registration.window,
                registration.kind_value,
                registration.context,
                registration.detector_name,
            ),
            "ok",
        )

    # ------------------------------------------------------------------
    # Fleet registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        detector: Detector,
        threshold: float | None = None,
        window: int | None = None,
    ) -> None:
        """Publish the detector's model once and register it in every shard.

        Mirrors :meth:`DetectionService.register` — same validation, same
        lane semantics per shard — but ships a
        :class:`~repro.service.shm.SharedModelSpec` instead of parameters.
        """
        if not detector.is_fitted:
            raise NotFittedError(
                f"detector {name!r} is not fitted; the service only scores"
            )
        model = getattr(detector, "model", None)
        if not isinstance(model, HiddenMarkovModel):
            raise ServiceError(
                f"detector {name!r} exposes no HiddenMarkovModel via .model; "
                "the micro-batched service scores HMM-backed detectors only "
                "(n-gram/ensemble baselines are not servable)"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if name in self._registrations:
                raise ServiceError(f"detector {name!r} already registered")
            spec = self._store.publish(model)
            registration = _Registration(
                spec=spec,
                model=model,
                threshold=threshold,
                window=window,
                kind_value=getattr(detector, "kind", None).value
                if getattr(detector, "kind", None) is not None
                else "syscall",
                context=getattr(detector, "context", None),
                detector_name=getattr(detector, "name", None),
            )
            for handle in self._handles:
                if not handle.alive:
                    continue
                try:
                    self._register_into(handle, name, registration)
                except _ShardDied:
                    self._on_shard_death(handle)
            self._registrations[name] = registration

    def register_fleet(
        self,
        detectors: Mapping[str, Detector],
        thresholds: Mapping[str, float] | None = None,
    ) -> None:
        """Register many detectors at once (e.g. from
        :func:`repro.service.fleet.load_fleet`)."""
        thresholds = thresholds or {}
        for name, detector in detectors.items():
            self.register(name, detector, threshold=thresholds.get(name))

    def swap_detector(self, name: str, detector: Detector) -> int:
        """Warm-swap a retrained detector into every live shard.

        Mirrors :meth:`DetectionService.swap_detector` across the process
        boundary: the new model is published once through the
        :class:`~repro.service.shm.SharedModelStore`, each worker drains
        its lane to empty under the *old* model (the swap barrier — every
        pre-swap ticket resolves bit-identical to the pre-swap detector)
        and then rebinds the lane and its open sessions in place.  No
        session is dropped or gap-marked, and the parent-side registration
        is updated **before** any worker swaps, so a shard that crashes and
        restarts mid-swap re-resolves the new weights — never a stale copy.

        Returns how many pending requests the barrier drains resolved
        across the fleet.  The old model's shared segment is released once
        every live shard has swapped.
        """
        if not detector.is_fitted:
            raise NotFittedError(
                f"detector {name!r} is not fitted; the service only scores"
            )
        model = getattr(detector, "model", None)
        if not isinstance(model, HiddenMarkovModel):
            raise ServiceError(
                f"detector {name!r} exposes no HiddenMarkovModel via .model; "
                "the micro-batched service scores HMM-backed detectors only "
                "(n-gram/ensemble baselines are not servable)"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            old = self._registrations.get(name)
            if old is None:
                raise ServiceError(
                    f"no detector {name!r} registered; "
                    f"have {sorted(self._registrations)}"
                )
            spec = self._store.publish(model)
            registration = _Registration(
                spec=spec,
                model=model,
                threshold=old.threshold,
                window=old.window,
                kind_value=getattr(detector, "kind", None).value
                if getattr(detector, "kind", None) is not None
                else old.kind_value,
                context=getattr(detector, "context", None),
                detector_name=getattr(detector, "name", None),
            )
            # Registration first: a crash-restart from here on rebuilds the
            # shard with the new weights, not the superseded ones.
            self._registrations[name] = registration
            drained = 0
            for handle in list(self._handles):
                if not handle.alive:
                    continue
                try:
                    reply = self._request(
                        handle,
                        (
                            "swap",
                            name,
                            spec,
                            registration.kind_value,
                            registration.context,
                            registration.detector_name,
                        ),
                        "swapped",
                    )
                    drained += reply[1]
                except _ShardDied:
                    self._on_shard_death(handle)
            if old.model is not model:
                try:
                    self._store.release(old.model)
                except ServiceError:  # pragma: no cover - already released
                    pass
            telemetry.counter_add("service.swaps")
            return drained

    @property
    def detectors(self) -> tuple[str, ...]:
        return tuple(self._registrations)

    @property
    def shards(self) -> int:
        return self.shard_config.shards

    @property
    def live_shards(self) -> int:
        return sum(1 for handle in self._handles if handle.alive)

    def shard_of(self, session_id: str) -> int:
        """Which shard a session routes to (consistent, cached)."""
        shard = self._routes.get(session_id)
        if shard is None:
            shard = self._ring.route(session_id)
            self._routes[session_id] = shard
        return shard

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        detector: str,
        session_id: str,
        mode: SessionMode | str = SessionMode.WINDOW,
    ) -> RemoteSession:
        """Open (or fetch) the sticky session on its home shard.

        Same contract as :meth:`DetectionService.open_session`, but the
        sticky state lives inside the worker; the returned
        :class:`RemoteSession` is a descriptor, not the state itself.
        """
        mode = SessionMode(mode)
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if detector not in self._registrations:
                raise ServiceError(
                    f"no detector {detector!r} registered; "
                    f"have {sorted(self._registrations)}"
                )
            key = (detector, session_id)
            existing = self._sessions.get(key)
            if existing is not None:
                if existing.mode is not mode:
                    raise ServiceError(
                        f"session {session_id!r} on {detector!r} is open in "
                        f"{existing.mode.value} mode, not {mode.value}"
                    )
                return existing
            shard = self.shard_of(session_id)
            handle = self._handle_for(shard)
            if mode is not SessionMode.WINDOW:
                try:
                    self._request(
                        handle,
                        ("open_session", detector, session_id, mode.value, False),
                        "ok",
                    )
                except _ShardDied:
                    self._on_shard_death(handle)
                    raise ServiceError(
                        f"shard {shard} died while opening session "
                        f"{session_id!r}"
                    ) from None
            session = RemoteSession(
                session_id=session_id,
                detector_name=detector,
                mode=mode,
                shard=shard,
            )
            self._sessions[key] = session
            return session

    def session_gapped(self, detector: str, session_id: str) -> bool:
        """Whether the parent knows this session's stream is discontinuous
        (a shed or a shard crash touched it)."""
        return (detector, session_id) in self._gapped

    def close_session(self, detector: str, session_id: str) -> bool:
        """Discard the session parent-side and on its home shard.

        Same contract as :meth:`DetectionService.close_session`; a closed
        session is also dropped from the crash-restart re-open list, so a
        restarted shard will not resurrect it.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if detector not in self._registrations:
                raise ServiceError(
                    f"no detector {detector!r} registered; "
                    f"have {sorted(self._registrations)}"
                )
            key = (detector, session_id)
            session = self._sessions.pop(key, None)
            if session is None:
                return False
            self._gapped.discard(key)
            if session.mode is not SessionMode.WINDOW:
                shard = self.shard_of(session_id)
                handle = self._handles[shard]
                if handle.alive:
                    try:
                        self._request(
                            handle, ("close_session", detector, session_id), "ok"
                        )
                    except _ShardDied:
                        self._on_shard_death(handle)
            return True

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _validate_submission(
        self, detector: str, session_id: str, window, symbol
    ) -> None:
        """The same front-door checks DetectionService.submit makes, so
        misuse raises synchronously here instead of Failed-ing remotely."""
        if (window is None) == (symbol is None):
            raise ServiceError("submit takes exactly one of window= or symbol=")
        if detector not in self._registrations:
            raise ServiceError(
                f"no detector {detector!r} registered; "
                f"have {sorted(self._registrations)}"
            )
        key = (detector, session_id)
        session = self._sessions.get(key)
        if session is None:
            if symbol is not None:
                raise ServiceError(
                    f"session {session_id!r} on {detector!r} is not open; "
                    "open_session(..., mode='monitor'|'stream') before "
                    "submitting symbols"
                )
            self._sessions[key] = RemoteSession(
                session_id=session_id,
                detector_name=detector,
                mode=SessionMode.WINDOW,
                shard=self.shard_of(session_id),
            )
        elif window is not None and session.mode is not SessionMode.WINDOW:
            raise ServiceError(
                f"session {session_id!r} is a {session.mode.value} session; "
                "submit symbol=... instead of window=..."
            )
        elif symbol is not None and session.mode is SessionMode.WINDOW:
            raise ServiceError(
                f"session {session_id!r} is a window session; "
                "submit window=... instead of symbol=..."
            )

    def submit(
        self,
        detector: str,
        session_id: str,
        *,
        window: Sequence[str] | None = None,
        symbol: str | None = None,
    ) -> Ticket:
        """Route one request to its session's shard; returns its ticket.

        The ticket resolves when its outcome is collected back from the
        worker — during :meth:`pump` / :meth:`drain_pending` /
        :meth:`close`, or continuously under :meth:`start`.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            self._validate_submission(detector, session_id, window, symbol)
            shard = self.shard_of(session_id)
            handle = self._handle_for(shard)
            self._collect_ready(handle)
            if not handle.alive:
                # Collection noticed a crash; the registry now holds either
                # a freshly-restarted replacement or a tombstone.
                handle = self._handle_for(shard)
            ticket = Ticket()
            req_id = next(self._req_ids)
            handle.inflight[req_id] = _Inflight(
                ticket=ticket, detector=detector, session_id=session_id
            )
            item = (
                req_id,
                detector,
                session_id,
                tuple(window) if window is not None else None,
                symbol,
            )
            self._send_submissions(handle, [item])
            return ticket

    def submit_many(
        self,
        detector: str,
        windows: Sequence[tuple[str, Sequence[str]]],
    ) -> list[Ticket]:
        """Bulk window submission: one pipe message per shard, not per
        request.  ``windows`` is ``[(session_id, window), ...]``; tickets
        return in submission order."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            # Phase 1 — validate everything (and check the target shards are
            # up) before creating any ticket, so a rejected call leaves no
            # in-flight bookkeeping behind.
            routes: list[int] = []
            for session_id, window in windows:
                self._validate_submission(detector, session_id, window, None)
                shard = self.shard_of(session_id)
                self._handle_for(shard)
                routes.append(shard)
            # Phase 2 — enqueue + send; a crash from here on resolves its
            # shard's tickets Failed instead of raising.
            tickets: list[Ticket] = []
            by_shard: dict[int, list] = {}
            for (session_id, window), shard in zip(windows, routes):
                handle = self._handles[shard]
                ticket = Ticket()
                req_id = next(self._req_ids)
                handle.inflight[req_id] = _Inflight(
                    ticket=ticket, detector=detector, session_id=session_id
                )
                by_shard.setdefault(shard, []).append(
                    (req_id, detector, session_id, tuple(window), None)
                )
                tickets.append(ticket)
            for shard, items in by_shard.items():
                handle = self._handles[shard]
                if handle.alive:
                    self._collect_ready(handle)
                if handle.alive:
                    self._send_submissions(handle, items)
            return tickets

    def _send_submissions(self, handle: _ShardHandle, items: list) -> None:
        if not handle.process.is_alive():
            self._on_shard_death(handle)
            return
        try:
            handle.conn.send(("submit", items))
        except (BrokenPipeError, OSError):
            self._on_shard_death(handle)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pump(self, detector: str | None = None) -> int:
        """One drain round on **every live shard, concurrently** — each
        worker drains its own lanes in parallel while the parent collects.
        Returns how many requests the drains resolved."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if detector is not None and detector not in self._registrations:
                raise ServiceError(
                    f"no detector {detector!r} registered; "
                    f"have {sorted(self._registrations)}"
                )
            live = [handle for handle in self._handles if handle.alive]
            for handle in live:  # broadcast first: shards drain in parallel
                try:
                    handle.conn.send(("pump", detector))
                    handle.pending_acks += 1
                except (BrokenPipeError, OSError):
                    self._on_shard_death(handle)
            total = 0
            for handle in live:
                while handle.alive and handle.pending_acks > 0:
                    try:
                        total += self._dispatch(handle, self._recv(handle))
                    except _ShardDied:
                        self._on_shard_death(handle)
            return total

    def drain_pending(self) -> int:
        """Pump until every shard's queues are empty; returns total
        resolved (admission sheds collected along the way don't count,
        matching :meth:`DetectionService.drain_pending`)."""
        total = 0
        while True:
            resolved = self.pump()
            if resolved == 0:
                return total
            total += resolved

    @property
    def pending(self) -> int:
        """Submissions whose outcome has not been collected yet."""
        with self._lock:
            return sum(len(handle.inflight) for handle in self._handles)

    # ------------------------------------------------------------------
    # Threaded deployment + shutdown
    # ------------------------------------------------------------------
    def start(self, interval_s: float = 0.001) -> None:
        """Launch the background pump loop (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                args=(interval_s,),
                name="repro-sharded-service",
                daemon=True,
            )
            self._thread.start()

    def _run(self, interval_s: float) -> None:
        while not self._stop.is_set():
            try:
                resolved = self.pump()
            except ServiceError:
                return  # closed under us
            except Exception:
                log.exception("sharded pump loop: round crashed; continuing")
                telemetry.counter_add("service.drain_errors")
                continue
            if resolved == 0:
                self._stop.wait(interval_s)

    def close(self, drain: bool = True) -> int:
        """Shut every shard down; returns how many pending requests were
        handled (scored under ``drain=True``, shed ``SHUTDOWN`` otherwise).

        Merges each worker's final stats and telemetry snapshot back into
        the parent before the process exits, releases every shared-memory
        segment, and resolves any ticket a dying worker left behind as
        :class:`Failed` — the invariant survives shutdown too.
        """
        with self._lock:
            if self._closed:
                return 0
            self._closing = True
            thread = self._thread
            self._stop.set()
        if thread is not None:
            thread.join()
        with self._lock:
            self._thread = None
            handled = 0
            for handle in self._handles:
                if not handle.alive:
                    continue
                try:
                    reply = self._request(handle, ("close", drain), "closed")
                except _ShardDied:
                    self._on_shard_death(handle)
                    continue
                _, shard_handled, stats_dict, snap = reply
                handled += shard_handled
                self._final_worker_stats.append(stats_dict)
                if snap is not None:
                    telemetry.merge_snapshot(snap)
                handle.alive = False
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
                handle.process.join(timeout=5.0)
                # Anything still inflight after a graceful close means the
                # worker lost it; never strand the ticket.
                for entry in handle.inflight.values():
                    if not entry.ticket.done():
                        entry.ticket._resolve(
                            Failed(
                                detector=entry.detector,
                                session=entry.session_id,
                                error=(
                                    f"shard {handle.index} closed without "
                                    "resolving this request"
                                ),
                            )
                        )
                        self._crash_failed += 1
                handle.inflight.clear()
            self._store.close()
            self._final_stats = merge_stats_dicts(
                self._final_worker_stats,
                shard_crashes=self._shard_crashes,
                crash_failed=self._crash_failed,
            )
            self._closed = True
            return handled

    def __enter__(self) -> "ShardedDetectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    # ------------------------------------------------------------------
    # Stats + telemetry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ShardedServiceStats:
        """Fleet-wide merged counters (live query; cached after close).

        A crashed worker takes its in-process counters with it — the
        merged view covers surviving shards plus the parent's crash
        accounting (``shard_crashes``, crash-``failed`` tickets).
        """
        with self._lock:
            if self._final_stats is not None:
                return self._final_stats
            dicts = list(self._final_worker_stats)
            for handle in self._handles:
                if not handle.alive:
                    continue
                try:
                    dicts.append(self._request(handle, ("stats",), "stats")[1])
                except _ShardDied:
                    self._on_shard_death(handle)
            return merge_stats_dicts(
                dicts,
                shard_crashes=self._shard_crashes,
                crash_failed=self._crash_failed,
            )

    def sync_telemetry(self) -> None:
        """Pull and merge each live worker's telemetry delta now.

        Close does this automatically; call it mid-flight when a scrape
        (e.g. the report command) wants fleet counters from a service that
        is still running.  Deltas reset worker-side, so merging is
        exactly-once.
        """
        with self._lock:
            for handle in self._handles:
                if not handle.alive:
                    continue
                try:
                    snap = self._request(handle, ("telemetry",), "telemetry")[1]
                except _ShardDied:
                    self._on_shard_death(handle)
                    continue
                if snap is not None:
                    telemetry.merge_snapshot(snap)
