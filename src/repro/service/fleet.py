"""Fleet loading: resolve pretrained models for the service to serve.

A deployment's models were trained elsewhere — by ``repro train``, by a
cross-validation fold, on another host — and arrive either as ``.npz``
archives or as entries already sitting in the
:class:`~repro.runtime.cache.ArtifactCache` (the same content-addressed
store training writes through).  ``load_fleet`` accepts both source
shapes::

    fleet = load_fleet(
        {
            "gzip-cmarkov": "models/gzip-cmarkov.npz",   # file path
            "sed-stilo": "cache:2f1a9c...",              # cache key
        },
        cache=ArtifactCache(Path(".cache")),
    )
    service.register_fleet(fleet)
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from ..core.detector import PretrainedDetector
from ..errors import ServiceError
from ..hmm.model import HiddenMarkovModel
from ..hmm.serialize import load_model
from ..program.calls import CallKind
from ..runtime.cache import ArtifactCache

#: Source prefix selecting an :class:`ArtifactCache` entry over a file path.
CACHE_SCHEME = "cache:"


def resolve_model(
    source: str | Path | HiddenMarkovModel,
    cache: ArtifactCache | None = None,
) -> HiddenMarkovModel:
    """Load one model from a path, a ``cache:KEY`` reference, or pass it
    through unchanged.

    Raises:
        ServiceError: for a ``cache:`` source without a cache, or a key the
            cache cannot produce (miss or corrupt entry).
    """
    if isinstance(source, HiddenMarkovModel):
        return source
    if isinstance(source, str) and source.startswith(CACHE_SCHEME):
        key = source[len(CACHE_SCHEME):]
        if cache is None:
            raise ServiceError(
                f"model source {source!r} needs an ArtifactCache (pass "
                "cache=..., or --cache-dir on the CLI)"
            )
        model = cache.get_model(key)
        if model is None:
            raise ServiceError(
                f"cache {cache.root} has no readable model under key {key!r}"
            )
        return model
    return load_model(source)


def rebuild_detector(
    model: HiddenMarkovModel,
    kind: CallKind | str = CallKind.SYSCALL,
    context: bool | None = None,
    name: str | None = None,
) -> PretrainedDetector:
    """Wrap an already-materialized model as a servable detector.

    The worker side of the sharded service's registration path: the parent
    publishes parameters through the
    :class:`~repro.service.shm.SharedModelStore`, the worker attaches the
    shared arrays zero-copy, and this puts the same ``(kind, context,
    name)`` detector identity back around them — so a shard's lane scores
    through an object indistinguishable from the one ``register`` saw.
    """
    return PretrainedDetector(model, kind=CallKind(kind), context=context, name=name)


def load_fleet(
    sources: Mapping[str, str | Path | HiddenMarkovModel],
    cache: ArtifactCache | None = None,
    kind: CallKind | str = CallKind.SYSCALL,
) -> dict[str, PretrainedDetector]:
    """Resolve a name → source mapping into ready-to-register detectors.

    Context sensitivity is inferred per model from its alphabet; every
    detector reports ``is_fitted`` True and ``trained_in_process`` False
    (see :func:`repro.api.load_pretrained`).
    """
    kind = CallKind(kind)
    return {
        name: PretrainedDetector(
            resolve_model(source, cache=cache), kind=kind, name=name
        )
        for name, source in sources.items()
    }
