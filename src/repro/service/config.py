"""Service configuration: batching, queue bounds, and admission policy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ServiceError
from ..tracing.segments import DEFAULT_SEGMENT_LENGTH


class AdmissionPolicy(enum.Enum):
    """What to do when a detector queue is at ``max_queue_depth``."""

    #: Refuse the new arrival (it resolves ``Overloaded(QUEUE_FULL)``).
    REJECT_NEW = "reject-new"
    #: Evict the oldest pending request (it resolves
    #: ``Overloaded(SHED_OLDEST)``) and admit the new one — fresher data
    #: wins, the deployment stance for live monitoring feeds.
    SHED_OLDEST = "shed-oldest"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.service.DetectionService`.

    Attributes:
        max_batch: most windows scored in one drain's forward pass; the
            drain loops until the queue is empty, so this bounds *batch
            shape*, not throughput.
        max_queue_depth: pending-request bound per detector; arrivals
            beyond it trigger ``admission_policy``.
        admission_policy: see :class:`AdmissionPolicy`.
        latency_budget_s: optional enqueue-to-score budget; requests older
            than this at drain time resolve ``Overloaded(DEADLINE)``
            instead of being scored late.
        default_window: sliding-window length for monitor/stream sessions
            (the paper's 15).
    """

    max_batch: int = 256
    max_queue_depth: int = 1024
    admission_policy: AdmissionPolicy = AdmissionPolicy.REJECT_NEW
    latency_budget_s: float | None = None
    default_window: int = DEFAULT_SEGMENT_LENGTH

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ServiceError("max_batch must be positive")
        if self.max_queue_depth <= 0:
            raise ServiceError("max_queue_depth must be positive")
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ServiceError("latency_budget_s must be positive (or None)")
        if self.default_window <= 0:
            raise ServiceError("default_window must be positive")
