"""Service configuration: batching, queue bounds, and admission policy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ServiceError
from ..tracing.segments import DEFAULT_SEGMENT_LENGTH


class AdmissionPolicy(enum.Enum):
    """What to do when a detector queue is at ``max_queue_depth``."""

    #: Refuse the new arrival (it resolves ``Overloaded(QUEUE_FULL)``).
    REJECT_NEW = "reject-new"
    #: Evict the oldest pending request (it resolves
    #: ``Overloaded(SHED_OLDEST)``) and admit the new one — fresher data
    #: wins, the deployment stance for live monitoring feeds.
    SHED_OLDEST = "shed-oldest"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.service.DetectionService`.

    Attributes:
        max_batch: most windows scored in one drain's forward pass; the
            drain loops until the queue is empty, so this bounds *batch
            shape*, not throughput.
        max_queue_depth: pending-request bound per detector; arrivals
            beyond it trigger ``admission_policy``.
        admission_policy: see :class:`AdmissionPolicy`.
        latency_budget_s: optional enqueue-to-score budget; requests older
            than this at drain time resolve ``Overloaded(DEADLINE)``
            instead of being scored late.
        default_window: sliding-window length for monitor/stream sessions
            (the paper's 15).
        cross_detector_batching: fuse one ``pump()`` round's per-lane
            drains into a single cross-detector scoring pass — same-shape
            (N, M) detectors' windows score through one batched tensor
            contraction (:func:`repro.hmm.kernels.log_likelihood_fleet`);
            mixed shapes fall back per shape group.  Outcomes are
            bit-identical to per-lane drains either way; ``False`` keeps
            the one-GEMM-sequence-per-detector behavior.  Sharded services
            inherit the flag per worker (the config travels whole).
        kernel_backend: named kernel backend
            (:mod:`repro.hmm.backends`) the drain paths score under —
            ``"numpy"`` (default behavior), ``"compiled"``, or any
            registered name.  ``None`` defers to the process default
            (``REPRO_KERNEL_BACKEND`` env, else numpy).  Selection is
            scoped to this service's drains, so two services in one
            process can run different backends; an unavailable-but-known
            backend degrades to numpy at service construction with a
            one-time ``RuntimeWarning`` (scores are bit-identical either
            way — the compiled backend is probe-gated).  Sharded services
            inherit the name per worker.
    """

    max_batch: int = 256
    max_queue_depth: int = 1024
    admission_policy: AdmissionPolicy = AdmissionPolicy.REJECT_NEW
    latency_budget_s: float | None = None
    default_window: int = DEFAULT_SEGMENT_LENGTH
    cross_detector_batching: bool = True
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ServiceError("max_batch must be positive")
        if self.max_queue_depth <= 0:
            raise ServiceError("max_queue_depth must be positive")
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ServiceError("latency_budget_s must be positive (or None)")
        if self.default_window <= 0:
            raise ServiceError("default_window must be positive")
        if self.kernel_backend is not None:
            from ..hmm import backends

            if self.kernel_backend not in backends.available_backends():
                raise ServiceError(
                    f"unknown kernel_backend {self.kernel_backend!r}; "
                    f"available: {', '.join(backends.available_backends())}"
                )


@dataclass(frozen=True)
class ShardConfig:
    """Process-sharding knobs for
    :class:`~repro.service.sharded.ShardedDetectionService`.

    Attributes:
        shards: worker-process count.  Every registered detector gets a
            lane in every shard; sessions route to one shard by consistent
            hashing of the session id, so each shard's effective admission
            limit is the per-lane ``ServiceConfig.max_queue_depth``.
        virtual_nodes: ring points per shard for the consistent-hash
            router — more points, smoother balance (and smaller remap when
            the shard count changes between deployments).
        restart_crashed_shards: respawn a worker whose process dies.  The
            replacement re-registers the fleet from the shared-memory store
            and re-opens previously opened monitor/stream sessions with
            fresh (gap-marked) sticky state.  When ``False`` the service
            degrades: submissions routed to a dead shard raise
            ``ServiceError`` while the surviving shards keep scoring.
        start_method: ``multiprocessing`` start method for workers
            (default: ``fork`` where available, else the platform default —
            the same preference :class:`repro.runtime.ParallelExecutor`
            uses).
    """

    shards: int = 1
    virtual_nodes: int = 64
    restart_crashed_shards: bool = True
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ServiceError("shards must be positive")
        if self.virtual_nodes <= 0:
            raise ServiceError("virtual_nodes must be positive")
