"""Micro-batched multi-tenant detection service.

The serving layer over the reproduction's detectors: many concurrent trace
streams (sessions) score against a fleet of pretrained models through
bounded per-detector queues, drained in micro-batches so each drain is one
vectorized forward pass — the batched hot path :mod:`repro.hmm.forward`
was built for.  Load sheds through typed
:class:`~repro.service.outcomes.Overloaded` outcomes (never silent drops),
and shutdown drains gracefully by default.

Quick start::

    from repro import api
    from repro.service import DetectionService, ServiceConfig

    service = DetectionService(ServiceConfig(max_batch=128))
    service.register("gzip", api.load_pretrained("gzip.npz"), threshold=-4.0)
    tickets = [
        service.submit("gzip", f"tenant-{i}", window=w)
        for i, w in enumerate(windows)
    ]
    service.pump()                       # one drain = one (B, 15) batch
    outcomes = [t.result() for t in tickets]

See ``docs/service.md`` for architecture, knobs, and the telemetry catalog.
"""

from .config import AdmissionPolicy, ServiceConfig
from .fleet import load_fleet, resolve_model
from .outcomes import (
    Absorbed,
    Failed,
    Overloaded,
    ScoreOutcome,
    Scored,
    ShedReason,
    Streamed,
    Ticket,
)
from .scheduler import BATCH_SIZE_BUCKETS, MicroBatchScheduler
from .service import DetectionService, ServiceStats
from .sessions import Session, SessionMode

__all__ = [
    "Absorbed",
    "AdmissionPolicy",
    "BATCH_SIZE_BUCKETS",
    "DetectionService",
    "Failed",
    "MicroBatchScheduler",
    "Overloaded",
    "ScoreOutcome",
    "Scored",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "SessionMode",
    "ShedReason",
    "Streamed",
    "Ticket",
    "load_fleet",
    "resolve_model",
]
