"""Micro-batched multi-tenant detection service.

The serving layer over the reproduction's detectors: many concurrent trace
streams (sessions) score against a fleet of pretrained models through
bounded per-detector queues, drained in micro-batches so each drain is one
vectorized forward pass — the batched hot path :mod:`repro.hmm.forward`
was built for.  Load sheds through typed
:class:`~repro.service.outcomes.Overloaded` outcomes (never silent drops),
and shutdown drains gracefully by default.

Quick start::

    from repro import api
    from repro.service import DetectionService, ServiceConfig

    service = DetectionService(ServiceConfig(max_batch=128))
    service.register("gzip", api.load_pretrained("gzip.npz"), threshold=-4.0)
    tickets = [
        service.submit("gzip", f"tenant-{i}", window=w)
        for i, w in enumerate(windows)
    ]
    service.pump()                       # one drain = one (B, 15) batch
    outcomes = [t.result() for t in tickets]

To spread the same workload over CPU cores, :func:`create_service` with
``shards > 1`` returns a :class:`~repro.service.sharded.ShardedDetectionService`
— the identical API fanned out over worker processes with shared-memory
model weights (see :mod:`repro.service.sharded`).

See ``docs/service.md`` for architecture, knobs, and the telemetry catalog.
"""

from .config import AdmissionPolicy, ServiceConfig, ShardConfig
from .fleet import load_fleet, rebuild_detector, resolve_model
from .outcomes import (
    Absorbed,
    Failed,
    Overloaded,
    ScoreOutcome,
    Scored,
    ShedReason,
    Streamed,
    Ticket,
)
from .scheduler import BATCH_SIZE_BUCKETS, MicroBatchScheduler
from .service import DetectionService, ServiceStats, create_service
from .sessions import Session, SessionMode
from .sharded import (
    HashRing,
    RemoteSession,
    ShardedDetectionService,
    ShardedServiceStats,
)
from .shm import ModelAttachment, SharedModelSpec, SharedModelStore, attach_model

__all__ = [
    "Absorbed",
    "AdmissionPolicy",
    "BATCH_SIZE_BUCKETS",
    "DetectionService",
    "Failed",
    "HashRing",
    "MicroBatchScheduler",
    "ModelAttachment",
    "Overloaded",
    "RemoteSession",
    "ScoreOutcome",
    "Scored",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "SessionMode",
    "ShardConfig",
    "ShardedDetectionService",
    "ShardedServiceStats",
    "SharedModelSpec",
    "SharedModelStore",
    "ShedReason",
    "Streamed",
    "Ticket",
    "attach_model",
    "create_service",
    "load_fleet",
    "rebuild_detector",
    "resolve_model",
]
