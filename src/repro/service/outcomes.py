"""Typed request outcomes and the ticket handed back by ``submit``.

Every accepted submission resolves to exactly one outcome — the service
never drops a request silently:

* :class:`Scored` — a complete window was scored (window/monitor modes);
* :class:`Streamed` — one symbol's incremental surprisal (stream mode);
* :class:`Absorbed` — a symbol advanced a session's sliding window without
  completing it yet (monitor warm-up);
* :class:`Overloaded` — admission control shed the request (bounded queue
  depth, latency budget, or non-draining shutdown), with a typed reason;
* :class:`Failed` — scoring raised an exception (e.g. a symbol outside a
  no-UNK model's alphabet); the error message rides on the outcome instead
  of stranding the ticket.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from ..core.monitor import Alert


class ShedReason(enum.Enum):
    """Why admission control refused to score a request."""

    #: The detector queue was at ``max_queue_depth`` and the policy rejects
    #: new arrivals.
    QUEUE_FULL = "queue_full"
    #: The detector queue was full and the policy sheds the *oldest* pending
    #: request to admit the new one.
    SHED_OLDEST = "shed_oldest"
    #: The request waited longer than ``latency_budget_s`` before its drain.
    DEADLINE = "deadline"
    #: The service shut down without draining.
    SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class Scored:
    """One window scored under the pinned ``score < threshold`` rule.

    Attributes:
        score: per-symbol mean log-likelihood (higher = more normal).
        detector: registered detector name.
        session: submitting session id.
        batch_size: how many windows shared this drain's forward pass.
        queued_s: enqueue-to-score latency.
        alert: the monitor's alert record (monitor mode, below threshold,
            outside cooldown) — ``None`` otherwise.
        anomalous: threshold verdict, when the detector was registered with
            an operating threshold (``None`` otherwise).
        gap: ``True`` when the session has had monitor-mode symbols shed
            since open/reset, i.e. this score was computed over a
            discontinuous stream (always ``False`` for window sessions).
    """

    score: float
    detector: str
    session: str
    batch_size: int
    queued_s: float
    alert: Alert | None = None
    anomalous: bool | None = None
    gap: bool = False


@dataclass(frozen=True)
class Streamed:
    """One streaming symbol's surprisal (stream mode).

    Attributes:
        surprise: ``-log P[symbol | history]`` — higher = less expected.
        windowed_score: mean negative surprise of the last ``window``
            events (comparable to :class:`Scored` scores); ``None`` until
            the session has seen a full window.
        anomalous: ``windowed_score < threshold`` when both are available.
        gap: ``True`` when the session has had symbols shed since
            open/reset — the filtering distribution and windowed score are
            then computed over a discontinuous stream.
    """

    surprise: float
    detector: str
    session: str
    batch_size: int
    queued_s: float
    windowed_score: float | None = None
    anomalous: bool | None = None
    gap: bool = False


@dataclass(frozen=True)
class Absorbed:
    """A monitor-mode symbol consumed before its window filled."""

    detector: str
    session: str
    queued_s: float


@dataclass(frozen=True)
class Overloaded:
    """Admission control shed this request; it was never scored.

    Attributes:
        reason: the typed shed cause.
        depth: queue depth observed when the decision was made.
        queued_s: how long the request had waited (0 for rejected-at-door).
    """

    detector: str
    session: str
    reason: ShedReason
    depth: int
    queued_s: float = 0.0


@dataclass(frozen=True)
class Failed:
    """Scoring this request raised; it resolves with the error, not silence.

    Produced when the drain cannot score a request — e.g. a submitted
    symbol outside a no-UNK model's alphabet — or as the backstop when a
    drain crashes mid-batch: every already-popped ticket resolves
    :class:`Failed` before the exception propagates, so ``result()`` never
    hangs on an accepted submission.

    Attributes:
        error: the stringified exception.
        queued_s: how long the request had waited when scoring failed.
    """

    detector: str
    session: str
    error: str
    queued_s: float = 0.0


ScoreOutcome = Scored | Streamed | Absorbed | Overloaded | Failed


class Ticket:
    """A one-shot future for a submission's outcome.

    The scheduler resolves each ticket exactly once; ``result()`` blocks
    until then (or raises on timeout).  In synchronous deployments
    (``service.pump()`` called by the same thread) the outcome is already
    set by the time ``submit`` returns control.
    """

    __slots__ = ("_event", "_outcome")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcome: ScoreOutcome | None = None

    def _resolve(self, outcome: ScoreOutcome) -> None:
        if self._outcome is not None:  # pragma: no cover - internal invariant
            raise AssertionError("ticket resolved twice")
        self._outcome = outcome
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ScoreOutcome:
        if not self._event.wait(timeout):
            raise TimeoutError("outcome not available yet")
        assert self._outcome is not None
        return self._outcome
