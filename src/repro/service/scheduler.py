"""Micro-batching scheduler: per-detector queues drained into one forward
pass.

The hot path the batched :mod:`repro.hmm.forward` recursions were written
for: instead of one ``log_likelihood`` call per request (a (1, 15) matrix
product per time step), a drain collects every ready window across all
sessions of one detector and scores them as a single (B, 15) batch —
unequal window lengths fall back to one call per *length group* via
:func:`repro.hmm.forward.log_likelihood_ragged`.  Each length group is
scored duplicate-aware (:func:`repro.hmm.kernels.log_likelihood_unique`):
when many sessions watch the same hot code path, identical windows in a
drain run the forward recursion once and share the result, bit-identical
to scoring every row (``hmm.score.unique_ratio`` reports the effect).

On top of the per-lane batch, :meth:`MicroBatchScheduler.drain_many`
fuses one round's drains **across detectors** (the default ``pump()``
path when ``ServiceConfig.cross_detector_batching`` is on): same-shape
(N, M) detectors' length groups stack into one batched tensor
contraction (:func:`repro.hmm.kernels.log_likelihood_fleet`), so a
100-detector fleet drains in a handful of kernel launches instead of one
GEMM sequence per detector.  Mixed-shape fleets degrade gracefully — each
``(n_states, n_symbols, length)`` group scores on the fused path when two
or more lanes share it and on the per-lane kernel otherwise — and every
outcome is bit-identical to the per-lane drain.

Admission control lives at the two points where load sheds:

* **at the door** (:meth:`DetectorLane.admit`) — a queue at
  ``max_queue_depth`` either rejects the arrival or evicts its oldest
  pending request, per :class:`~repro.service.config.AdmissionPolicy`;
* **at the drain** (:meth:`MicroBatchScheduler.drain`) — requests older
  than ``latency_budget_s`` resolve ``Overloaded(DEADLINE)`` rather than
  being scored late.

Every shed request resolves with a typed
:class:`~repro.service.outcomes.Overloaded`; accepted requests always
resolve with a scored outcome (or a shutdown shed) — never silence.  A
request scoring *failure* (e.g. a symbol outside a no-UNK model's
alphabet) resolves that request with :class:`~repro.service.outcomes.Failed`
without poisoning the rest of the batch, and an unexpected crash mid-drain
resolves every already-popped ticket ``Failed`` before propagating — no
code path strands a ticket.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..core.detector import Detector
from ..errors import ModelError
from ..hmm import backends
from ..hmm.forward import log_likelihood_ragged
from ..hmm.kernels import log_likelihood_fleet, log_likelihood_unique
from .config import AdmissionPolicy, ServiceConfig
from .outcomes import (
    Absorbed,
    Failed,
    Overloaded,
    Scored,
    ShedReason,
    Streamed,
    Ticket,
)
from .sessions import Session, SessionMode

#: Telemetry bucket bounds for drain batch sizes.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


@dataclass
class PendingRequest:
    """One queued submission awaiting its drain."""

    ticket: Ticket
    session: Session
    enqueued_at: float
    window: tuple[str, ...] | None = None
    symbol: str | None = None


@dataclass
class DetectorLane:
    """One registered detector: its queue, threshold, and window length."""

    name: str
    detector: Detector
    threshold: float | None
    window: int
    queue: deque = field(default_factory=deque)

    @property
    def depth(self) -> int:
        return len(self.queue)

    def admit(
        self, request: PendingRequest, config: ServiceConfig
    ) -> PendingRequest | None:
        """Enqueue ``request``, applying the depth bound.

        Returns the request that was shed (the arrival itself under
        ``REJECT_NEW``, the evicted oldest under ``SHED_OLDEST``), already
        resolved with its :class:`Overloaded` outcome — or ``None`` when
        the queue had room.
        """
        if len(self.queue) < config.max_queue_depth:
            self.queue.append(request)
            return None
        if config.admission_policy is AdmissionPolicy.REJECT_NEW:
            request.session.note_gap()
            request.ticket._resolve(
                Overloaded(
                    detector=self.name,
                    session=request.session.session_id,
                    reason=ShedReason.QUEUE_FULL,
                    depth=len(self.queue),
                )
            )
            return request
        oldest = self.queue.popleft()
        oldest.session.note_gap()
        oldest.ticket._resolve(
            Overloaded(
                detector=self.name,
                session=oldest.session.session_id,
                reason=ShedReason.SHED_OLDEST,
                depth=len(self.queue) + 1,
                queued_s=max(0.0, request.enqueued_at - oldest.enqueued_at),
            )
        )
        self.queue.append(request)
        return oldest


@dataclass
class _LaneDrain:
    """One lane's popped batch moving through the drain phases.

    ``_prepare`` fills the bookkeeping fields (and resolves sheds /
    absorbed pushes / encode failures); scoring fills ``loglik`` for the
    ``rows``; ``_finish`` resolves the scorable and streaming requests.
    Splitting the phases this way is what lets :meth:`drain_many` score
    *many* lanes' prepared rows in one fused pass between its per-lane
    prepare and finish sweeps.
    """

    lane: DetectorLane
    taken: list[PendingRequest]
    scorable: list[tuple[PendingRequest, tuple[str, ...], float]] = field(
        default_factory=list
    )
    rows: list[np.ndarray] = field(default_factory=list)
    streaming: list[tuple[PendingRequest, float]] = field(default_factory=list)
    loglik: np.ndarray | None = None
    resolved: int = 0


class MicroBatchScheduler:
    """Drains lanes; owns no threads (the service does).

    Two drain shapes share the same prepare/score/finish phases:

    * :meth:`drain` — one lane, scored through
      :func:`~repro.hmm.forward.log_likelihood_ragged` exactly as before;
    * :meth:`drain_many` — one fused round over many lanes: every lane is
      prepared, then all prepared rows are grouped by
      ``(n_states, n_symbols, window length)`` **across lanes** and each
      multi-lane group scores through one batched
      :func:`~repro.hmm.kernels.log_likelihood_fleet` contraction
      (single-lane groups keep the per-lane kernel).  Scores, outcomes,
      and per-lane telemetry are bit-identical to per-lane drains — only
      the kernel-launch count changes.
    """

    def __init__(self, config: ServiceConfig, clock) -> None:
        self.config = config
        self.clock = clock
        # Resolve the configured kernel backend eagerly: an unavailable
        # toolchain warns once at service construction, not mid-drain.
        if config.kernel_backend is not None:
            backends.resolve_backend(config.kernel_backend)

    def _backend_scope(self):
        """The kernel-backend scope every drain's scoring runs under.

        ``None`` (the default) defers to the process default without
        touching the thread-local scope stack, so per-drain overhead in
        the default configuration is one attribute check.
        """
        if self.config.kernel_backend is None:
            return nullcontext()
        return backends.backend_scope(self.config.kernel_backend)

    def drain(self, lane: DetectorLane, stats) -> int:
        """Process up to ``max_batch`` queued requests of one lane.

        Returns the number of requests resolved (scored, streamed,
        absorbed, deadline-shed, or failed).  One drain issues at most one
        forward pass per distinct window length present in the batch — for
        the homogeneous 15-call case, exactly one — and duplicate windows
        within a length group are scored once (see the module docstring).

        Exception safety: a request that cannot be scored (unknown symbol,
        no UNK slot) resolves :class:`Failed` individually; any *other*
        exception resolves every popped-but-unresolved ticket ``Failed``
        before propagating, so the documented "every accepted submission
        resolves" invariant holds even when a drain crashes.
        """
        if not lane.queue:
            return 0
        now = self.clock()

        taken: list[PendingRequest] = []
        while lane.queue and len(taken) < self.config.max_batch:
            taken.append(lane.queue.popleft())

        try:
            with self._backend_scope():
                return self._process(lane, taken, now, stats)
        except Exception as exc:
            for request in taken:
                if not request.ticket.done():
                    request.session.note_gap()
                    request.ticket._resolve(
                        Failed(
                            detector=lane.name,
                            session=request.session.session_id,
                            error=f"{type(exc).__name__}: {exc}",
                            queued_s=max(0.0, now - request.enqueued_at),
                        )
                    )
                    stats.count_failed()
            raise
        finally:
            telemetry.gauge_set(f"service.queue.depth.{lane.name}", lane.depth)

    def drain_many(self, lanes, stats) -> int:
        """One fused drain round: up to ``max_batch`` requests per lane.

        Pops every non-empty lane's batch first, then runs the shared
        prepare phase per lane and scores all prepared rows together —
        same-shape lanes through one cross-detector contraction per
        distinct window length, mixed shapes falling back per
        ``(n_states, n_symbols, length)`` group.  Returns the total
        resolved across lanes.

        Exception safety matches :meth:`drain` per request — encode and
        streaming failures resolve individual tickets ``Failed`` — but the
        crash backstop is round-wide: an unexpected mid-round exception
        resolves every popped-but-unresolved ticket of **all** popped
        lanes ``Failed`` before propagating (the fused pass is shared
        state; no lane's tickets can be left pending behind it).
        """
        now = self.clock()
        popped: list[tuple[DetectorLane, list[PendingRequest]]] = []
        for lane in lanes:
            if not lane.queue:
                continue
            taken: list[PendingRequest] = []
            while lane.queue and len(taken) < self.config.max_batch:
                taken.append(lane.queue.popleft())
            popped.append((lane, taken))
        if not popped:
            return 0
        try:
            with self._backend_scope():
                return self._process_many(popped, now, stats)
        except Exception as exc:
            for lane, taken in popped:
                for request in taken:
                    if not request.ticket.done():
                        request.session.note_gap()
                        request.ticket._resolve(
                            Failed(
                                detector=lane.name,
                                session=request.session.session_id,
                                error=f"{type(exc).__name__}: {exc}",
                                queued_s=max(0.0, now - request.enqueued_at),
                            )
                        )
                        stats.count_failed()
            raise
        finally:
            for lane, _ in popped:
                telemetry.gauge_set(f"service.queue.depth.{lane.name}", lane.depth)

    def _process(
        self, lane: DetectorLane, taken: list[PendingRequest], now: float, stats
    ) -> int:
        """Resolve one popped batch: sheds, monitor pushes, forward pass."""
        drain = self._prepare(_LaneDrain(lane=lane, taken=taken), now, stats)
        if drain.scorable:
            drain.loglik = log_likelihood_ragged(lane.detector.model, drain.rows)
        self._finish(drain, stats)
        return drain.resolved

    def _process_many(
        self,
        popped: list[tuple[DetectorLane, list[PendingRequest]]],
        now: float,
        stats,
    ) -> int:
        """Resolve one fused round: per-lane prepare, cross-lane score,
        per-lane finish."""
        drains = [
            self._prepare(_LaneDrain(lane=lane, taken=taken), now, stats)
            for lane, taken in popped
        ]
        # Group every prepared row by (model shape, window length) across
        # lanes — insertion order is lane order then each lane's
        # first-occurrence length order, mirroring log_likelihood_ragged.
        groups: dict[
            tuple[int, int, int], list[tuple[_LaneDrain, np.ndarray, list[int]]]
        ] = {}
        for drain in drains:
            if not drain.scorable:
                continue
            drain.loglik = np.empty(len(drain.rows))
            model = drain.lane.detector.model
            by_length: dict[int, list[int]] = {}
            for position, row in enumerate(drain.rows):
                by_length.setdefault(row.shape[0], []).append(position)
            for length, positions in by_length.items():
                obs = np.stack([drain.rows[position] for position in positions])
                key = (model.n_states, model.n_symbols, length)
                groups.setdefault(key, []).append((drain, obs, positions))
        fused_groups = 0
        for entries in groups.values():
            if len(entries) == 1:
                # One lane in this shape/length group: the per-lane kernel
                # is already a single pass (and uses the full 512-row
                # tile); nothing to fuse.
                drain, obs, positions = entries[0]
                drain.loglik[positions] = log_likelihood_unique(
                    drain.lane.detector.model, obs
                )
                continue
            fused_groups += 1
            scored = log_likelihood_fleet(
                [drain.lane.detector.model for drain, _, _ in entries],
                [obs for _, obs, _ in entries],
            )
            for (drain, _, positions), loglik in zip(entries, scored):
                drain.loglik[positions] = loglik
        if groups:
            telemetry.counter_add("service.drain.fused")
            if fused_groups:
                telemetry.counter_add("service.drain.fused_groups", fused_groups)
        total = 0
        for drain in drains:
            self._finish(drain, stats)
            total += drain.resolved
        return total

    def _prepare(self, drain: _LaneDrain, now: float, stats) -> _LaneDrain:
        """Bookkeeping phase: deadline sheds, monitor pushes, encoding.

        Walks the popped batch in FIFO order, resolving everything that
        never reaches a forward pass (deadline sheds, absorbed monitor
        pushes, encode failures) and collecting the rest into the drain's
        ``scorable``/``rows``/``streaming`` lists.
        """
        lane = drain.lane
        budget = self.config.latency_budget_s
        resolved = 0
        scorable: list[tuple[PendingRequest, tuple[str, ...], float]] = []
        streaming: list[tuple[PendingRequest, float]] = []
        for request in drain.taken:
            queued_s = max(0.0, now - request.enqueued_at)
            if budget is not None and queued_s > budget:
                request.session.note_gap()
                request.ticket._resolve(
                    Overloaded(
                        detector=lane.name,
                        session=request.session.session_id,
                        reason=ShedReason.DEADLINE,
                        depth=lane.depth,
                        queued_s=queued_s,
                    )
                )
                stats.count_shed(ShedReason.DEADLINE)
                resolved += 1
                continue
            session = request.session
            if session.mode is SessionMode.STREAM:
                streaming.append((request, queued_s))
                continue
            if session.mode is SessionMode.MONITOR:
                window = session.monitor.push(request.symbol)
                if window is None:
                    request.ticket._resolve(
                        Absorbed(
                            detector=lane.name,
                            session=session.session_id,
                            queued_s=queued_s,
                        )
                    )
                    stats.absorbed += 1
                    resolved += 1
                    continue
            else:
                window = request.window
            scorable.append((request, window, queued_s))

        if scorable:
            model = lane.detector.model
            # Encode per request so one bad window (symbol outside a no-UNK
            # alphabet, or an empty window) fails alone instead of
            # poisoning the whole batch — in either drain shape.
            rows: list[np.ndarray] = []
            encodable: list[tuple[PendingRequest, tuple[str, ...], float]] = []
            for request, window, queued_s in scorable:
                try:
                    if not window:
                        raise ModelError("cannot score an empty window")
                    rows.append(
                        np.fromiter(
                            (model.encode_symbol(symbol) for symbol in window),
                            dtype=np.int64,
                            count=len(window),
                        )
                    )
                except ModelError as exc:
                    request.ticket._resolve(
                        Failed(
                            detector=lane.name,
                            session=request.session.session_id,
                            error=str(exc),
                            queued_s=queued_s,
                        )
                    )
                    stats.count_failed()
                    resolved += 1
                    continue
                encodable.append((request, window, queued_s))
            scorable = encodable
            drain.rows = rows

        drain.scorable = scorable
        drain.streaming = streaming
        drain.resolved = resolved
        return drain

    def _finish(self, drain: _LaneDrain, stats) -> None:
        """Resolution phase: apply scores, then walk streaming sessions.

        ``drain.loglik`` must hold the raw per-row log-likelihoods for
        ``drain.rows`` (whichever kernel produced them); outcomes carry
        the per-symbol normalization exactly as before.
        """
        lane = drain.lane
        scorable = drain.scorable
        streaming = drain.streaming
        resolved = 0

        if scorable:
            lengths = np.array(
                [row.shape[0] for row in drain.rows], dtype=float
            )
            scores = drain.loglik / lengths
            batch_size = len(scorable)
            telemetry.observe(
                "service.batch.size", batch_size, boundaries=BATCH_SIZE_BUCKETS
            )
            stats.record_batch(batch_size)
            for (request, window, queued_s), score in zip(scorable, scores):
                score = float(score)
                session = request.session
                alert = None
                if session.mode is SessionMode.MONITOR:
                    alert = session.monitor.apply_score(window, score)
                anomalous = (
                    score < lane.threshold if lane.threshold is not None else None
                )
                request.ticket._resolve(
                    Scored(
                        score=score,
                        detector=lane.name,
                        session=session.session_id,
                        batch_size=batch_size,
                        queued_s=queued_s,
                        alert=alert,
                        anomalous=anomalous,
                        gap=session.gaps > 0,
                    )
                )
                telemetry.observe(
                    "service.latency.queue_s",
                    queued_s,
                    boundaries=telemetry.DEFAULT_SECONDS_BUCKETS,
                )
                stats.scored += 1
                resolved += 1

        if streaming:
            # Sequential within a session (the belief update is order
            # dependent); the FIFO walk preserves exactly that order.
            batch_size = len(streaming)
            for request, queued_s in streaming:
                session = request.session
                try:
                    surprise = session.scorer.observe(request.symbol)
                except ModelError as exc:
                    # The symbol never updated the belief state: resolve
                    # this request alone and keep the stream going.
                    session.note_gap()
                    request.ticket._resolve(
                        Failed(
                            detector=lane.name,
                            session=session.session_id,
                            error=str(exc),
                            queued_s=queued_s,
                        )
                    )
                    stats.count_failed()
                    resolved += 1
                    continue
                windowed = (
                    session.scorer.windowed_score
                    if session.scorer.window_full
                    else None
                )
                anomalous = (
                    windowed < lane.threshold
                    if (windowed is not None and lane.threshold is not None)
                    else None
                )
                request.ticket._resolve(
                    Streamed(
                        surprise=surprise,
                        detector=lane.name,
                        session=session.session_id,
                        batch_size=batch_size,
                        queued_s=queued_s,
                        windowed_score=windowed,
                        anomalous=anomalous,
                        gap=session.gaps > 0,
                    )
                )
                telemetry.observe(
                    "service.latency.queue_s",
                    queued_s,
                    boundaries=telemetry.DEFAULT_SECONDS_BUCKETS,
                )
                stats.streamed += 1
                resolved += 1

        drain.resolved += resolved
