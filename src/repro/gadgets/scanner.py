"""ROP gadget scanner: find ``[SYSCALL ... RET]`` gadgets in a binary image.

Section V-D of the paper counts the "useful" syscall gadgets available to a
return-oriented-programming attacker at several gadget lengths.  A gadget
here is a decoded instruction window that *starts at a syscall instruction*
(intended or not — the scan begins at every byte offset, so mid-operand
decodings count) and reaches a ``RET`` within the length bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..program.calls import SYSCALLS
from ..program.image import BinaryImage
from ..program.instructions import Instruction, decode_one, decode_window

#: Gadget lengths evaluated in Table III.
TABLE_III_LENGTHS: tuple[int, ...] = (2, 6, 10)


@dataclass(frozen=True)
class Gadget:
    """One ``[SYSCALL ... RET]`` gadget.

    Attributes:
        syscall_address: address of the syscall instruction (gadget start).
        ret_address: address of the terminating return.
        length: instruction count from the syscall to the RET inclusive.
        intended: whether the syscall decodes at a layout-emitted site.
        syscall_name: for intended sites, the statically-known syscall; for
            unintended decodings, the syscall selected by the preceding
            immediate if one decodes, else ``None`` (attacker-controlled).
        function: enclosing function per the address map, or ``None`` for
            data-region gadgets.
    """

    syscall_address: int
    ret_address: int
    length: int
    intended: bool
    syscall_name: str | None
    function: str | None


def scan_gadgets(
    image: BinaryImage,
    max_length: int = 10,
    base_address: int = 0x1000,
) -> list[Gadget]:
    """Scan ``image`` for syscall gadgets of at most ``max_length`` instructions.

    Every byte offset is considered a potential gadget start; a gadget is
    recorded when the offset decodes as ``SYSCALL`` and a ``RET`` decodes
    within the window.  Gadgets are deduplicated by their
    ``(syscall, ret)`` address pair.
    """
    data = image.data
    seen: set[tuple[int, int]] = set()
    gadgets: list[Gadget] = []
    for offset in range(len(data)):
        first = decode_one(data, offset)
        if first is None or not first.is_syscall:
            continue
        window = decode_window(data, offset, max_length)
        ret_index = _ret_index(window)
        if ret_index is None:
            continue
        address = base_address + offset
        ret_address = base_address + window[ret_index].offset
        key = (address, ret_address)
        if key in seen:
            continue
        seen.add(key)
        site = image.intended_syscall_at(address)
        gadgets.append(
            Gadget(
                syscall_address=address,
                ret_address=ret_address,
                length=ret_index + 1,
                intended=site is not None,
                syscall_name=site.syscall if site else _immediate_syscall(data, offset),
                function=image.function_at(address),
            )
        )
    return gadgets


def count_by_length(
    gadgets: list[Gadget], lengths: tuple[int, ...] = TABLE_III_LENGTHS
) -> dict[int, int]:
    """Gadget counts at each cumulative length bound (Table III columns)."""
    return {
        bound: sum(1 for g in gadgets if g.length <= bound) for bound in lengths
    }


def _ret_index(window: list[Instruction]) -> int | None:
    for index, instruction in enumerate(window):
        if instruction.is_ret:
            return index
    return None


def _immediate_syscall(data: bytes, syscall_offset: int) -> str | None:
    """Recover the syscall selected by a ``mov_imm`` just before the gadget.

    An unintended syscall byte executes whatever number is in the register;
    if the two preceding bytes happen to decode as ``mov_imm n`` with a
    valid syscall number, the gadget's effect is predictable — otherwise the
    attacker must set the register via other gadgets and we leave it open.
    """
    if syscall_offset < 2:
        return None
    previous = decode_one(data, syscall_offset - 2)
    if previous is None or previous.mnemonic != "mov_imm":
        return None
    number = previous.operands[0]
    if number < len(SYSCALLS):
        return SYSCALLS[number]
    return None
