"""ROP gadget analysis: scanning and context-compatibility (Table III)."""

from .context_filter import GadgetSurface, context_compatible, gadget_surface
from .scanner import TABLE_III_LENGTHS, Gadget, count_by_length, scan_gadgets

__all__ = [
    "TABLE_III_LENGTHS",
    "Gadget",
    "GadgetSurface",
    "context_compatible",
    "count_by_length",
    "gadget_surface",
    "scan_gadgets",
]
