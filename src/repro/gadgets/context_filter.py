"""Context-compatibility filtering of gadgets (Section V-D's security claim).

Under CMarkov, every monitored syscall carries its caller context, derived
from the instruction pointer of the call site.  A ROP gadget therefore only
"works" (evades the per-call context check) when:

* its syscall instruction is an *intended* site — an unintended mid-operand
  decoding maps to an address the caller-translation step cannot attribute
  to a legitimate ``syscall@function`` label; and
* the resulting ``syscall@function`` label exists in the program's
  statically-built model.

Everything else is flagged on sight, before any sequence-likelihood
reasoning — this is the mechanism that shrinks the usable gadget set and
keeps ROP "far from being Turing complete" on the monitored programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.labels import LabelSpace, build_label_space
from ..program.calls import CallKind
from ..program.program import Program, context_label
from .scanner import TABLE_III_LENGTHS, Gadget, count_by_length


@dataclass(frozen=True)
class GadgetSurface:
    """Usable-gadget accounting for one program image."""

    program: str
    total_by_length: dict[int, int]
    compatible_by_length: dict[int, int]

    def reduction_at(self, length: int) -> float:
        """Fraction of gadgets removed by the context check at a length."""
        total = self.total_by_length.get(length, 0)
        if total == 0:
            return 0.0
        return 1.0 - self.compatible_by_length.get(length, 0) / total


def context_compatible(gadgets: list[Gadget], space: LabelSpace) -> list[Gadget]:
    """Gadgets whose syscall passes the per-call context check."""
    compatible: list[Gadget] = []
    for gadget in gadgets:
        if not gadget.intended:
            continue
        if gadget.syscall_name is None or gadget.function is None:
            continue
        label = context_label(gadget.syscall_name, gadget.function)
        if label in space:
            compatible.append(gadget)
    return compatible


def gadget_surface(
    program: Program,
    gadgets: list[Gadget],
    lengths: tuple[int, ...] = TABLE_III_LENGTHS,
    space: LabelSpace | None = None,
) -> GadgetSurface:
    """Summarize total vs context-compatible gadget counts (Table III)."""
    if space is None:
        space = build_label_space(program, CallKind.SYSCALL, context=True)
    compatible = context_compatible(gadgets, space)
    return GadgetSurface(
        program=program.name,
        total_by_length=count_by_length(gadgets, lengths),
        compatible_by_length=count_by_length(compatible, lengths),
    )
