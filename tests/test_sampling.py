"""Tests for sampled/throttled tracing (production-collector degradation)."""

import pytest

from repro.errors import TraceError
from repro.program import CallKind
from repro.tracing import (
    CallEvent,
    Trace,
    sample_trace,
    sample_workload,
    throttle_trace,
)


def _trace(n=100, case="c"):
    trace = Trace(program="p", case_id=case)
    for index in range(n):
        trace.append(CallEvent(f"call{index % 5}", "f", CallKind.SYSCALL))
    return trace


class TestSampleTrace:
    def test_rate_one_keeps_everything(self):
        trace = _trace(50)
        sampled = sample_trace(trace, 1.0)
        assert len(sampled) == 50

    def test_rate_controls_expected_retention(self):
        trace = _trace(2000)
        sampled = sample_trace(trace, 0.5, seed=1)
        assert 0.4 * 2000 < len(sampled) < 0.6 * 2000

    def test_order_preserved(self):
        trace = _trace(200)
        sampled = sample_trace(trace, 0.5, seed=2)
        names = [e.name for e in sampled.events]
        original = [e.name for e in trace.events]
        iterator = iter(original)
        assert all(any(name == candidate for candidate in iterator) for name in names)

    def test_deterministic(self):
        trace = _trace(100)
        a = sample_trace(trace, 0.3, seed=5)
        b = sample_trace(trace, 0.3, seed=5)
        assert [str(e) for e in a.events] == [str(e) for e in b.events]

    def test_case_id_tagged(self):
        sampled = sample_trace(_trace(10, case="orig"), 0.5)
        assert sampled.case_id.startswith("orig@")

    def test_invalid_rate(self):
        with pytest.raises(TraceError):
            sample_trace(_trace(), 0.0)
        with pytest.raises(TraceError):
            sample_trace(_trace(), 1.5)

    def test_original_untouched(self):
        trace = _trace(100)
        sample_trace(trace, 0.2, seed=0)
        assert len(trace) == 100


class TestThrottleTrace:
    def test_budget_respected_per_window(self):
        trace = _trace(100)
        throttled = throttle_trace(trace, budget=3, period=10, seed=0)
        assert len(throttled) == 30

    def test_under_budget_windows_untouched(self):
        trace = _trace(5)
        throttled = throttle_trace(trace, budget=10, period=20)
        assert len(throttled) == 5

    def test_order_within_window_preserved(self):
        trace = _trace(20)
        throttled = throttle_trace(trace, budget=5, period=10, seed=1)
        # Event indices (recoverable from names mod 5 cycle) never go
        # backwards within a window because picks are sorted.
        positions = []
        cursor = 0
        originals = [str(e) for e in trace.events]
        for event in throttled.events:
            cursor = originals.index(str(event), cursor)
            positions.append(cursor)
        assert positions == sorted(positions)

    def test_invalid_parameters(self):
        with pytest.raises(TraceError):
            throttle_trace(_trace(), budget=0, period=5)
        with pytest.raises(TraceError):
            throttle_trace(_trace(), budget=6, period=5)


class TestSampleWorkload:
    def test_per_trace_seeds_differ(self):
        traces = [_trace(100, case=f"c{i}") for i in range(3)]
        sampled = sample_workload(traces, 0.5, seed=0)
        assert len(sampled) == 3
        lengths = {len(t) for t in sampled}
        assert lengths  # all produced

    def test_detection_survives_moderate_sampling(self, gzip_program):
        """The deployment claim: a 70%-retention collector still supports
        detection, with graceful degradation."""
        from repro.attacks import abnormal_s_segments
        from repro.core import CMarkovDetector, DetectorConfig, auc_score
        from repro.hmm import TrainingConfig
        from repro.tracing import build_segment_set, run_workload

        workload = run_workload(gzip_program, n_cases=50, seed=11)
        sampled = sample_workload(workload.traces, 0.7, seed=3)
        segments = build_segment_set(sampled, CallKind.LIBCALL, context=True)
        train_part, test_part = segments.split([0.8, 0.2], seed=1)
        detector = CMarkovDetector(
            gzip_program,
            kind=CallKind.LIBCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=8),
                max_training_segments=1500,
                seed=2,
            ),
        )
        detector.fit(train_part)
        abnormal = abnormal_s_segments(
            test_part.segments(), segments.alphabet(), 200, seed=4, exclude=segments
        )
        auc = auc_score(
            detector.score(test_part.segments()), detector.score(abnormal)
        )
        assert auc > 0.9
