"""Unit tests for the CFG representation (Definition 1)."""

import pytest

from repro.errors import ProgramStructureError
from repro.program import CallKind, FunctionCFG, linear_cfg
from repro.program.cfg import CallSite, count_edges


class TestCallSite:
    def test_of_classifies(self):
        assert CallSite.of("read").kind is CallKind.SYSCALL
        assert CallSite.of("malloc").kind is CallKind.LIBCALL
        assert CallSite.of("helper").kind is CallKind.INTERNAL

    def test_observable(self):
        assert CallSite.of("read").observable
        assert not CallSite.of("helper").observable


class TestConstruction:
    def test_first_block_is_entry(self):
        cfg = FunctionCFG("f")
        first = cfg.add_block()
        cfg.add_block()
        assert cfg.entry == first

    def test_set_entry_override(self):
        cfg = FunctionCFG("f")
        cfg.add_block()
        second = cfg.add_block()
        cfg.set_entry(second)
        assert cfg.entry == second

    def test_set_entry_unknown_block_raises(self):
        cfg = FunctionCFG("f")
        cfg.add_block()
        with pytest.raises(ProgramStructureError):
            cfg.set_entry(99)

    def test_edge_to_unknown_block_raises(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        with pytest.raises(ProgramStructureError):
            cfg.add_edge(a, 42)

    def test_duplicate_edge_ignored(self):
        cfg = FunctionCFG("f")
        a, b = cfg.add_block(), cfg.add_block()
        cfg.add_edge(a, b)
        cfg.add_edge(a, b)
        assert cfg.successors(a) == [b]

    def test_entry_of_empty_function_raises(self):
        with pytest.raises(ProgramStructureError):
            FunctionCFG("f").entry

    def test_unknown_block_lookup_raises(self):
        cfg = FunctionCFG("f")
        cfg.add_block()
        with pytest.raises(ProgramStructureError):
            cfg.block(7)


class TestStructure:
    def test_linear_cfg_shape(self):
        cfg = linear_cfg("f", ["read", "write"])
        assert len(cfg) == 4  # head + 2 calls + tail
        assert [s.name for s in cfg.calls()] == ["read", "write"]
        assert len(cfg.exit_blocks()) == 1

    def test_calls_filter_by_kind(self):
        cfg = linear_cfg("f", ["read", "malloc", "write"])
        assert [s.name for s in cfg.calls(CallKind.SYSCALL)] == ["read", "write"]
        assert [s.name for s in cfg.calls(CallKind.LIBCALL)] == ["malloc"]

    def test_exit_blocks(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        c = cfg.add_block()
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        assert set(cfg.exit_blocks()) == {b, c}

    def test_count_edges(self):
        cfg = linear_cfg("f", ["read"])
        assert count_edges(cfg) == 2

    def test_reachable_blocks(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        cfg.add_block()  # orphan
        cfg.add_edge(a, b)
        assert cfg.reachable_blocks() == {a, b}


class TestBackEdges:
    def test_acyclic_has_no_back_edges(self):
        cfg = linear_cfg("f", ["read", "write"])
        assert cfg.back_edges() == set()

    def test_simple_loop_back_edge(self):
        cfg = FunctionCFG("f")
        head = cfg.add_block()
        body = cfg.add_block(call="read")
        tail = cfg.add_block()
        cfg.add_edge(head, body)
        cfg.add_edge(body, head)
        cfg.add_edge(head, tail)
        assert cfg.back_edges() == {(body, head)}

    def test_self_loop_is_back_edge(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        cfg.add_edge(a, a)
        cfg.add_edge(a, b)
        assert (a, a) in cfg.back_edges()

    def test_diamond_is_acyclic(self):
        cfg = FunctionCFG("f")
        a, b, c, d = (cfg.add_block() for _ in range(4))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, d)
        cfg.add_edge(c, d)
        assert cfg.back_edges() == set()


class TestTopologicalOrder:
    def test_respects_edges(self):
        cfg = FunctionCFG("f")
        a, b, c, d = (cfg.add_block() for _ in range(4))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, d)
        cfg.add_edge(c, d)
        order = cfg.forward_topological_order()
        position = {block: i for i, block in enumerate(order)}
        assert position[a] < position[b] < position[d]
        assert position[a] < position[c] < position[d]

    def test_loop_handled_via_back_edge_removal(self):
        cfg = FunctionCFG("f")
        head = cfg.add_block()
        body = cfg.add_block(call="read")
        tail = cfg.add_block()
        cfg.add_edge(head, body)
        cfg.add_edge(body, head)
        cfg.add_edge(head, tail)
        order = cfg.forward_topological_order()
        assert set(order) == {head, body, tail}

    def test_excludes_unreachable(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        cfg.add_block()  # orphan
        cfg.add_edge(a, b)
        assert set(cfg.forward_topological_order()) == {a, b}


class TestValidate:
    def test_valid_linear(self):
        linear_cfg("f", ["read"]).validate()

    def test_no_blocks(self):
        with pytest.raises(ProgramStructureError):
            FunctionCFG("f").validate()

    def test_no_exit_block(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        cfg.add_edge(a, b)
        cfg.add_edge(b, a)
        with pytest.raises(ProgramStructureError, match="no exit"):
            cfg.validate()

    def test_unreachable_block(self):
        cfg = FunctionCFG("f")
        cfg.add_block()
        cfg.add_block()  # orphan
        with pytest.raises(ProgramStructureError, match="unreachable"):
            cfg.validate()
