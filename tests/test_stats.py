"""Tests for bootstrap CIs and the paired sign test."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import bootstrap_ci, paired_sign_test


class TestBootstrapCi:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        ci = bootstrap_ci(rng.normal(5.0, 1.0, 200), seed=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_mean_recovered(self):
        rng = np.random.default_rng(1)
        data = rng.normal(3.0, 0.5, 500)
        ci = bootstrap_ci(data, seed=2)
        assert ci.estimate == pytest.approx(float(np.mean(data)))
        assert 3.0 in ci

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, 20), seed=3)
        large = bootstrap_ci(rng.normal(0, 1, 2000), seed=3)
        assert (large.high - large.low) < (small.high - small.low)

    def test_custom_statistic(self):
        data = np.array([1.0, 2.0, 3.0, 100.0])
        ci = bootstrap_ci(data, statistic=np.median, seed=4)
        assert ci.estimate == pytest.approx(2.5)

    def test_deterministic_per_seed(self):
        data = np.arange(50, dtype=float)
        a = bootstrap_ci(data, seed=9)
        b = bootstrap_ci(data, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_sample_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([])

    def test_bad_confidence_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([1.0], confidence=1.0)


class TestPairedSignTest:
    def test_clear_winner(self):
        a = [0.1] * 10
        b = [0.5] * 10
        result = paired_sign_test(a, b, alternative="less")
        assert result.wins == 10
        assert result.p_value == pytest.approx(0.5**10)

    def test_no_difference(self):
        a = [0.3] * 8
        result = paired_sign_test(a, a, alternative="less")
        assert result.ties == 8
        assert result.p_value == 1.0

    def test_coin_flip_not_significant(self):
        a = [0.1, 0.5, 0.1, 0.5]
        b = [0.5, 0.1, 0.5, 0.1]
        result = paired_sign_test(a, b, alternative="two-sided")
        assert result.p_value > 0.5

    def test_exact_binomial_value(self):
        # 4 wins, 1 loss, alternative "less": P[Wins >= 4 | n=5] = 6/32.
        a = [0, 0, 0, 0, 1]
        b = [1, 1, 1, 1, 0]
        result = paired_sign_test(a, b, alternative="less")
        assert result.p_value == pytest.approx(6 / 32)

    def test_greater_alternative(self):
        a = [1.0] * 6
        b = [0.0] * 6
        result = paired_sign_test(a, b, alternative="greater")
        assert result.p_value == pytest.approx(0.5**6)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(EvaluationError):
            paired_sign_test([1.0], [1.0, 2.0])

    def test_unknown_alternative_raises(self):
        with pytest.raises(EvaluationError):
            paired_sign_test([1.0], [2.0], alternative="sideways")
