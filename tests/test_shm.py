"""Tests for shared-memory model publication (:mod:`repro.service.shm`).

The contract: publish copies a model's parameters into one shared segment
exactly once; attach builds a *zero-copy*, read-only view over the same
physical pages; the refcounted publisher owns the segment's lifetime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.hmm import log_likelihood, random_model
from repro.service import SharedModelStore, attach_model

# Tier-2 stress selection: CI's stress-concurrency job loops `-m stress`.
pytestmark = pytest.mark.stress

SYMBOLS = ["open", "read", "write", "mmap", "close"]


@pytest.fixture()
def model():
    return random_model(SYMBOLS, n_states=4, seed=7)


@pytest.fixture()
def store():
    with SharedModelStore() as store:
        yield store


class TestPublishAttach:
    def test_roundtrip_preserves_parameters(self, store, model):
        spec = store.publish(model)
        attachment = attach_model(spec)
        try:
            np.testing.assert_array_equal(
                attachment.model.transition, model.transition
            )
            np.testing.assert_array_equal(
                attachment.model.emission, model.emission
            )
            np.testing.assert_array_equal(
                attachment.model.initial, model.initial
            )
            assert attachment.model.symbols == tuple(model.symbols)
        finally:
            del attachment.model  # release views before closing the mapping
            attachment.close()

    def test_attached_model_scores_identically(self, store, model):
        rng = np.random.default_rng(0)
        window = [
            tuple(SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=15))
        ]
        expected = log_likelihood(model, model.encode(window))
        spec = store.publish(model)
        attachment = attach_model(spec)
        got = log_likelihood(attachment.model, attachment.model.encode(window))
        np.testing.assert_array_equal(got, expected)

    def test_attach_is_zero_copy(self, store, model):
        spec = store.publish(model)
        attachment = attach_model(spec)
        # A second attach in the same process maps the same physical pages:
        # both views share memory with the segment, neither with the source.
        sibling = attach_model(spec)
        assert not np.shares_memory(attachment.model.transition, model.transition)
        assert attachment.model.transition.base is not None

    def test_attached_views_are_read_only(self, store, model):
        spec = store.publish(model)
        attachment = attach_model(spec)
        with pytest.raises(ValueError):
            attachment.model.transition[0, 0] = 0.5

    def test_spec_is_small_and_offsets_cover_segment(self, store, model):
        spec = store.publish(model)
        names = []
        end = 0
        for name, shape, offset in spec.offsets():
            assert offset == end
            end = offset + int(np.prod(shape)) * 8
            names.append(name)
        assert names == ["transition", "emission", "initial"]
        assert end == spec.nbytes

    def test_attach_after_release_raises(self, store, model):
        spec = store.publish(model)
        store.release(model)
        with pytest.raises(ServiceError, match="does not exist"):
            attach_model(spec)


class TestRefcounting:
    def test_republish_shares_one_segment(self, store, model):
        first = store.publish(model)
        second = store.publish(model)
        assert first.segment == second.segment
        assert len(store) == 1
        assert store.refcount(model) == 2

    def test_release_unlinks_at_zero(self, store, model):
        spec = store.publish(model)
        store.publish(model)
        store.release(model)
        assert attach_model(spec) is not None  # still referenced
        store.release(model)
        assert store.refcount(model) == 0
        with pytest.raises(ServiceError):
            attach_model(spec)

    def test_release_unpublished_raises(self, store, model):
        with pytest.raises(ServiceError, match="not published"):
            store.release(model)

    def test_distinct_models_get_distinct_segments(self, store):
        a = random_model(SYMBOLS, n_states=3, seed=1)
        b = random_model(SYMBOLS, n_states=3, seed=2)
        spec_a = store.publish(a)
        spec_b = store.publish(b)
        assert spec_a.segment != spec_b.segment
        assert len(store) == 2

    def test_total_bytes_counts_payload(self, store, model):
        assert store.total_bytes == 0
        spec = store.publish(model)
        assert store.total_bytes == spec.nbytes

    def test_close_releases_everything(self, model):
        store = SharedModelStore()
        spec = store.publish(model)
        store.publish(model)  # refcount 2; close still tears down
        store.close()
        assert len(store) == 0
        with pytest.raises(ServiceError):
            attach_model(spec)
