"""Tests for the evaluation harness: configs, tables, runners."""

import os
from unittest import mock

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    FAST_CONFIG,
    ExperimentConfig,
    format_factor,
    format_rate,
    render_table,
    run_coverage_survey,
    run_gadget_survey,
    run_runtime_table,
)
from repro.program import ALL_PROGRAMS


class TestExperimentConfig:
    def test_defaults_valid(self):
        ExperimentConfig()

    def test_invalid_sizes(self):
        with pytest.raises(EvaluationError):
            ExperimentConfig(n_cases=0)
        with pytest.raises(EvaluationError):
            ExperimentConfig(folds=1)

    def test_scaled(self):
        config = ExperimentConfig().scaled(2.0)
        assert config.n_cases == ExperimentConfig().n_cases * 2

    def test_scaled_invalid(self):
        with pytest.raises(EvaluationError):
            ExperimentConfig().scaled(0)

    def test_detector_config_seed_offset(self):
        config = ExperimentConfig(seed=10)
        assert config.detector_config(3).seed == 13

    def test_from_env(self):
        with mock.patch.dict(os.environ, {"REPRO_SCALE": "0.5"}):
            config = ExperimentConfig.from_env()
        assert config.n_cases == round(ExperimentConfig().n_cases * 0.5)

    def test_from_env_default(self):
        with mock.patch.dict(os.environ, {}, clear=True):
            assert ExperimentConfig.from_env() == ExperimentConfig()


class TestTables:
    def test_render_alignment(self):
        table = render_table(["a", "long_header"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_render_with_title(self):
        assert render_table(["h"], [["v"]], title="T").startswith("T\n")

    def test_format_rate(self):
        assert format_rate(0.12345) == "0.1235"  # rounds to 4 decimals

    def test_format_factor_bands(self):
        assert format_factor(452.3) == "452x"
        assert format_factor(31.2) == "31.2x"
        assert format_factor(2.5) == "2.50x"


class TestSurveyRunners:
    def test_coverage_survey_rows(self):
        reports = run_coverage_survey(FAST_CONFIG, program_names=("gzip", "sed"))
        assert [r.program for r in reports] == ["gzip", "sed"]
        assert all(0 < r.branch_coverage <= 1 for r in reports)

    def test_gadget_survey_includes_libc(self):
        surfaces = run_gadget_survey(program_names=("gzip",), include_libc=True)
        assert [s.program for s in surfaces] == ["gzip", "libc.so"]

    def test_gadget_survey_all_programs(self):
        surfaces = run_gadget_survey(include_libc=False)
        assert [s.program for s in surfaces] == list(ALL_PROGRAMS)
        for surface in surfaces:
            assert surface.compatible_by_length[10] <= surface.total_by_length[10]

    def test_runtime_table_rows(self):
        rows = run_runtime_table(program_names=("gzip",))
        assert len(rows) == 2  # libcall + syscall
        assert all(row.total_s > 0 for row in rows)


class TestClusterPolicyDerivation:
    def test_cluster_policy_fields(self):
        config = ExperimentConfig(cluster_min_states=42, cluster_ratio=0.25)
        policy = config.cluster_policy()
        assert policy.min_states == 42
        assert policy.ratio == 0.25

    def test_policy_triggers_above_threshold(self):
        policy = ExperimentConfig(cluster_min_states=100).cluster_policy()
        assert policy.applies(101)
        assert not policy.applies(100)

    def test_paper_rule_documented_default(self):
        # The default mirrors the paper's >800 rule at our corpus scale.
        assert ExperimentConfig().cluster_min_states == 150
