"""Kernel-backend layer: registry, selection, and the compiled backend.

Two kinds of coverage:

* **Selection semantics** (run everywhere): precedence of scope >
  process default > environment, loud failure on unknown names, graceful
  numpy fallback — warned once, counted in telemetry — when the compiled
  backend cannot build or its self-probe fails.  These tests must stay
  green on a host with *no* C toolchain (CI runs a no-compiler variant
  to prove it).
* **Differential suite** (skipped without a toolchain): the compiled
  kernels are bit-for-bit identical to the numpy reference across
  hypothesis-driven shapes for all three kernels — batch scoring, the
  fleet contraction (including FLEET_GEMM_UNIT padding edges, batch
  mod 8 in {1, 2, 3}), and the incremental streaming step through
  reset and warm-rebind.  Bit-identity here is the whole contract: a
  backend that is "close" is a broken backend.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.api import (
    available_kernel_backends,
    kernel_backend,
    use_kernel_backend,
)
from repro.cli import main as cli_main
from repro.errors import KernelBackendError, ServiceError
from repro.hmm import random_model
from repro.hmm.backends import (
    BACKEND_ENV,
    active_backend,
    available_backends,
    backend_scope,
    resolve_backend,
    use_backend,
    _reset_for_tests,
)
from repro.hmm.kernels import (
    SCORE_TILE,
    StreamingState,
    _score_fleet_numpy,
    _score_sequences_numpy,
    _streaming_step_numpy,
    score_fleet,
    score_sequences,
    streaming_rebind,
    streaming_reset,
    streaming_step_with,
)
from repro.service.config import ServiceConfig


def _compiled_available() -> bool:
    """Can this host actually build and verify the compiled backend?"""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            return resolve_backend("compiled").name == "compiled"
        except Exception:  # pragma: no cover - defensive
            return False


HAS_COMPILED = _compiled_available()
requires_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="no C toolchain; compiled backend unavailable"
)


@pytest.fixture(autouse=True)
def _fresh_backend_state():
    """Isolate instance cache, process default, scopes, and warn-once."""
    _reset_for_tests()
    yield
    _reset_for_tests()


def _model(n_states: int, n_symbols: int, seed: int):
    symbols = [f"s{i}" for i in range(n_symbols)]
    return random_model(symbols, n_states=n_states, seed=seed)


# ---------------------------------------------------------------------------
# Selection semantics (toolchain-independent)
# ---------------------------------------------------------------------------


class TestSelection:
    def test_registry_lists_both_builtins(self):
        assert "numpy" in available_backends()
        assert "compiled" in available_backends()

    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"
        assert not active_backend().dispatches

    def test_unknown_name_is_loud(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert active_backend().name == "numpy"

    def test_env_var_unknown_name_is_loud(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fortran")
        with pytest.raises(KernelBackendError):
            active_backend()

    def test_scope_beats_process_default(self):
        use_backend("numpy")
        with backend_scope("numpy") as scoped:
            assert active_backend() is scoped
        assert active_backend().name == "numpy"

    def test_scope_restores_on_exit(self):
        before = active_backend()
        with backend_scope("numpy"):
            pass
        assert active_backend() is before

    def test_service_config_rejects_unknown_backend(self):
        with pytest.raises(ServiceError, match="kernel"):
            ServiceConfig(kernel_backend="fortran")

    def test_service_config_accepts_known_backend(self):
        assert ServiceConfig(kernel_backend="numpy").kernel_backend == "numpy"
        assert ServiceConfig().kernel_backend is None

    def test_api_surface(self):
        assert set(available_kernel_backends()) >= {"compiled", "numpy"}
        assert use_kernel_backend("numpy") == "numpy"
        assert kernel_backend() == "numpy"
        with pytest.raises(KernelBackendError):
            use_kernel_backend("fortran")

    def test_cli_flag_sets_backend(self):
        assert cli_main(["--kernel-backend", "numpy", "corpus"]) == 0

    def test_cli_flag_unknown_backend_exits_2(self, capsys):
        assert cli_main(["--kernel-backend", "fortran", "corpus"]) == 2
        assert "unknown kernel backend" in capsys.readouterr().err


class TestFallback:
    def test_broken_toolchain_falls_back_to_numpy(self, monkeypatch):
        """No compiler => numpy result, one RuntimeWarning, one counter."""
        monkeypatch.setenv("REPRO_KERNEL_CC", "/nonexistent/cc")
        model = _model(4, 6, seed=0)
        obs = np.random.default_rng(1).integers(0, 6, size=(5, 7))
        with telemetry.session() as registry:
            with pytest.warns(RuntimeWarning, match="falling back"):
                backend = resolve_backend("compiled")
            assert backend.name == "numpy"
            with backend_scope("compiled"):
                got = score_sequences(model, obs)
        counters = registry.snapshot()["counters"]
        assert counters.get("hmm.backend.fallback", 0) >= 1
        assert got.tobytes() == _score_sequences_numpy(model, obs).tobytes()

    def test_fallback_warns_once(self, monkeypatch):
        """The degradation is loud exactly once, then silent."""
        monkeypatch.setenv("REPRO_KERNEL_CC", "/nonexistent/cc")
        with pytest.warns(RuntimeWarning):
            resolve_backend("compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("compiled").name == "numpy"

    @requires_compiled
    def test_probe_failure_falls_back_to_numpy(self, monkeypatch):
        """A backend whose self-check fails must never serve results."""
        backend = resolve_backend("compiled")
        monkeypatch.setattr(type(backend), "_probe", lambda *a, **k: False)
        model = _model(32, 64, seed=2)
        obs = np.random.default_rng(3).integers(0, 64, size=(4, 9))
        with telemetry.session() as registry:
            with pytest.warns(RuntimeWarning, match="bit-identity probe"):
                with backend_scope("compiled"):
                    got = score_sequences(model, obs)
        counters = registry.snapshot()["counters"]
        assert counters.get("hmm.backend.probe_fail", 0) >= 1
        assert counters.get("hmm.backend.fallback", 0) >= 1
        assert got.tobytes() == _score_sequences_numpy(model, obs).tobytes()


# ---------------------------------------------------------------------------
# Differential suite: compiled ≡ numpy, bit for bit
# ---------------------------------------------------------------------------


@st.composite
def score_cases(draw):
    n_states = draw(st.sampled_from((8, 16, 32, 48, 64)))
    n_symbols = draw(st.integers(min_value=2, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    batch = draw(st.integers(min_value=1, max_value=70))
    length = draw(st.integers(min_value=1, max_value=20))
    return n_states, n_symbols, seed, batch, length


@requires_compiled
class TestCompiledDifferential:
    def test_engages_at_reference_shape(self):
        """Not a trivial pass-through: compiled really dispatches N=32."""
        backend = resolve_backend("compiled")
        model = _model(32, 64, seed=5)
        obs = np.random.default_rng(6).integers(0, 64, size=(33, 15))
        out = backend.score_sequences(model, obs, SCORE_TILE)
        assert out is not None
        assert out.tobytes() == _score_sequences_numpy(model, obs).tobytes()

    @settings(max_examples=40, deadline=None)
    @given(score_cases())
    def test_batch_scoring_bit_identical(self, case):
        n_states, n_symbols, seed, batch, length = case
        model = _model(n_states, n_symbols, seed)
        rng = np.random.default_rng(seed + 1)
        obs = rng.integers(0, n_symbols, size=(batch, length))
        expected = _score_sequences_numpy(model, obs)
        with backend_scope("compiled"):
            got = score_sequences(model, obs)
        assert got.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("batches", [(1, 2, 3), (9, 10, 11), (8, 16, 17)])
    def test_fleet_contraction_bit_identical_at_padding_edges(self, batches):
        """Fleet batches with N mod FLEET_GEMM_UNIT in {0, 1, 2, 3}."""
        models = [_model(32, 64, seed=20 + i) for i in range(len(batches))]
        rng = np.random.default_rng(7)
        obs_list = [
            rng.integers(0, 64, size=(batch, 11)) for batch in batches
        ]
        expected = _score_fleet_numpy(models, obs_list)
        with backend_scope("compiled"):
            got = score_fleet(models, obs_list)
        for want, have in zip(expected, got):
            assert have.tobytes() == want.tobytes()

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from((8, 16, 32, 48, 64)),
        st.integers(min_value=0, max_value=500),
    )
    def test_streaming_step_bit_identical(self, n_states, seed):
        """Per-event parity through a reset and a warm-model rebind."""
        n_symbols = 24
        model = _model(n_states, n_symbols, seed)
        swap = _model(n_states, n_symbols, seed + 1)
        backend = resolve_backend("compiled")
        fast = StreamingState(model, window=7)
        oracle = StreamingState(model, window=7)
        rng = np.random.default_rng(seed + 2)
        current = model
        for step, index in enumerate(rng.integers(0, n_symbols, size=60)):
            if step == 20:
                streaming_reset(current, fast)
                streaming_reset(current, oracle)
            if step == 40:
                current = swap
                streaming_rebind(current, fast)
                streaming_rebind(current, oracle)
            got = streaming_step_with(backend, current, fast, int(index))
            want = _streaming_step_numpy(current, oracle, int(index))
            assert got == want
        assert fast.belief.tobytes() == oracle.belief.tobytes()
        assert fast.ring.tobytes() == oracle.ring.tobytes()
        assert (fast.pos, fast.count) == (oracle.pos, oracle.count)

    def test_streaming_probe_counter(self):
        """First verified stream binding records a probe_pass counter."""
        model = _model(16, 24, seed=9)
        state = StreamingState(model, window=5)
        backend = resolve_backend("compiled")
        with telemetry.session() as registry:
            streaming_step_with(backend, model, state, 3)
        counters = registry.snapshot()["counters"]
        assert counters.get("hmm.backend.probe_pass", 0) >= 1
