"""Tests for the HTTP gateway: exposition rendering, the checked-in
Prometheus validator, and the in-thread HTTP surface.

The black-box subprocess suite lives in ``tests/test_gateway_e2e.py``;
this file tests the pieces in-process where failures are debuggable.
"""

from __future__ import annotations

import http.client
import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro import telemetry
from repro.core.detector import PretrainedDetector
from repro.errors import ReproError
from repro.gateway import (
    DetectionGateway,
    GatewayConfig,
    outcome_status,
    outcome_to_json,
    render_prometheus,
)
from repro.hmm import random_model
from repro.runtime import ModelRegistry
from repro.service import (
    DetectionService,
    Failed,
    Overloaded,
    Scored,
    ServiceConfig,
    ShedReason,
    Streamed,
)

SYMBOLS = ["open", "read", "write", "close"]
SCRIPTS_DIR = Path(__file__).parent.parent / "scripts"


def _load_validator():
    path = SCRIPTS_DIR / "validate_prometheus.py"
    spec = importlib.util.spec_from_file_location("validate_prometheus", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate_prometheus = _load_validator()
validate_text = validate_prometheus.validate_text


# ---------------------------------------------------------------------------
# The validator itself
# ---------------------------------------------------------------------------


class TestValidator:
    def test_minimal_valid_exposition(self):
        text = (
            "# HELP x_total a counter\n"
            "# TYPE x_total counter\n"
            "x_total 5\n"
        )
        assert validate_text(text) == []

    def test_labels_and_special_values(self):
        text = (
            '# TYPE up gauge\n'
            'up{job="svc",instance="a:1"} 1\n'
            'up{job="svc",instance="b:2"} NaN\n'
        )
        assert validate_text(text) == []

    def test_bad_metric_name(self):
        assert validate_text("9bad 1\n")

    def test_bad_value(self):
        assert validate_text("# TYPE x gauge\nx one\n")

    def test_duplicate_sample(self):
        text = "# TYPE x gauge\nx 1\nx 2\n"
        assert any("duplicate sample" in e for e in validate_text(text))

    def test_duplicate_type(self):
        text = "# TYPE x gauge\n# TYPE x counter\nx 1\n"
        assert any("duplicate TYPE" in e for e in validate_text(text))

    def test_type_after_samples(self):
        text = "x 1\n# TYPE x gauge\n"
        assert any("after its samples" in e for e in validate_text(text))

    def test_interleaved_families(self):
        text = (
            "# TYPE a gauge\n# TYPE b gauge\n"
            "a 1\nb 1\na{x=\"2\"} 2\n"
        )
        assert any("not consecutive" in e for e in validate_text(text))

    def test_bad_type_name(self):
        assert any(
            "must be one of" in e
            for e in validate_text("# TYPE x exotic\nx 1\n")
        )

    def test_histogram_valid(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 1\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 2.5\n"
            "h_count 4\n"
        )
        assert validate_text(text) == []

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 1\n'
            "h_sum 1\nh_count 1\n"
        )
        assert any("missing +Inf" in e for e in validate_text(text))

    def test_histogram_decreasing_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\nh_count 5\n"
        )
        assert any("decrease" in e for e in validate_text(text))

    def test_histogram_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1\nh_count 9\n"
        )
        assert any("_count" in e for e in validate_text(text))

    def test_cli_entrypoint(self, tmp_path, capsys):
        good = tmp_path / "good.txt"
        good.write_text("# TYPE x gauge\nx 1\n")
        assert validate_prometheus.main([str(good)]) == 0
        bad = tmp_path / "bad.txt"
        bad.write_text("x 1\nx 1\n")
        assert validate_prometheus.main([str(bad)]) == 1


# ---------------------------------------------------------------------------
# The renderer
# ---------------------------------------------------------------------------


class TestRenderPrometheus:
    def test_empty_inputs_render_valid_emptiness(self):
        text = render_prometheus(None, None)
        assert validate_text(text) == []

    def test_counters_gain_total_suffix(self):
        snap = {"counters": {"service.submitted": 3.0}}
        text = render_prometheus(snap)
        assert "repro_service_submitted_total 3" in text
        assert validate_text(text) == []

    def test_dynamic_suffixes_become_labels(self):
        snap = {
            "gauges": {
                "service.queue.depth.gzip": {"value": 4.0, "updates": 9},
                "service.queue.depth.sed": {"value": 0.0, "updates": 2},
                "registry.versions.gzip": {"value": 2.0, "updates": 2},
                "registry.active.gzip": {"value": 1.0, "updates": 1},
            }
        }
        text = render_prometheus(snap)
        assert 'repro_service_queue_depth{detector="gzip"} 4' in text
        assert 'repro_service_queue_depth{detector="sed"} 0' in text
        assert 'repro_registry_versions{lineage="gzip"} 2' in text
        assert 'repro_registry_active_version{lineage="gzip"} 1' in text
        assert validate_text(text) == []

    def test_histogram_converts_to_cumulative(self):
        snap = {
            "histograms": {
                "gateway.latency_s": {
                    "boundaries": [0.1, 1.0],
                    "counts": [2, 3],
                    "count": 7,  # 2 overflowed past the last boundary
                    "sum": 4.5,
                    "min": 0.01,
                    "max": 9.0,
                }
            }
        }
        text = render_prometheus(snap)
        assert 'repro_gateway_latency_s_bucket{le="0.1"} 2' in text
        assert 'repro_gateway_latency_s_bucket{le="1"} 5' in text
        assert 'repro_gateway_latency_s_bucket{le="+Inf"} 7' in text
        assert "repro_gateway_latency_s_count 7" in text
        assert validate_text(text) == []

    def test_stats_dict_beats_duplicate_telemetry_counter(self):
        # The sharded stats view merges crashed workers' parent-side
        # accounting; the telemetry counter of the same name must not
        # produce a duplicate (invalid) or contradictory sample.
        snap = {"counters": {"service.submitted": 5.0}}
        stats = {"submitted": 8, "max_depth_seen": 3}
        text = render_prometheus(snap, stats)
        assert "repro_service_submitted_total 8" in text
        assert "repro_service_submitted_total 5" not in text
        assert "repro_service_max_depth_seen 3" in text
        assert validate_text(text) == []

    def test_shard_crashes_exports_as_counter(self):
        text = render_prometheus(None, {"shard_crashes": 2})
        assert "repro_service_shard_crashes_total 2" in text
        assert validate_text(text) == []

    def test_spans_export_as_labeled_counters(self):
        snap = {
            "spans": {
                "hmm.train": {"count": 3, "wall_s": 1.5, "cpu_s": 1.2,
                              "max_wall_s": 0.9}
            }
        }
        text = render_prometheus(snap)
        assert 'repro_span_total{span="hmm.train"} 3' in text
        assert 'repro_span_duration_seconds_total{span="hmm.train"} 1.5' in text
        assert validate_text(text) == []

    def test_weird_names_sanitize_to_valid_output(self):
        snap = {"counters": {"weird name-with:stuff/8": 1.0}}
        stats = {"submitted": 0}
        text = render_prometheus(snap, stats, {"gateway.uptime_seconds": 1.25})
        assert validate_text(text) == []

    def test_non_numeric_stats_entries_are_skipped(self):
        text = render_prometheus(None, {"submitted": 1, "mode": "stream",
                                        "flag": True})
        assert "mode" not in text
        assert "flag" not in text
        assert validate_text(text) == []


# ---------------------------------------------------------------------------
# Outcome mapping
# ---------------------------------------------------------------------------


class TestOutcomeMapping:
    def test_statuses(self):
        assert outcome_status(
            Scored(score=0.0, detector="d", session="s", batch_size=1,
                   queued_s=0.0)
        ) == 200
        assert outcome_status(
            Overloaded(detector="d", session="s",
                       reason=ShedReason.QUEUE_FULL, depth=4)
        ) == 429
        assert outcome_status(
            Overloaded(detector="d", session="s",
                       reason=ShedReason.SHED_OLDEST, depth=4)
        ) == 429
        assert outcome_status(
            Overloaded(detector="d", session="s",
                       reason=ShedReason.DEADLINE, depth=4)
        ) == 429
        assert outcome_status(
            Overloaded(detector="d", session="s",
                       reason=ShedReason.SHUTDOWN, depth=4)
        ) == 503
        assert outcome_status(
            Failed(detector="d", session="s", error="boom")
        ) == 500

    def test_json_round_trip_is_bit_exact(self):
        score = -math.pi / 7.0
        payload = outcome_to_json(
            Streamed(surprise=score, detector="d", session="s",
                     batch_size=1, queued_s=0.0, windowed_score=score)
        )
        decoded = json.loads(json.dumps(payload))
        assert decoded["surprise"] == score
        assert decoded["windowed_score"] == score

    def test_unknown_object_raises(self):
        with pytest.raises(TypeError):
            outcome_to_json(object())


# ---------------------------------------------------------------------------
# In-thread HTTP surface
# ---------------------------------------------------------------------------


@pytest.fixture()
def gateway_stack():
    """An in-process service + registry + running gateway, torn down after."""
    telemetry.enable()
    model = random_model(SYMBOLS, n_states=3, seed=1)
    service = DetectionService(ServiceConfig(max_batch=32, default_window=5))
    service.register(
        "served", PretrainedDetector(model, name="served"),
        threshold=-5.0, window=5,
    )
    service.start()
    registry = ModelRegistry()
    gateway = DetectionGateway(service, registry, GatewayConfig())
    registry.publish("served", model, activate=True)
    gateway.start()
    try:
        yield gateway, service, registry, model
    finally:
        gateway.stop()
        try:
            service.close(drain=False)
        except ReproError:
            pass
        telemetry.disable()


def _request(gateway, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
    try:
        data = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw and raw.lstrip()[:1] in (b"{", b"[") else raw
        return response.status, payload
    finally:
        conn.close()


class TestGatewayHTTP:
    def test_health(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, payload = _request(gateway, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["detectors"] == ["served"]
        assert payload["lineages"] == ["served"]

    def test_unknown_route_404(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, payload = _request(gateway, "GET", "/nope")
        assert status == 404

    def test_wrong_method_405(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, _ = _request(gateway, "POST", "/health", {})
        assert status == 405
        status, _ = _request(gateway, "GET", "/v1/sessions")
        assert status == 405

    def test_invalid_json_400(self, gateway_stack):
        gateway, *_ = gateway_stack
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request("POST", "/v1/sessions", body=b"{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_detector_404(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, _ = _request(
            gateway, "POST", "/v1/sessions",
            {"detector": "ghost", "session": "s", "mode": "stream"},
        )
        assert status == 404

    def test_window_scoring_round_trip(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, payload = _request(
            gateway, "POST", "/v1/sessions/served/w1/observe",
            {"window": ["open", "read", "write", "close", "read"]},
        )
        assert status == 200
        assert payload["kind"] == "scored"
        assert payload["anomalous"] in (False, True)

    def test_stream_lifecycle(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, payload = _request(
            gateway, "POST", "/v1/sessions",
            {"detector": "served", "session": "s1", "mode": "stream"},
        )
        assert (status, payload["mode"]) == (200, "stream")
        status, payload = _request(
            gateway, "POST", "/v1/sessions/served/s1/observe",
            {"symbols": ["open", "read", "write"]},
        )
        assert status == 200
        assert [r["kind"] for r in payload["results"]] == ["streamed"] * 3
        status, payload = _request(gateway, "DELETE", "/v1/sessions/served/s1")
        assert (status, payload["closed"]) == (200, True)
        status, payload = _request(gateway, "DELETE", "/v1/sessions/served/s1")
        assert (status, payload["closed"]) == (200, False)

    def test_observe_requires_exactly_one_payload_kind(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, _ = _request(
            gateway, "POST", "/v1/sessions/served/s1/observe", {}
        )
        assert status == 400
        status, _ = _request(
            gateway, "POST", "/v1/sessions/served/s1/observe",
            {"symbol": "open", "window": ["open"]},
        )
        assert status == 400

    def test_body_over_limit_413(self, gateway_stack):
        gateway, *_ = gateway_stack
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            big = b"x" * (gateway.config.max_body_bytes + 1)
            conn.request("POST", "/v1/sessions", body=big)
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_keep_alive_reuses_one_connection(self, gateway_stack):
        gateway, *_ = gateway_stack
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                assert response.headers.get("Connection") == "keep-alive"
        finally:
            conn.close()

    def test_registry_endpoints(self, gateway_stack, tmp_path):
        gateway, service, registry, model = gateway_stack
        from repro.hmm import save_model

        other = random_model(SYMBOLS, n_states=3, seed=2)
        path = tmp_path / "v2.npz"
        save_model(other, path)
        status, payload = _request(
            gateway, "POST", "/v1/registry/served/publish",
            {"path": str(path), "metadata": {"note": "retrain"}},
        )
        assert (status, payload["version"], payload["active"]) == (200, 2, False)
        status, payload = _request(gateway, "GET", "/v1/registry")
        assert payload["lineages"]["served"] == {"versions": [1, 2], "active": 1}
        status, payload = _request(
            gateway, "POST", "/v1/registry/served/rollout", {"version": 2}
        )
        assert (status, payload["active"]) == (200, True)
        assert registry.active_version("served") == 2
        status, payload = _request(
            gateway, "POST", "/v1/registry/served/rollback", {}
        )
        assert (status, payload["version"]) == (200, 1)
        status, _ = _request(
            gateway, "POST", "/v1/registry/served/rollout", {"version": 99}
        )
        assert status == 404
        status, _ = _request(
            gateway, "POST", "/v1/registry/ghost/rollout", {"version": 1}
        )
        assert status == 404

    def test_rollout_swaps_served_model(self, gateway_stack, tmp_path):
        gateway, service, registry, model = gateway_stack
        from repro.core.streaming import StreamingScorer
        from repro.hmm import save_model

        other = random_model(SYMBOLS, n_states=3, seed=7)
        path = tmp_path / "v2.npz"
        save_model(other, path)
        _request(
            gateway, "POST", "/v1/sessions",
            {"detector": "served", "session": "swapee", "mode": "stream"},
        )
        _request(
            gateway, "POST", "/v1/sessions/served/swapee/observe",
            {"symbol": "open"},
        )
        _request(
            gateway, "POST", "/v1/registry/served/publish",
            {"path": str(path), "activate": True},
        )
        status, payload = _request(
            gateway, "POST", "/v1/sessions/served/swapee/observe",
            {"symbol": "read"},
        )
        assert status == 200
        assert payload["gap"] is False
        expected = StreamingScorer(other, window=5).observe("read")
        assert payload["surprise"] == expected

    def test_metrics_valid_and_carries_gateway_families(self, gateway_stack):
        gateway, *_ = gateway_stack
        _request(gateway, "GET", "/health")
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        finally:
            conn.close()
        assert validate_text(text) == []
        assert "repro_gateway_requests_total" in text
        assert "repro_gateway_latency_s_bucket" in text
        assert "repro_service_submitted_total" in text

    def test_admin_close_then_503(self, gateway_stack):
        gateway, *_ = gateway_stack
        status, payload = _request(
            gateway, "POST", "/v1/admin/close", {"drain": True}
        )
        assert status == 200
        status, _ = _request(
            gateway, "POST", "/v1/sessions/served/w9/observe",
            {"window": ["open", "read", "write", "close", "read"]},
        )
        assert status == 503
