"""Tests for the generic resumable grid runner (``repro.runtime.grid``).

The runner's contract: cells are pure functions of (config, point, derived
seed), persisted worker-side under a content key, so a grid resumes
bit-identical after any interruption and runs bit-identical at any job
count.  These tests pin that contract with a cheap synthetic cell; the
end-to-end robustness/accuracy instantiations are covered in
``test_robustness_grid.py`` and ``test_eval.py``.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.errors import EvaluationError
from repro.runtime import (
    ArtifactCache,
    GridAxis,
    GridResult,
    GridSpec,
    ParallelExecutor,
    run_grid,
)
from repro.runtime.grid import grid_cells_cached


def _affine_cell(point, config, seed, cache):
    """Module-level (picklable) synthetic cell: pure in its arguments."""
    scale = config["scale"] if config else 1
    return {"value": point["x"] * scale + point["y"], "seed": seed}


def _spec(seed: int = 0, scale: int = 3, version: int = 1) -> GridSpec:
    return GridSpec(
        name="test-affine",
        axes=(GridAxis("x", (1, 2, 3)), GridAxis("y", (10, 20))),
        cell=_affine_cell,
        config={"scale": scale},
        seed=seed,
        version=version,
    )


class TestGridSpec:
    def test_points_last_axis_fastest(self):
        points = _spec().points()
        assert points[0] == {"x": 1, "y": 10}
        assert points[1] == {"x": 1, "y": 20}
        assert points[2] == {"x": 2, "y": 10}
        assert len(points) == _spec().n_cells == 6

    def test_axis_validation(self):
        with pytest.raises(EvaluationError, match="no values"):
            GridAxis("x", ())
        with pytest.raises(EvaluationError, match="repeats"):
            GridAxis("x", (1, 1))
        with pytest.raises(EvaluationError, match="needs a name"):
            GridAxis("", (1,))
        with pytest.raises(EvaluationError, match="duplicate axis"):
            GridSpec(
                name="dup",
                axes=(GridAxis("x", (1,)), GridAxis("x", (2,))),
                cell=_affine_cell,
            )
        with pytest.raises(EvaluationError, match="at least one axis"):
            GridSpec(name="empty", axes=(), cell=_affine_cell)

    def test_cell_key_covers_all_inputs(self):
        base = _spec()
        point = base.points()[0]
        assert base.cell_key(point) == _spec().cell_key(point)
        assert base.cell_key(point) != _spec(seed=1).cell_key(point)
        assert base.cell_key(point) != _spec(scale=4).cell_key(point)
        assert base.cell_key(point) != _spec(version=2).cell_key(point)
        assert base.cell_key(point) != base.cell_key(base.points()[1])

    def test_cell_seeds_independent_and_stable(self):
        spec = _spec()
        seeds = [spec.cell_seed(point) for point in spec.points()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [spec.cell_seed(point) for point in spec.points()]
        # The derived seed depends on the master seed.
        assert seeds != [_spec(seed=9).cell_seed(p) for p in _spec().points()]


class TestRunGrid:
    def test_computes_every_cell_in_point_order(self):
        result = run_grid(_spec())
        assert isinstance(result, GridResult)
        assert result.computed == 6 and result.resumed == 0
        for point, cell in result:
            assert cell["value"] == point["x"] * 3 + point["y"]
            assert cell["seed"] == _spec().cell_seed(point)

    def test_cell_and_select_lookups(self):
        result = run_grid(_spec())
        assert result.cell(x=2, y=10)["value"] == 16
        assert len(result.select(x=2)) == 2
        assert len(result.select()) == 6
        with pytest.raises(EvaluationError, match="no grid cell"):
            result.cell(x=99, y=10)

    def test_resume_loads_cached_cells(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = run_grid(_spec(), cache=cache)
        assert (first.computed, first.resumed) == (6, 0)
        second = run_grid(_spec(), cache=cache)
        assert (second.computed, second.resumed) == (0, 6)
        assert second.cells == first.cells
        assert len(second.resumed_keys) == 6

    def test_partial_resume_computes_only_missing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        narrow = GridSpec(
            name="test-affine",
            axes=(GridAxis("x", (1, 2)), GridAxis("y", (10, 20))),
            cell=_affine_cell,
            config={"scale": 3},
        )
        run_grid(narrow, cache=cache)
        # Widening an axis reuses the shared cells: keys hash the point,
        # not the axis lists.
        result = run_grid(_spec(), cache=cache)
        assert (result.resumed, result.computed) == (4, 2)
        assert result.cells == run_grid(_spec()).cells

    def test_resume_false_recomputes_but_persists(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        result = run_grid(_spec(), cache=cache, resume=False)
        assert (result.computed, result.resumed) == (6, 0)
        resumed = run_grid(_spec(), cache=cache)
        assert (resumed.computed, resumed.resumed) == (0, 6)

    def test_config_change_invalidates_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_grid(_spec(scale=3), cache=cache)
        result = run_grid(_spec(scale=4), cache=cache)
        assert result.computed == 6 and result.resumed == 0
        assert result.cell(x=1, y=10)["value"] == 14

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_grid(_spec())
        parallel = run_grid(_spec(), executor=ParallelExecutor(jobs=2))
        assert parallel.cells == serial.cells

    def test_grid_cells_cached_probe(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert grid_cells_cached(_spec(), cache) == 0
        run_grid(_spec(), cache=cache)
        assert grid_cells_cached(_spec(), cache) == 6
        assert grid_cells_cached(_spec(seed=1), cache) == 0

    def test_telemetry_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        telemetry.enable()
        try:
            run_grid(_spec(), cache=cache)
            run_grid(_spec(), cache=cache)
            counters = telemetry.snapshot()["counters"]
        finally:
            telemetry.disable()
        assert counters["grid.cells"] == 12
        assert counters["grid.cells.computed"] == 6
        assert counters["grid.cells.resumed"] == 6
