"""Tests for clustering-based state reduction (Algorithm 1)."""

import numpy as np
import pytest

from repro.analysis import aggregate_program
from repro.errors import ModelError
from repro.program import CallKind
from repro.reduction import cluster_calls, identity_clustering


@pytest.fixture(scope="module")
def gzip_summary():
    from repro.program import load_program

    program = load_program("gzip")
    return aggregate_program(program, CallKind.LIBCALL, context=True).program_summary


class TestIdentityClustering:
    def test_one_state_per_label(self, gzip_summary):
        clustering = identity_clustering(gzip_summary)
        assert clustering.n_clusters == len(gzip_summary.space)

    def test_reduced_summary_equals_original(self, gzip_summary):
        clustering = identity_clustering(gzip_summary)
        reduced = clustering.reduced_summary()
        assert np.allclose(reduced.trans, gzip_summary.trans)
        assert np.allclose(reduced.entry, gzip_summary.entry)


class TestClusterCalls:
    def test_target_ratio_respected(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=0.5, seed=0)
        n = len(gzip_summary.space)
        assert clustering.n_clusters == round(n * 0.5)

    def test_explicit_k(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, n_clusters=10, seed=0)
        assert clustering.n_clusters == 10

    def test_every_label_assigned(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        assert clustering.assignments.shape == (len(gzip_summary.space),)
        assert set(clustering.assignments) == set(clustering.members)

    def test_members_partition_labels(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        all_members = sorted(
            index for members in clustering.members.values() for index in members
        )
        assert all_members == list(range(len(gzip_summary.space)))

    def test_deterministic(self, gzip_summary):
        a = cluster_calls(gzip_summary, ratio=0.5, seed=4)
        b = cluster_calls(gzip_summary, ratio=0.5, seed=4)
        assert np.array_equal(a.assignments, b.assignments)

    def test_invalid_ratio(self, gzip_summary):
        with pytest.raises(ModelError):
            cluster_calls(gzip_summary, ratio=0.0)

    def test_member_labels_readable(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=0.5, seed=0)
        labels = clustering.member_labels(0)
        assert all(label in gzip_summary.space.labels for label in labels)


class TestMassConservation:
    """Algorithm 1's output must conserve the probability mass of the input
    — merging states cannot create or destroy transition probability."""

    def test_transition_mass_conserved(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        reduced = clustering.reduced_summary()
        assert reduced.trans.sum() == pytest.approx(gzip_summary.trans.sum())

    def test_entry_mass_conserved(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        reduced = clustering.reduced_summary()
        assert reduced.entry.sum() == pytest.approx(gzip_summary.entry.sum())

    def test_exit_mass_conserved(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        reduced = clustering.reduced_summary()
        assert reduced.exit.sum() == pytest.approx(gzip_summary.exit.sum())

    def test_reduced_shapes(self, gzip_summary):
        clustering = cluster_calls(gzip_summary, n_clusters=12, seed=0)
        reduced = clustering.reduced_summary()
        assert reduced.trans.shape == (12, 12)
        assert reduced.entry.shape == (12,)

    def test_similar_calls_land_together(self, gzip_summary):
        """Labels with identical transition vectors must share a cluster."""
        vectors = gzip_summary.transition_vectors()
        clustering = cluster_calls(gzip_summary, ratio=1 / 3, seed=0)
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                if np.allclose(vectors[i], vectors[j]):
                    assert clustering.assignments[i] == clustering.assignments[j]
