"""Property-based tests: PCA, K-means, and clustering invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.reduction import PCA, kmeans

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


@st.composite
def data_matrix(draw):
    rows = draw(st.integers(min_value=2, max_value=30))
    cols = draw(st.integers(min_value=1, max_value=8))
    return draw(arrays(np.float64, (rows, cols), elements=finite_floats))


class TestPcaProperties:
    @settings(max_examples=50, deadline=None)
    @given(data_matrix())
    def test_projection_shape_and_finiteness(self, data):
        projected = PCA(n_components=min(3, data.shape[1])).fit_transform(data)
        assert projected.shape[0] == data.shape[0]
        assert np.all(np.isfinite(projected))

    @settings(max_examples=50, deadline=None)
    @given(data_matrix())
    def test_full_rank_projection_preserves_distances(self, data):
        k = min(data.shape)  # keep every possible component
        pca = PCA(n_components=k)
        projected = pca.fit_transform(data)
        rng = np.random.default_rng(0)
        for _ in range(5):
            i, j = rng.integers(0, data.shape[0], size=2)
            original = np.linalg.norm(data[i] - data[j])
            mapped = np.linalg.norm(projected[i] - projected[j])
            assert abs(original - mapped) < 1e-6 * max(1.0, original)

    @settings(max_examples=50, deadline=None)
    @given(data_matrix())
    def test_variance_ordering(self, data):
        pca = PCA(n_components=min(data.shape)).fit(data)
        variances = pca.explained_variance_
        assert np.all(np.diff(variances) <= 1e-9)


class TestKMeansProperties:
    @settings(max_examples=50, deadline=None)
    @given(data_matrix(), st.integers(min_value=1, max_value=5), st.integers(0, 99))
    def test_result_invariants(self, data, k, seed):
        k = min(k, data.shape[0])
        result = kmeans(data, n_clusters=k, seed=seed)
        # Labels in range, centers finite, inertia non-negative.
        assert result.labels.shape == (data.shape[0],)
        assert result.labels.min() >= 0 and result.labels.max() < k
        assert np.all(np.isfinite(result.centers))
        assert result.inertia >= 0

    @settings(max_examples=50, deadline=None)
    @given(data_matrix(), st.integers(0, 99))
    def test_assignment_is_nearest_center(self, data, seed):
        k = min(3, data.shape[0])
        result = kmeans(data, n_clusters=k, seed=seed)
        distances = ((data[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
        chosen = distances[np.arange(data.shape[0]), result.labels]
        assert np.all(chosen <= distances.min(axis=1) + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data_matrix(), st.integers(0, 99))
    def test_deterministic(self, data, seed):
        k = min(2, data.shape[0])
        a = kmeans(data, n_clusters=k, seed=seed)
        b = kmeans(data, n_clusters=k, seed=seed)
        assert np.array_equal(a.labels, b.labels)
