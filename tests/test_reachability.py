"""Tests for conditional/reachability probabilities (Defs 2-3, Eq 1)."""

import pytest

from repro.analysis import conditional_probabilities, reachability
from repro.errors import AnalysisError
from repro.program import FunctionCFG, linear_cfg


class TestConditionalProbabilities:
    def test_single_successor_is_certain(self):
        cfg = linear_cfg("f", ["read"])
        cond = conditional_probabilities(cfg)
        assert all(p == 1.0 for p in cond.values())

    def test_uniform_over_branches(self):
        cfg = FunctionCFG("f")
        a, b, c, d = (cfg.add_block() for _ in range(4))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(a, d)
        cond = conditional_probabilities(cfg)
        assert cond[(a, b)] == pytest.approx(1 / 3)
        assert cond[(a, c)] == pytest.approx(1 / 3)
        assert cond[(a, d)] == pytest.approx(1 / 3)

    def test_exit_block_has_no_entries(self):
        cfg = linear_cfg("f", [])
        cond = conditional_probabilities(cfg)
        exit_block = cfg.exit_blocks()[0]
        assert not any(src == exit_block for src, _ in cond)


class TestReachabilityAcyclic:
    def test_linear_chain_all_one(self):
        cfg = linear_cfg("f", ["read", "write"])
        visits = reachability(cfg)
        assert all(v == pytest.approx(1.0) for v in visits.values())

    def test_diamond_split(self):
        cfg = FunctionCFG("f")
        a, b, c, d = (cfg.add_block() for _ in range(4))
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, d)
        cfg.add_edge(c, d)
        visits = reachability(cfg)
        assert visits[a] == pytest.approx(1.0)
        assert visits[b] == pytest.approx(0.5)
        assert visits[c] == pytest.approx(0.5)
        assert visits[d] == pytest.approx(1.0)  # Eq 1: sums over parents

    def test_nested_branches(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b, c = cfg.add_block(), cfg.add_block()
        d, e = cfg.add_block(), cfg.add_block()
        tail = cfg.add_block()
        cfg.add_edge(a, b)
        cfg.add_edge(a, c)
        cfg.add_edge(b, d)
        cfg.add_edge(b, e)
        cfg.add_edge(d, tail)
        cfg.add_edge(e, tail)
        cfg.add_edge(c, tail)
        visits = reachability(cfg)
        assert visits[d] == pytest.approx(0.25)
        assert visits[tail] == pytest.approx(1.0)

    def test_unreachable_block_zero(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        orphan = cfg.add_block()
        cfg.add_edge(a, b)
        visits = reachability(cfg)
        assert visits[orphan] == 0.0


class TestReachabilityLoops:
    def test_while_loop_expected_visits(self):
        # head -> body -> head (back), head -> exit; uniform: each visit to
        # head continues with prob 1/2, so head's expected visits = 2 and
        # the body's = 1 (geometric series).
        cfg = FunctionCFG("f")
        head = cfg.add_block()
        body = cfg.add_block(call="read")
        tail = cfg.add_block()
        cfg.add_edge(head, body)
        cfg.add_edge(head, tail)
        cfg.add_edge(body, head)
        visits = reachability(cfg)
        assert visits[head] == pytest.approx(2.0, rel=1e-6)
        assert visits[body] == pytest.approx(1.0, rel=1e-6)
        assert visits[tail] == pytest.approx(1.0, rel=1e-6)

    def test_do_while_expected_visits(self):
        # entry -> body; body -> body (back) | exit: body visits = 2.
        cfg = FunctionCFG("f")
        entry = cfg.add_block()
        body = cfg.add_block(call="read")
        tail = cfg.add_block()
        cfg.add_edge(entry, body)
        cfg.add_edge(body, body)
        cfg.add_edge(body, tail)
        visits = reachability(cfg)
        assert visits[body] == pytest.approx(2.0, rel=1e-6)
        assert visits[tail] == pytest.approx(1.0, rel=1e-6)

    def test_nonleaking_cycle_raises(self):
        cfg = FunctionCFG("f")
        a = cfg.add_block()
        b = cfg.add_block()
        c = cfg.add_block()
        cfg.add_edge(a, b)
        cfg.add_edge(b, c)
        cfg.add_edge(c, b)  # b <-> c never exits
        with pytest.raises(AnalysisError, match="converge"):
            reachability(cfg, max_sweeps=50)

    def test_mass_conservation_at_exits(self):
        cfg = FunctionCFG("f")
        head = cfg.add_block()
        body = cfg.add_block(call="read")
        exit_a = cfg.add_block()
        cfg.add_edge(head, body)
        cfg.add_edge(head, exit_a)
        cfg.add_edge(body, head)
        visits = reachability(cfg)
        exits = cfg.exit_blocks()
        assert sum(visits[e] for e in exits) == pytest.approx(1.0, rel=1e-6)
