"""Unit tests for the from-scratch K-means."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.reduction import kmeans


def _blobs(seed=0, per=20, centers=((0, 0), (10, 10), (-10, 10))):
    rng = np.random.default_rng(seed)
    points = []
    for cx, cy in centers:
        points.append(rng.normal(loc=(cx, cy), scale=0.5, size=(per, 2)))
    return np.concatenate(points)


class TestClustering:
    def test_recovers_separated_blobs(self):
        data = _blobs()
        result = kmeans(data, n_clusters=3, seed=1)
        # Every blob must be pure: one cluster id per 20-point group.
        for start in range(0, 60, 20):
            assert len(set(result.labels[start : start + 20])) == 1

    def test_blob_clusters_distinct(self):
        data = _blobs()
        result = kmeans(data, n_clusters=3, seed=1)
        assert len({result.labels[0], result.labels[20], result.labels[40]}) == 3

    def test_k_equals_one(self):
        data = _blobs()
        result = kmeans(data, n_clusters=1, seed=0)
        assert set(result.labels) == {0}
        assert np.allclose(result.centers[0], data.mean(axis=0))

    def test_k_equals_n_zero_inertia(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(8, 3))
        result = kmeans(data, n_clusters=8, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_per_seed(self):
        data = _blobs(seed=5)
        a = kmeans(data, n_clusters=3, seed=9)
        b = kmeans(data, n_clusters=3, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_all_clusters_nonempty(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(50, 4))
        result = kmeans(data, n_clusters=10, seed=7)
        assert set(result.labels) == set(range(10))

    def test_duplicate_points_handled(self):
        data = np.zeros((10, 2))
        data[5:] = 1.0
        result = kmeans(data, n_clusters=2, seed=0)
        assert len(set(result.labels[:5])) == 1
        assert len(set(result.labels[5:])) == 1

    def test_labels_within_range(self):
        data = _blobs()
        result = kmeans(data, n_clusters=4, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < 4

    def test_inertia_decreases_with_more_clusters(self):
        data = _blobs(seed=8)
        inertia_2 = kmeans(data, n_clusters=2, seed=0).inertia
        inertia_5 = kmeans(data, n_clusters=5, seed=0).inertia
        assert inertia_5 <= inertia_2


class TestValidation:
    def test_too_many_clusters(self):
        with pytest.raises(ModelError):
            kmeans(np.ones((3, 2)), n_clusters=4)

    def test_zero_clusters(self):
        with pytest.raises(ModelError):
            kmeans(np.ones((3, 2)), n_clusters=0)

    def test_empty_data(self):
        with pytest.raises(ModelError):
            kmeans(np.empty((0, 2)), n_clusters=1)

    def test_one_dimensional_data_rejected(self):
        with pytest.raises(ModelError):
            kmeans(np.ones(5), n_clusters=1)
