"""Tests for the adversarial robustness harness (``repro.robustness``).

Three layers, matching the module's load-bearing claims:

* **mimicry search** — deterministic under a fixed seed, and evasion is
  monotone in the operating threshold *by construction* (the profile is
  threshold-free; hypothesis pins the read-off);
* **service gap path** — ``note_gap`` marks monitor/stream sessions
  discontinuous, breaks the monitor's sliding window (no fabricated
  cross-gap transitions), and rejects misuse;
* **grid + corpus** — a resumed grid is bit-identical to an
  uninterrupted one in every measurement block, through the Python API,
  the CLI, and (under ``-m stress``) a real ``SIGKILL``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import load_pretrained
from repro.errors import EvaluationError, ReproDeprecationWarning, ServiceError
from repro.hmm import random_model
from repro.robustness import (
    ATTACK_FAMILIES,
    MimicryProfile,
    RobustnessConfig,
    craft_mimicry_stream,
    open_robustness_grid,
    robustness_grid,
)
from repro.robustness.corpus import (
    build_corpus,
    load_corpus,
    render_report,
    write_corpus,
)
from repro.runtime import ArtifactCache
from repro.service import Absorbed, DetectionService, Scored, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

SYMBOLS = ["open", "read", "write", "mmap", "brk", "close", "ioctl", "exit"]
WINDOW = 8


@pytest.fixture(scope="module")
def mimicry_detector():
    return load_pretrained(
        random_model(SYMBOLS, n_states=4, seed=5), name="mimicry"
    )


@pytest.fixture(scope="module")
def normal_segments():
    rng = np.random.default_rng(17)
    # Normal traffic concentrates on the first six symbols; ioctl/exit
    # stay rare (payload material).
    return [
        tuple(SYMBOLS[i] for i in rng.integers(0, 6, size=WINDOW))
        for _ in range(40)
    ]


@pytest.fixture(scope="module")
def profile(mimicry_detector, normal_segments) -> MimicryProfile:
    return craft_mimicry_stream(
        mimicry_detector,
        ("ioctl", "exit"),
        normal_segments,
        window=WINDOW,
        seed=3,
    )


class TestMimicrySearch:
    def test_deterministic_under_fixed_seed(
        self, mimicry_detector, normal_segments, profile
    ):
        again = craft_mimicry_stream(
            mimicry_detector,
            ("ioctl", "exit"),
            normal_segments,
            window=WINDOW,
            seed=3,
        )
        assert again.margins_by_length == profile.margins_by_length
        assert again.expansions == profile.expansions
        assert again.payload == profile.payload

    def test_profile_shape(self, profile):
        assert profile.margins_by_length, "search completed no stream"
        for length, margin in profile.margins_by_length:
            assert length >= len(profile.payload)
            assert np.isfinite(margin)
        assert profile.expansions > 0

    @settings(max_examples=60, deadline=None)
    @given(
        t1=st.floats(-12.0, 2.0, allow_nan=False),
        t2=st.floats(-12.0, 2.0, allow_nan=False),
    )
    def test_evasion_monotone_in_threshold(self, profile, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        # A stricter defender (higher threshold) can only remove evasions.
        if profile.evades(hi):
            assert profile.evades(lo)
        # ... and can only force longer crafted streams.
        length_lo = profile.crafted_length(lo)
        length_hi = profile.crafted_length(hi)
        if length_hi is not None:
            assert length_lo is not None and length_lo <= length_hi
        # evades() and crafted_length() are two reads of the same profile.
        assert profile.evades(lo) == (length_lo is not None)

    def test_rejects_degenerate_inputs(self, mimicry_detector, normal_segments):
        with pytest.raises(EvaluationError, match="payload is empty"):
            craft_mimicry_stream(
                mimicry_detector, (), normal_segments, window=WINDOW
            )
        with pytest.raises(EvaluationError, match="host segments"):
            craft_mimicry_stream(
                mimicry_detector, ("ioctl",), [], window=WINDOW
            )


class TestServiceGapPath:
    def _service(self, detector, window: int = 5) -> DetectionService:
        service = DetectionService(ServiceConfig(max_queue_depth=512))
        service.register("svc", detector, threshold=-50.0, window=window)
        return service

    def test_note_gap_breaks_monitor_window(self, mimicry_detector):
        service = self._service(mimicry_detector)
        service.open_session("svc", "s", "monitor")
        warmup = [
            service.submit("svc", "s", symbol=SYMBOLS[i % 6]) for i in range(5)
        ]
        service.drain_pending()
        assert isinstance(warmup[-1].result(), Scored)
        assert warmup[-1].result().gap is False

        service.note_gap("svc", "s")
        after = [
            service.submit("svc", "s", symbol=SYMBOLS[i % 6]) for i in range(5)
        ]
        service.drain_pending()
        # The sliding window restarted at the gap: four post-gap symbols
        # are warm-up again (a window spanning the gap never occurred)...
        assert all(isinstance(t.result(), Absorbed) for t in after[:4])
        # ... and the first full post-gap window carries the gap mark.
        outcome = after[4].result()
        assert isinstance(outcome, Scored) and outcome.gap is True

    def test_note_gap_drains_queued_symbols_first(self, mimicry_detector):
        service = self._service(mimicry_detector)
        service.open_session("svc", "s", "monitor")
        queued = [
            service.submit("svc", "s", symbol=SYMBOLS[i % 6]) for i in range(5)
        ]
        # No explicit drain: note_gap must place the gap *after* the
        # queued symbols, so the first window still completes clean.
        service.note_gap("svc", "s")
        outcome = queued[-1].result()
        assert isinstance(outcome, Scored) and outcome.gap is False

    def test_note_gap_marks_stream_sessions(self, mimicry_detector):
        service = self._service(mimicry_detector)
        service.open_session("svc", "s", "stream")
        service.submit("svc", "s", symbol="open")
        service.drain_pending()
        service.note_gap("svc", "s", count=3)
        ticket = service.submit("svc", "s", symbol="read")
        service.drain_pending()
        assert ticket.result().gap is True
        assert service._sessions[("svc", "s")].gaps == 3

    def test_note_gap_misuse(self, mimicry_detector):
        service = self._service(mimicry_detector)
        service.open_session("svc", "s", "monitor")
        with pytest.raises(ServiceError, match="count must be >= 1"):
            service.note_gap("svc", "s", count=0)
        with pytest.raises(ServiceError, match="not an open"):
            service.note_gap("svc", "never-opened")
        service.submit("svc", "w", window=tuple(SYMBOLS[:5]))
        service.drain_pending()
        with pytest.raises(ServiceError, match="not an open"):
            service.note_gap("svc", "w")


TEST_CONFIG = RobustnessConfig(mimicry_instances=3, gap_instances=4)


@pytest.fixture(scope="module")
def grid_cache(tmp_path_factory):
    return ArtifactCache(tmp_path_factory.mktemp("robustness-grid"))


@pytest.fixture(scope="module")
def grid_run(grid_cache):
    grid = open_robustness_grid(
        ["gzip"],
        models=["regular-basic", "regular-context"],
        attacks=["mimicry", "gap"],
        severities=[2],
        config=TEST_CONFIG,
        cache=grid_cache,
    )
    result = grid.run()
    return grid, result


class TestRobustnessGrid:
    def test_spec_validates_names(self):
        with pytest.raises(EvaluationError, match="unknown attack"):
            robustness_grid(["gzip"], attacks=["rowhammer"])
        with pytest.raises(Exception):
            robustness_grid(["gzip"], models=["no-such-model"])
        spec = robustness_grid(["gzip"])
        assert spec.n_cells == 4 * len(ATTACK_FAMILIES) * 3

    def test_cells_are_measured(self, grid_run):
        _, result = grid_run
        assert result.computed == 4
        for point, cell in result:
            assert cell.program == "gzip"
            assert cell.model == point["model"]
            assert np.isfinite(cell.threshold)
            assert cell.n_train_segments > 0
            assert 0.0 <= cell.detection_rate <= 1.0
            n = (
                TEST_CONFIG.mimicry_instances
                if point["attack"] == "mimicry"
                else TEST_CONFIG.gap_instances
            )
            assert len(cell.result.instance_detected) == n

    def test_resumed_grid_bit_identical(self, grid_run, grid_cache):
        grid, first = grid_run
        corpus_first = build_corpus(first)
        reopened = open_robustness_grid(
            ["gzip"],
            models=["regular-basic", "regular-context"],
            attacks=["mimicry", "gap"],
            severities=[2],
            config=TEST_CONFIG,
            cache=grid_cache,
        )
        assert reopened.cells_cached() == 4
        second = reopened.run()
        assert second.resumed == 4 and second.computed == 0
        corpus_second = build_corpus(second)
        dump = lambda c: json.dumps(  # noqa: E731
            {"cells": c["cells"], "summary": c["summary"]}, sort_keys=True
        )
        assert dump(corpus_first) == dump(corpus_second)

    def test_corpus_structure_and_roundtrip(self, grid_run, tmp_path):
        grid, _ = grid_run
        corpus = grid.corpus()
        assert corpus["format"] == "repro.robustness.corpus"
        assert corpus["grid"]["n_cells"] == 4
        for cell in corpus["cells"]:
            for block in ("detection", "baseline_detection", "false_alarms"):
                ci = cell[block]
                assert ci["low"] <= ci["estimate"] <= ci["high"]
        claims = corpus["summary"]["claims"]
        assert isinstance(claims["mimicry_lowers_detection"], bool)
        assert claims["regular_context_ge_basic"] in (True, False)

        path = write_corpus(corpus, tmp_path / "corpus.json")
        assert load_corpus(path) == corpus
        tampered = dict(corpus, version=999)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(tampered))
        with pytest.raises(EvaluationError, match="version"):
            load_corpus(bad)
        (tmp_path / "not.json").write_text("{}")
        with pytest.raises(EvaluationError, match="artifact"):
            load_corpus(tmp_path / "not.json")

    def test_report_renders(self, grid_run):
        grid, _ = grid_run
        report = grid.report()
        assert "mimicry" in report and "regular-context" in report
        assert "95%" in report or "CI" in report

    def test_mimicry_lowers_detection_on_some_variant(self, grid_run):
        _, result = grid_run
        drops = [
            cell.baseline_detection_rate - cell.detection_rate
            for _, cell in result.select(attack="mimicry")
        ]
        assert max(drops) > 0, "mimicry never beat the naive splice"


class TestCli:
    def test_robustness_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        corpus_out = tmp_path / "corpus.json"
        report_out = tmp_path / "report.md"
        code = main(
            [
                "--cache-dir",
                str(tmp_path / "cache"),
                "robustness",
                "--programs",
                "gzip",
                "--models",
                "regular-basic",
                "--attacks",
                "gap",
                "--severities",
                "1",
                "--corpus-out",
                str(corpus_out),
                "--report-out",
                str(report_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "robustness grid" in out
        assert "mimicry lowers detection" in out
        corpus = load_corpus(corpus_out)
        assert corpus["grid"]["axes"]["attack"] == ["gap"]
        assert "Robustness" in report_out.read_text() or report_out.stat().st_size

    def test_rejects_unknown_attack(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--attacks", "rowhammer"])


class TestDeprecatedAccuracyShim:
    def test_run_accuracy_grid_warns_and_matches(self, tmp_path):
        from repro.eval import FAST_CONFIG, run_accuracy_grid
        from repro.eval.runners import accuracy_comparisons, accuracy_grid
        from repro.program import CallKind
        from repro.runtime import run_grid

        cache = ArtifactCache(tmp_path)
        spec = accuracy_grid(
            ("gzip",), CallKind.SYSCALL, FAST_CONFIG, models=("regular-basic",)
        )
        direct = accuracy_comparisons(run_grid(spec, cache=cache))
        with pytest.warns(ReproDeprecationWarning, match="run_accuracy_grid"):
            legacy = run_accuracy_grid(
                ("gzip",),
                CallKind.SYSCALL,
                FAST_CONFIG,
                models=("regular-basic",),
                cache=cache,
            )
        assert set(legacy) == set(direct) == {"gzip"}
        assert (
            legacy["gzip"].results["regular-basic"].auc
            == direct["gzip"].results["regular-basic"].auc
        )


@pytest.mark.stress
def test_sigkill_mid_grid_resumes_bit_identical(tmp_path):
    """Kill -9 a running grid, resume it, and demand byte-equality with an
    uninterrupted run (the ISSUE's acceptance scenario, in miniature)."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}

    def args(cache: str, corpus: str) -> list[str]:
        return [
            sys.executable, "-m", "repro",
            "--cache-dir", str(tmp_path / cache),
            "robustness",
            "--programs", "gzip",
            "--models", "regular-basic",
            "--attacks", "gap",
            "--severities", "1", "2",
            "--corpus-out", str(tmp_path / corpus),
        ]

    victim = subprocess.Popen(
        args("cache-a", "killed.json"),
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    time.sleep(3.0)
    victim.kill()  # SIGKILL: no atexit, no cache cleanup
    victim.wait()

    resumed = subprocess.run(
        args("cache-a", "resumed.json"),
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    fresh = subprocess.run(
        args("cache-b", "fresh.json"),
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert fresh.returncode == 0, fresh.stderr

    resumed_corpus = load_corpus(tmp_path / "resumed.json")
    fresh_corpus = load_corpus(tmp_path / "fresh.json")
    measured = lambda c: json.dumps(  # noqa: E731
        {"cells": c["cells"], "summary": c["summary"]}, sort_keys=True
    )
    assert measured(resumed_corpus) == measured(fresh_corpus)
