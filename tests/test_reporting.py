"""Tests for the markdown report generator."""

import pytest

from repro.eval import FAST_CONFIG, ReportSpec, build_report, write_report


@pytest.fixture(scope="module")
def small_report() -> str:
    spec = ReportSpec(
        accuracy_programs=("sed",),
        clustering_programs=("sed",),
        exploit_victims=(),
        include_gadgets=True,
        include_runtime=True,
    )
    return build_report(config=FAST_CONFIG, spec=spec)


class TestBuildReport:
    def test_is_markdown_document(self, small_report):
        assert small_report.startswith("# CMarkov reproduction report")

    def test_all_requested_sections_present(self, small_report):
        for heading in (
            "## Workload coverage",
            "## Model accuracy",
            "## State reduction",
            "## ROP gadget surface",
            "## Static-analysis runtime",
        ):
            assert heading in small_report

    def test_skipped_sections_absent(self, small_report):
        assert "## Exploit detection" not in small_report

    def test_all_four_models_in_accuracy_tables(self, small_report):
        for model in ("cmarkov", "stilo", "regular-basic", "regular-context"):
            assert model in small_report

    def test_tables_are_valid_markdown(self, small_report):
        for line in small_report.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                # Same column count as its separator requires at least one |.
                assert line.endswith("|")

    def test_config_echoed(self, small_report):
        assert f"{FAST_CONFIG.folds}-fold" in small_report


class TestWriteReport:
    def test_writes_file(self, tmp_path, small_report):
        # Reuse the module fixture's spec for speed by writing directly.
        path = tmp_path / "report.md"
        path.write_text(small_report)
        assert path.read_text().startswith("# CMarkov reproduction report")

    def test_write_report_roundtrip(self, tmp_path):
        spec = ReportSpec(
            accuracy_programs=("sed",),
            clustering_programs=("sed",),
            exploit_victims=(),
            include_coverage=False,
            include_gadgets=False,
            include_runtime=False,
        )
        path = write_report(tmp_path / "r.md", config=FAST_CONFIG, spec=spec)
        content = path.read_text()
        assert "## Model accuracy" in content
        assert "## Workload coverage" not in content
