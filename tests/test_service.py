"""Tests for the micro-batched multi-tenant detection service.

The load-bearing guarantees:

* **score equivalence** — a micro-batched drain produces bit-identical
  scores to calling ``Detector.score`` directly on the same windows;
* **no silent drops** — every accepted request resolves with a scored
  outcome, every shed request resolves with a typed ``Overloaded``;
* **sticky sessions** — monitor/stream sessions behave exactly like their
  standalone ``OnlineMonitor`` / ``StreamingScorer`` counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import load_pretrained
from repro.core.monitor import OnlineMonitor
from repro.core.streaming import StreamingScorer
from repro.errors import NotFittedError, ServiceError
from repro.hmm import log_likelihood, random_model
from repro.hmm.forward import log_likelihood_ragged
from repro.hmm.model import HiddenMarkovModel
from repro.service import (
    Absorbed,
    AdmissionPolicy,
    DetectionService,
    Failed,
    Overloaded,
    Scored,
    ServiceConfig,
    ShedReason,
    Streamed,
    load_fleet,
)

# Tier-2 stress selection: CI's stress-concurrency job loops `-m stress`.
pytestmark = pytest.mark.stress

SYMBOLS = ["open", "read", "write", "mmap", "close"]


@pytest.fixture(scope="module")
def model():
    return random_model(SYMBOLS, n_states=4, seed=3)


@pytest.fixture(scope="module")
def detector(model):
    return load_pretrained(model, name="svc")


def make_windows(n: int, length: int = 15, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        tuple(SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=length))
        for _ in range(n)
    ]


def fresh_service(detector, **config_kwargs) -> DetectionService:
    service = DetectionService(ServiceConfig(**config_kwargs))
    service.register("svc", detector, threshold=-2.0)
    return service


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestScoreEquivalence:
    def test_batched_scores_bit_identical_to_detector_score(self, detector):
        """The acceptance-criterion pin: one (B, 15) drain == serial scores."""
        windows = make_windows(96)
        service = fresh_service(detector, max_batch=128)
        tickets = [
            service.submit("svc", f"tenant-{i % 7}", window=w)
            for i, w in enumerate(windows)
        ]
        assert service.pump() == len(windows)
        batched = np.array([t.result().score for t in tickets])
        direct = detector.score(windows)
        assert batched.tolist() == direct.tolist()  # bitwise, not approx

    def test_single_drain_is_one_batch(self, detector):
        service = fresh_service(detector, max_batch=128)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(40)
        ]
        service.pump()
        outcomes = [t.result() for t in tickets]
        assert {o.batch_size for o in outcomes} == {40}
        assert service.stats.batches == 1
        assert service.stats.max_batch_size == 40

    def test_ragged_batch_matches_grouped_forward(self, model):
        rng = np.random.default_rng(9)
        rows = [
            rng.integers(0, model.n_symbols, size=rng.integers(3, 20))
            for _ in range(25)
        ]
        ragged = log_likelihood_ragged(model, rows)
        # Bit-identical to batching each length group together (the code
        # path it promises); per-row calls only agree to float precision
        # (GEMM vs GEMV accumulate in different orders).
        for length in {row.shape[0] for row in rows}:
            positions = [i for i, row in enumerate(rows) if row.shape[0] == length]
            grouped = log_likelihood(model, np.stack([rows[i] for i in positions]))
            assert ragged[positions].tolist() == grouped.tolist()
        per_row = np.array(
            [float(log_likelihood(model, row[None, :])[0]) for row in rows]
        )
        np.testing.assert_allclose(ragged, per_row, rtol=1e-12)

    def test_mixed_length_windows_in_one_drain(self, detector):
        windows = make_windows(10, length=15) + make_windows(10, length=8, seed=1)
        service = fresh_service(detector)
        tickets = [service.submit("svc", "s", window=w) for w in windows]
        service.pump()
        batched = [t.result().score for t in tickets]
        # Each length group matches Detector.score on that group exactly.
        assert batched[:10] == detector.score(windows[:10]).tolist()
        assert batched[10:] == detector.score(windows[10:]).tolist()

    def test_threshold_verdict_on_outcomes(self, detector):
        windows = make_windows(16)
        service = fresh_service(detector)
        tickets = [service.submit("svc", "s", window=w) for w in windows]
        service.pump()
        direct = detector.score(windows)
        for ticket, score in zip(tickets, direct):
            outcome = ticket.result()
            assert outcome.anomalous == (float(score) < -2.0)


class TestAdmissionControl:
    def test_reject_new_sheds_arrivals_and_scores_accepted(self, detector):
        service = fresh_service(
            detector, max_queue_depth=8, admission_policy=AdmissionPolicy.REJECT_NEW
        )
        windows = make_windows(20)
        tickets = [service.submit("svc", "s", window=w) for w in windows]
        # The 12 overflow submissions resolved immediately, typed.
        shed = [t for t in tickets if t.done()]
        assert len(shed) == 12
        assert {t.result().reason for t in shed} == {ShedReason.QUEUE_FULL}
        assert shed == tickets[8:]  # arrivals shed, queue untouched
        service.drain_pending()
        accepted = [t.result() for t in tickets[:8]]
        assert all(isinstance(o, Scored) for o in accepted)
        # Accepted requests kept FIFO order and exact scores.
        assert [o.score for o in accepted] == detector.score(windows[:8]).tolist()
        assert service.stats.shed_queue_full == 12
        assert service.stats.shed_rate == pytest.approx(12 / 20)

    def test_shed_oldest_evicts_head_of_queue(self, detector):
        service = fresh_service(
            detector, max_queue_depth=8, admission_policy=AdmissionPolicy.SHED_OLDEST
        )
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(20)
        ]
        service.drain_pending()
        outcomes = [t.result() for t in tickets]
        # The 12 oldest were evicted; the 8 newest scored.
        assert [isinstance(o, Overloaded) for o in outcomes] == \
            [True] * 12 + [False] * 8
        assert {o.reason for o in outcomes[:12]} == {ShedReason.SHED_OLDEST}
        assert service.stats.shed_oldest == 12

    def test_no_shed_below_admission_limit(self, detector):
        service = fresh_service(detector, max_queue_depth=64)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(64)
        ]
        service.drain_pending()
        assert service.stats.shed_total == 0
        assert service.stats.shed_rate == 0.0
        assert all(isinstance(t.result(), Scored) for t in tickets)

    def test_latency_budget_sheds_stale_requests(self, detector):
        clock = FakeClock()
        service = DetectionService(
            ServiceConfig(latency_budget_s=0.5), clock=clock
        )
        service.register("svc", detector)
        stale = service.submit("svc", "s", window=make_windows(1)[0])
        clock.now += 1.0  # past the budget before the drain runs
        fresh = service.submit("svc", "s", window=make_windows(1, seed=2)[0])
        service.pump()
        assert isinstance(stale.result(), Overloaded)
        assert stale.result().reason is ShedReason.DEADLINE
        assert stale.result().queued_s == pytest.approx(1.0)
        assert isinstance(fresh.result(), Scored)
        assert service.stats.shed_deadline == 1

    def test_every_ticket_resolves(self, detector):
        """The no-silent-drop invariant under overload + shutdown."""
        service = fresh_service(detector, max_queue_depth=4, max_batch=4)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(11)
        ]
        service.pump()
        tickets += [
            service.submit("svc", "s", window=w)
            for w in make_windows(3, seed=5)
        ]
        service.close(drain=True)
        assert all(t.done() for t in tickets)
        assert service.stats.submitted == len(tickets)


class TestShutdown:
    def test_graceful_close_scores_backlog(self, detector):
        service = fresh_service(detector)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(10)
        ]
        handled = service.close(drain=True)
        assert handled == 10
        assert all(isinstance(t.result(), Scored) for t in tickets)
        with pytest.raises(ServiceError):
            service.submit("svc", "s", window=make_windows(1)[0])

    def test_non_draining_close_resolves_backlog_overloaded(self, detector):
        service = fresh_service(detector)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(10)
        ]
        handled = service.close(drain=False)
        assert handled == 10
        outcomes = [t.result() for t in tickets]
        assert {type(o) for o in outcomes} == {Overloaded}
        assert {o.reason for o in outcomes} == {ShedReason.SHUTDOWN}
        assert service.stats.shed_shutdown == 10

    def test_close_is_idempotent(self, detector):
        service = fresh_service(detector)
        service.close()
        assert service.close() == 0

    def test_context_manager_drains_on_clean_exit(self, detector):
        with fresh_service(detector) as service:
            ticket = service.submit("svc", "s", window=make_windows(1)[0])
        assert isinstance(ticket.result(), Scored)

    def test_threaded_deployment_resolves_tickets(self, detector):
        service = fresh_service(detector)
        service.start()
        tickets = [
            service.submit("svc", f"t{i}", window=w)
            for i, w in enumerate(make_windows(30))
        ]
        outcomes = [t.result(timeout=10.0) for t in tickets]
        service.close()
        assert [o.score for o in outcomes] == \
            detector.score(make_windows(30)).tolist()


class TestSessions:
    def test_monitor_session_matches_standalone_monitor(self, detector):
        rng = np.random.default_rng(21)
        symbols = [SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=60)]
        reference = OnlineMonitor(detector, threshold=-1.2, segment_length=15)
        expected_alerts = [
            alert for s in symbols if (alert := reference.observe_symbol(s))
        ]

        service = DetectionService(ServiceConfig(max_batch=7))  # force splits
        service.register("svc", detector, threshold=-1.2, window=15)
        service.open_session("svc", "proc", "monitor")
        tickets = [service.submit("svc", "proc", symbol=s) for s in symbols]
        service.drain_pending()
        outcomes = [t.result() for t in tickets]
        assert sum(isinstance(o, Absorbed) for o in outcomes) == 14
        got_alerts = [
            o.alert for o in outcomes if isinstance(o, Scored) and o.alert
        ]
        assert got_alerts == expected_alerts
        scored = [o.score for o in outcomes if isinstance(o, Scored)]
        windows = [tuple(symbols[i - 14:i + 1]) for i in range(14, len(symbols))]
        assert scored == detector.score(windows).tolist()

    def test_stream_session_matches_standalone_scorer(self, detector):
        rng = np.random.default_rng(33)
        symbols = [SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=40)]
        reference = StreamingScorer.for_detector(detector, window=15)
        expected = reference.observe_many(symbols)

        service = DetectionService(ServiceConfig(max_batch=6))
        service.register("svc", detector, window=15)
        service.open_session("svc", "proc", "stream")
        tickets = [service.submit("svc", "proc", symbol=s) for s in symbols]
        service.drain_pending()
        outcomes = [t.result() for t in tickets]
        assert [o.surprise for o in outcomes] == expected
        assert all(isinstance(o, Streamed) for o in outcomes)
        # Windowed score appears once the window fills, never before.
        assert all(o.windowed_score is None for o in outcomes[:14])
        assert all(o.windowed_score is not None for o in outcomes[14:])

    def test_sessions_are_isolated(self, detector):
        """Interleaved submissions from two streams must not share state."""
        rng = np.random.default_rng(8)
        feed_a = [SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=25)]
        feed_b = [SYMBOLS[i] for i in rng.integers(0, len(SYMBOLS), size=25)]
        service = fresh_service(detector)
        service.open_session("svc", "a", "stream")
        service.open_session("svc", "b", "stream")
        tickets = []
        for sym_a, sym_b in zip(feed_a, feed_b):
            tickets.append(service.submit("svc", "a", symbol=sym_a))
            tickets.append(service.submit("svc", "b", symbol=sym_b))
        service.drain_pending()
        surprises_a = [t.result().surprise for t in tickets[0::2]]
        surprises_b = [t.result().surprise for t in tickets[1::2]]
        assert surprises_a == StreamingScorer.for_detector(detector).observe_many(feed_a)
        assert surprises_b == StreamingScorer.for_detector(detector).observe_many(feed_b)

    def test_symbol_submit_requires_open_session(self, detector):
        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="not open"):
            service.submit("svc", "ghost", symbol="read")

    def test_window_submit_to_stream_session_rejected(self, detector):
        service = fresh_service(detector)
        service.open_session("svc", "s", "stream")
        with pytest.raises(ServiceError, match="stream session"):
            service.submit("svc", "s", window=make_windows(1)[0])

    def test_symbol_submit_to_window_session_rejected(self, detector):
        service = fresh_service(detector)
        service.submit("svc", "s", window=make_windows(1)[0])
        with pytest.raises(ServiceError, match="window session"):
            service.submit("svc", "s", symbol="read")

    def test_mode_mismatch_on_reopen_rejected(self, detector):
        service = fresh_service(detector)
        service.open_session("svc", "s", "monitor")
        assert service.open_session("svc", "s", "monitor").monitor is not None
        with pytest.raises(ServiceError, match="monitor mode"):
            service.open_session("svc", "s", "stream")

    def test_monitor_session_needs_threshold(self, detector):
        service = DetectionService()
        service.register("svc", detector)  # no threshold
        with pytest.raises(ServiceError, match="threshold"):
            service.open_session("svc", "s", "monitor")

    def test_exactly_one_of_window_or_symbol(self, detector):
        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="exactly one"):
            service.submit("svc", "s")
        with pytest.raises(ServiceError, match="exactly one"):
            service.submit("svc", "s", window=make_windows(1)[0], symbol="read")


def no_unk_model() -> HiddenMarkovModel:
    """An HMM whose alphabet has no <unk> slot: unknown symbols raise."""
    n = len(SYMBOLS)
    uniform = np.full((n, n), 1.0 / n)
    return HiddenMarkovModel(
        transition=uniform,
        emission=uniform,
        initial=np.full(n, 1.0 / n),
        symbols=tuple(SYMBOLS),
    )


class TestFailureSemantics:
    """Scoring failures resolve tickets typed — never stranded."""

    def test_unknown_symbol_fails_alone_in_batch(self):
        detector = load_pretrained(no_unk_model(), name="nounk")
        service = DetectionService()
        service.register("svc", detector)
        good = make_windows(6)
        bad = ("open", "exfiltrate", "read") + ("close",) * 12
        tickets = [service.submit("svc", "s", window=w) for w in good[:3]]
        bad_ticket = service.submit("svc", "s", window=bad)
        tickets += [service.submit("svc", "s", window=w) for w in good[3:]]
        service.pump()
        outcome = bad_ticket.result()
        assert isinstance(outcome, Failed)
        assert "exfiltrate" in outcome.error
        # The rest of the drain scored normally, bit-identical.
        scores = [t.result().score for t in tickets]
        assert scores == detector.score(good).tolist()
        assert service.stats.failed == 1
        assert service.stats.scored == 6

    def test_stream_scoring_failure_isolated_and_gapped(self):
        detector = load_pretrained(no_unk_model(), name="nounk")
        service = DetectionService()
        service.register("svc", detector)
        service.open_session("svc", "s", "stream")
        tickets = [
            service.submit("svc", "s", symbol=s)
            for s in ("open", "bogus", "read")
        ]
        service.drain_pending()
        first, failed, last = (t.result() for t in tickets)
        assert isinstance(first, Streamed) and first.gap is False
        assert isinstance(failed, Failed) and "bogus" in failed.error
        assert isinstance(last, Streamed) and last.gap is True
        # The belief state skipped the bad symbol cleanly: surviving
        # surprisals match a scorer fed only the surviving symbols.
        reference = StreamingScorer.for_detector(detector)
        assert [first.surprise, last.surprise] == \
            reference.observe_many(["open", "read"])

    def test_drain_crash_resolves_popped_tickets(self, detector, monkeypatch):
        """The backstop: an unexpected mid-drain crash strands nothing."""
        import repro.service.scheduler as scheduler_module

        def boom(model, rows):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(scheduler_module, "log_likelihood_ragged", boom)
        service = fresh_service(detector)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(5)
        ]
        with pytest.raises(RuntimeError, match="kaboom"):
            service.pump()
        outcomes = [t.result(timeout=0.1) for t in tickets]
        assert all(isinstance(o, Failed) for o in outcomes)
        assert all("kaboom" in o.error for o in outcomes)
        assert service.stats.failed == 5

    def test_threaded_loop_survives_drain_crash(self, detector):
        service = fresh_service(detector)
        real_drain = service._scheduler.drain
        crashes = {"n": 0}

        def flaky(lane, stats):
            if crashes["n"] == 0 and lane.queue:
                crashes["n"] += 1
                raise RuntimeError("transient")
            return real_drain(lane, stats)

        service._scheduler.drain = flaky
        service.start()
        windows = make_windows(8)
        tickets = [service.submit("svc", "s", window=w) for w in windows]
        outcomes = [t.result(timeout=10.0) for t in tickets]
        service.close()
        assert crashes["n"] == 1  # the loop hit the crash and kept going
        assert [o.score for o in outcomes] == detector.score(windows).tolist()

    def test_graceful_close_survives_drain_crash(self, detector, monkeypatch):
        import repro.service.scheduler as scheduler_module

        calls = {"n": 0}
        real = log_likelihood_ragged

        def flaky(model, rows):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(model, rows)

        monkeypatch.setattr(scheduler_module, "log_likelihood_ragged", flaky)
        service = fresh_service(detector, max_batch=4)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(10)
        ]
        service.close(drain=True)
        outcomes = [t.result(timeout=0.1) for t in tickets]
        # First popped batch failed typed; the rest of the backlog scored.
        assert sum(isinstance(o, Failed) for o in outcomes) == 4
        assert sum(isinstance(o, Scored) for o in outcomes) == 6


class TestGapSemantics:
    def test_shed_marks_stream_session_gapped(self, detector):
        service = fresh_service(
            detector, max_queue_depth=2,
            admission_policy=AdmissionPolicy.REJECT_NEW,
        )
        service.open_session("svc", "s", "stream")
        tickets = [service.submit("svc", "s", symbol="open") for _ in range(3)]
        shed = tickets[2].result()
        assert isinstance(shed, Overloaded)
        service.drain_pending()
        assert all(t.result().gap is True for t in tickets[:2])
        assert service._sessions[("svc", "s")].gaps == 1

    def test_window_sessions_never_gap(self, detector):
        service = fresh_service(detector, max_queue_depth=2)
        tickets = [
            service.submit("svc", "s", window=w) for w in make_windows(3)
        ]
        service.drain_pending()
        assert all(
            o.gap is False
            for o in (t.result() for t in tickets)
            if isinstance(o, Scored)
        )

    def test_reset_clears_gap(self, detector):
        service = fresh_service(detector, max_queue_depth=1)
        session = service.open_session("svc", "s", "stream")
        service.submit("svc", "s", symbol="open")
        service.submit("svc", "s", symbol="read")  # shed -> gap
        service.drain_pending()
        assert session.gaps == 1
        session.reset()
        ticket = service.submit("svc", "s", symbol="write")
        service.drain_pending()
        assert session.gaps == 0
        assert ticket.result().gap is False


class TestRegistration:
    def test_unfitted_detector_rejected(self, gzip_program):
        from repro.api import build_detector

        bare = build_detector("cmarkov", gzip_program, "syscall")
        with pytest.raises(NotFittedError):
            DetectionService().register("raw", bare)

    def test_non_hmm_detector_rejected(self):
        """A fitted baseline without an HMM fails at register, not drain."""
        from repro.core import NGramDetector
        from repro.program import CallKind
        from repro.tracing import SegmentSet

        ngram = NGramDetector(kind=CallKind.SYSCALL, context=False, window=3)
        segments = SegmentSet(length=15)
        segments.update([tuple("abcde" * 3), tuple("aabba" * 3)])
        ngram.fit(segments)
        assert ngram.is_fitted
        with pytest.raises(ServiceError, match="HiddenMarkovModel"):
            DetectionService().register("stide", ngram)

    def test_duplicate_name_rejected(self, detector):
        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="already registered"):
            service.register("svc", detector)

    def test_unknown_detector_rejected(self, detector):
        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="no detector"):
            service.submit("nope", "s", window=make_windows(1)[0])

    def test_register_fleet_from_models(self, model, tmp_path):
        from repro.hmm import save_model

        save_model(model, tmp_path / "svc.npz")
        fleet = load_fleet({"a": tmp_path / "svc.npz", "b": model})
        service = DetectionService()
        service.register_fleet(fleet, thresholds={"a": -2.0})
        assert service.detectors == ("a", "b")
        ticket = service.submit("a", "s", window=make_windows(1)[0])
        service.pump()
        assert isinstance(ticket.result(), Scored)

    def test_bad_config_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue_depth=0)
        with pytest.raises(ServiceError):
            ServiceConfig(latency_budget_s=-1.0)


# ----------------------------------------------------------------------
# Property: the streaming scorer's windowed score is the windowed monitor
# score.  For a stream of exactly T events, the surprisals telescope to
# -log P(o_1..o_T), so their negated mean IS the per-symbol window score
# Detector.score computes — the identity the Streamed.windowed_score field
# leans on.
# ----------------------------------------------------------------------
@st.composite
def stream_case(draw):
    n_states = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    length = draw(st.integers(min_value=1, max_value=20))
    model = random_model(SYMBOLS, n_states=n_states, seed=seed)
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(SYMBOLS) - 1),
            min_size=length,
            max_size=length,
        )
    )
    return model, [SYMBOLS[i] for i in indices]


@settings(max_examples=60, deadline=None)
@given(stream_case())
def test_windowed_surprisal_mean_matches_window_score(case):
    model, symbols = case
    detector = load_pretrained(model)
    scorer = StreamingScorer.for_detector(detector, window=len(symbols))
    scorer.observe_many(symbols)
    assert scorer.window_full
    window_score = float(detector.score([tuple(symbols)])[0])
    assert scorer.windowed_score == pytest.approx(window_score, rel=1e-9, abs=1e-9)


class TestWarmSwap:
    """`swap_detector`: barrier semantics, session continuity, validation."""

    def test_barrier_drains_backlog_under_old_model(self, detector, model):
        """Windows admitted before the swap score under the pre-swap
        detector, bit-identically — the swap never rescores a backlog."""
        retrained = load_pretrained(
            random_model(SYMBOLS, n_states=4, seed=77), name="svc2"
        )
        service = fresh_service(detector)
        windows = make_windows(9)
        tickets = [
            service.submit("svc", f"s{i}", window=w)
            for i, w in enumerate(windows)
        ]
        drained = service.swap_detector("svc", retrained)
        assert drained == len(windows)
        old_scores = detector.score(windows).tolist()
        assert [t.result().score for t in tickets] == old_scores

        # ... and only post-barrier work sees the new model.
        after = service.submit("svc", "late", window=windows[0])
        service.drain_pending()
        assert after.result().score == retrained.score([windows[0]])[0]
        assert after.result().score != old_scores[0]

    def test_stream_sessions_rebound_not_dropped(self, detector):
        """An open stream survives the swap: no gap marker, and post-swap
        surprisals are bit-identical to the new model's restarted filter."""
        retrained_model = random_model(SYMBOLS, n_states=4, seed=78)
        retrained = load_pretrained(retrained_model, name="svc2")
        service = fresh_service(detector)
        service.open_session("svc", "proc", "stream")
        feed = [SYMBOLS[i % len(SYMBOLS)] for i in range(12)]

        def observe(symbol):
            ticket = service.submit("svc", "proc", symbol=symbol)
            service.drain_pending()
            return ticket.result()

        pre = [observe(s) for s in feed[:6]]
        service.swap_detector("svc", retrained)
        post = [observe(s) for s in feed[6:]]

        expected_pre = StreamingScorer.for_detector(
            detector, window=15
        ).observe_many(feed[:6])
        expected_post = StreamingScorer.for_detector(
            retrained, window=15
        ).observe_many(feed[6:])
        assert [o.surprise for o in pre] == expected_pre
        assert [o.surprise for o in post] == expected_post
        assert all(o.gap is False for o in pre + post)

    def test_swap_keeps_lane_operating_point(self, detector):
        """Threshold and window outlive the retrain: a monitor session
        opened after the swap still alerts at the registered threshold."""
        retrained = load_pretrained(
            random_model(SYMBOLS, n_states=4, seed=79), name="svc2"
        )
        service = DetectionService(ServiceConfig(default_window=3))
        service.register("svc", detector, threshold=1e9, window=3)
        service.swap_detector("svc", retrained)
        service.open_session("svc", "m", "monitor")  # needs the threshold
        tickets = [
            service.submit("svc", "m", symbol=s)
            for s in ["open", "read", "write"]
        ]
        service.drain_pending()
        last = tickets[-1].result()
        assert isinstance(last, Scored)
        assert last.alert is not None  # impossible threshold always alerts

    def test_swap_validation_mirrors_register(self, detector, gzip_program):
        from repro.api import build_detector

        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="no detector"):
            service.swap_detector("ghost", detector)
        bare = build_detector("cmarkov", gzip_program, "syscall")
        with pytest.raises(NotFittedError):
            service.swap_detector("svc", bare)

        class FakeFitted:
            is_fitted = True
            model = object()

        with pytest.raises(ServiceError, match="HiddenMarkovModel"):
            service.swap_detector("svc", FakeFitted())
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.swap_detector("svc", detector)


class TestCloseSession:
    def test_close_session_round_trip(self, detector):
        service = fresh_service(detector)
        service.open_session("svc", "s", "stream")
        assert service.close_session("svc", "s") is True
        assert service.close_session("svc", "s") is False
        # Closing frees the name for a different mode.
        service.open_session("svc", "s", "monitor")

    def test_close_session_unknown_detector_raises(self, detector):
        service = fresh_service(detector)
        with pytest.raises(ServiceError, match="no detector"):
            service.close_session("ghost", "s")
