"""Unit tests for binary-image layout."""

import pytest

from repro.errors import ProgramStructureError
from repro.program import (
    ProgramBuilder,
    layout_libc,
    layout_program,
    load_program,
)
from repro.program.image import SYSCALL_NUMBERS
from repro.program.instructions import SYSCALL_OPCODE


@pytest.fixture()
def small_image():
    pb = ProgramBuilder("img")
    pb.function("main").seq("read", "helper")
    pb.function("helper").seq("write")
    return layout_program(pb.build(), data_bytes=64, seed=3)


class TestLayout:
    def test_extents_cover_all_functions(self, small_image):
        assert set(small_image.extents) == {"main", "helper"}

    def test_extents_are_disjoint(self, small_image):
        spans = sorted(small_image.extents.values())
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_function_at_resolves_inside_extent(self, small_image):
        for name, (start, end) in small_image.extents.items():
            assert small_image.function_at(start) == name
            assert small_image.function_at(end - 1) == name

    def test_function_at_data_region_is_none(self, small_image):
        last_end = max(end for _, end in small_image.extents.values())
        assert small_image.function_at(last_end + 10) is None

    def test_function_at_before_base_is_none(self, small_image):
        assert small_image.function_at(0) is None

    def test_syscall_sites_recorded(self, small_image):
        names = {(s.syscall, s.function) for s in small_image.syscall_sites}
        assert names == {("read", "main"), ("write", "helper")}

    def test_syscall_sites_decode_as_syscalls(self, small_image):
        base = 0x1000
        for site in small_image.syscall_sites:
            assert small_image.data[site.address - base] == SYSCALL_OPCODE

    def test_intended_syscall_lookup(self, small_image):
        site = small_image.syscall_sites[0]
        assert small_image.intended_syscall_at(site.address) is site
        assert small_image.intended_syscall_at(site.address + 1) is None

    def test_syscall_number_encoded_before_instruction(self, small_image):
        base = 0x1000
        for site in small_image.syscall_sites:
            offset = site.address - base
            assert small_image.data[offset - 2] == 0xB8  # mov_imm
            assert small_image.data[offset - 1] == SYSCALL_NUMBERS[site.syscall]

    def test_deterministic(self):
        a = layout_program(load_program("gzip"))
        b = layout_program(load_program("gzip"))
        assert a.data == b.data

    def test_negative_data_bytes_raises(self):
        pb = ProgramBuilder("p")
        pb.function("main").seq("read")
        with pytest.raises(ProgramStructureError):
            layout_program(pb.build(), data_bytes=-1)


class TestLibcImage:
    def test_has_wrapper_per_syscall(self):
        from repro.program import SYSCALLS

        libc = layout_libc()
        for syscall in SYSCALLS:
            assert f"__{syscall}" in libc.extents

    def test_all_syscalls_have_sites(self):
        from repro.program import SYSCALLS

        libc = layout_libc()
        assert {s.syscall for s in libc.syscall_sites} >= set(SYSCALLS)
