"""Exact-number aggregation tests on deeper hand-built programs.

Each case works out the paper's Definition 4/5 mass by hand for a call-graph
shape that stresses a different part of the splice algebra: diamonds, shared
callees, probabilistic pass-through, entry/exit mixing, and loops around
internal calls.
"""

import pytest

from repro.analysis import aggregate_program
from repro.program import CallKind, ProgramBuilder


def _summary(pb, kind=CallKind.SYSCALL):
    return aggregate_program(pb.build(), kind, context=True).program_summary


def _cell(summary, src, dst):
    return float(
        summary.trans[summary.space.index(src), summary.space.index(dst)]
    )


class TestDiamondCallGraph:
    """main -> {left, right} -> shared: context of shared stays 'shared'."""

    @pytest.fixture()
    def summary(self):
        pb = ProgramBuilder("diamond")
        pb.function("shared").call("close")
        pb.function("left").seq("read", "shared")
        pb.function("right").seq("write", "shared")
        pb.function("main").branch(["left"], ["right"])
        return _summary(pb)

    def test_both_paths_reach_shared(self, summary):
        assert _cell(summary, "read@left", "close@shared") == pytest.approx(0.5)
        assert _cell(summary, "write@right", "close@shared") == pytest.approx(0.5)

    def test_shared_occurrence_mass_sums(self, summary):
        close_in = summary.trans[:, summary.space.index("close@shared")].sum()
        assert close_in == pytest.approx(1.0)

    def test_entry_split(self, summary):
        assert summary.entry[summary.space.index("read@left")] == pytest.approx(0.5)
        assert summary.entry[summary.space.index("write@right")] == pytest.approx(0.5)

    def test_exit_is_always_shared(self, summary):
        assert summary.exit[summary.space.index("close@shared")] == pytest.approx(1.0)


class TestProbabilisticPassthrough:
    """A callee that emits only half the time must split the caller's pair
    mass between bridging and through-callee paths."""

    @pytest.fixture()
    def summary(self):
        pb = ProgramBuilder("maybe")
        pb.function("maybe_log").branch(["write"], empty_arm=True)
        pb.function("main").seq("read", "maybe_log", "close")
        return _summary(pb)

    def test_through_path(self, summary):
        assert _cell(summary, "read@main", "write@maybe_log") == pytest.approx(0.5)
        assert _cell(summary, "write@maybe_log", "close@main") == pytest.approx(0.5)

    def test_bridging_path(self, summary):
        assert _cell(summary, "read@main", "close@main") == pytest.approx(0.5)

    def test_total_outgoing_from_read(self, summary):
        row = summary.trans[summary.space.index("read@main"), :]
        assert row.sum() == pytest.approx(1.0)


class TestNestedPassthrough:
    """Two stacked maybe-emitting callees compose multiplicatively."""

    def test_quarter_mass_through_both(self):
        pb = ProgramBuilder("nested")
        pb.function("inner").branch(["write"], empty_arm=True)
        pb.function("outer").call("inner")
        pb.function("main").seq("read", "outer", "close")
        summary = _summary(pb)
        # inner emits w.p. 1/2; outer inherits it exactly.
        assert _cell(summary, "read@main", "write@inner") == pytest.approx(0.5)
        assert _cell(summary, "read@main", "close@main") == pytest.approx(0.5)


class TestLoopAroundCall:
    """A loop whose body is an internal call multiplies the callee's mass
    by the expected iteration count."""

    def test_expected_iterations_scale_mass(self):
        pb = ProgramBuilder("loopcall")
        pb.function("work").call("read")
        pb.function("main").loop(["work"], may_skip=False)
        summary = _summary(pb)
        read = summary.space.index("read@work")
        # E[iterations] = 2 at uniform exit prob 1/2: read occurs twice,
        # giving one read->read pair per extra iteration = mass 1.
        assert summary.trans[read, read] == pytest.approx(1.0, rel=1e-6)
        assert summary.entry[read] == pytest.approx(1.0, rel=1e-6)


class TestSharedCalleeCalledTwice:
    def test_pair_between_two_invocations(self):
        pb = ProgramBuilder("twice")
        pb.function("util").seq("read", "write")
        pb.function("main").seq("util", "util")
        summary = _summary(pb)
        # Inside each invocation: read->write (mass 2: twice).
        assert _cell(summary, "read@util", "write@util") == pytest.approx(2.0)
        # Between invocations: write->read exactly once.
        assert _cell(summary, "write@util", "read@util") == pytest.approx(1.0)


class TestMixedKindsThroughCallGraph:
    def test_libcall_view_bridges_syscall_only_callee(self):
        pb = ProgramBuilder("mixed")
        pb.function("sysonly").seq("read", "write")
        pb.function("main").seq("malloc", "sysonly", "free")
        summary = _summary(pb, kind=CallKind.LIBCALL)
        assert _cell(summary, "malloc@main", "free@main") == pytest.approx(1.0)

    def test_syscall_view_bridges_libcalls(self):
        pb = ProgramBuilder("mixed2")
        pb.function("libonly").seq("malloc", "free")
        pb.function("main").seq("read", "libonly", "write")
        summary = _summary(pb, kind=CallKind.SYSCALL)
        assert _cell(summary, "read@main", "write@main") == pytest.approx(1.0)


class TestDeepChainExactness:
    def test_five_level_chain(self):
        pb = ProgramBuilder("deep")
        names = [f"level{i}" for i in range(5)]
        for index, name in enumerate(names):
            fb = pb.function(name)
            fb.call("read" if index % 2 == 0 else "write")
            if index + 1 < len(names):
                fb.call(names[index + 1])
        pb.function("main").call(names[0])
        summary = _summary(pb)
        # Consecutive levels are adjacent pairs with probability 1.
        for index in range(4):
            src = ("read" if index % 2 == 0 else "write") + f"@level{index}"
            dst = ("read" if (index + 1) % 2 == 0 else "write") + f"@level{index + 1}"
            assert _cell(summary, src, dst) == pytest.approx(1.0)

    def test_chain_entry_and_exit(self):
        pb = ProgramBuilder("deep2")
        pb.function("a").seq("read", "b")
        pb.function("b").call("write")
        pb.function("main").call("a")
        summary = _summary(pb)
        assert summary.entry[summary.space.index("read@a")] == pytest.approx(1.0)
        assert summary.exit[summary.space.index("write@b")] == pytest.approx(1.0)
        assert summary.passthrough == pytest.approx(0.0, abs=1e-9)
