"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "emacs"])

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "gzip", "--kind", "netcall"])


class TestCommands:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        for name in ("flex", "nginx", "proftpd"):
            assert name in out

    def test_analyze(self, capsys):
        assert main(["analyze", "gzip", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "syscall labels" in out
        assert "probability" in out

    def test_analyze_no_context(self, capsys):
        assert main(["analyze", "gzip", "--no-context", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "@" not in out.splitlines()[-1]

    def test_gadgets(self, capsys):
        assert main(["gadgets", "gzip"]) == 0
        out = capsys.readouterr().out
        assert "context-compatible" in out

    def test_train_and_score_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "gzip.npz"
        assert (
            main(
                [
                    "train",
                    "gzip",
                    "--model",
                    "stilo",
                    "--cases",
                    "10",
                    "--output",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists() or model_path.with_suffix(".npz.npz").exists()

        segments_file = tmp_path / "segments.txt"
        segments_file.write_text(
            "brk uname rt_sigaction rt_sigaction getenv\n"
            "execve execve execve execve execve\n"
        )
        assert main(["score", str(model_path), str(segments_file)]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        scores = [float(line.split()[0]) for line in lines[-2:]]
        assert len(scores) == 2

    def test_score_empty_file_errors(self, tmp_path):
        from repro.hmm import random_model, save_model

        model_path = tmp_path / "m.npz"
        save_model(random_model(["a"], seed=0), model_path)
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["score", str(model_path), str(empty)]) == 1


class TestTraceCommands:
    def test_trace_writes_log(self, tmp_path, capsys):
        out = tmp_path / "t.log"
        assert main(["trace", "gzip", "--cases", "3", "--output", str(out)]) == 0
        assert out.exists()
        assert "3 traces" in capsys.readouterr().out

    def test_score_trace_roundtrip(self, tmp_path, capsys):
        log_path = tmp_path / "t.log"
        model_path = tmp_path / "m.npz"
        assert main(["trace", "gzip", "--cases", "3", "--output", str(log_path)]) == 0
        assert (
            main(
                [
                    "train", "gzip", "--model", "cmarkov", "--cases", "10",
                    "--output", str(model_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "score-trace", str(model_path), str(log_path),
                    "--threshold", "-50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "segments flagged" in out

    def test_score_trace_empty_log_errors(self, tmp_path):
        from repro.hmm import random_model, save_model

        model_path = tmp_path / "m.npz"
        save_model(random_model(["a"], seed=0), model_path)
        log_path = tmp_path / "t.log"
        log_path.write_text("# trace program=p case=c\nsyscall read @ f\n")
        assert main(["score-trace", str(model_path), str(log_path)]) == 1

    def test_serve_replay_pumps_past_small_queue(self, tmp_path, capsys):
        """Replay larger than --queue-depth must score fully, not shed."""
        log_path = tmp_path / "t.log"
        model_path = tmp_path / "m.npz"
        assert main(["trace", "gzip", "--cases", "4", "--output",
                     str(log_path)]) == 0
        assert main(["train", "gzip", "--model", "cmarkov", "--cases", "10",
                     "--output", str(model_path)]) == 0
        capsys.readouterr()
        assert main(["serve", str(model_path), str(log_path),
                     "--queue-depth", "4", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "rate 0.00%" in out          # shed-rate exactly zero
        assert "failed to score" not in out

    def test_serve_sharded_replay(self, tmp_path, capsys):
        """--shards N replays through the multi-process service."""
        log_path = tmp_path / "t.log"
        model_path = tmp_path / "m.npz"
        assert main(["trace", "gzip", "--cases", "4", "--output",
                     str(log_path)]) == 0
        assert main(["train", "gzip", "--model", "cmarkov", "--cases", "10",
                     "--output", str(model_path)]) == 0
        capsys.readouterr()
        assert main(["serve", str(model_path), str(log_path),
                     "--shards", "2", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "rate 0.00%" in out
        assert "failed to score" not in out

    def test_call_graph_dot(self, capsys):
        assert main(["dot", "gzip"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "gzip"')
        assert '"main"' in out

    def test_function_cfg_dot(self, capsys):
        assert main(["dot", "gzip", "--function", "sys_read"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "sys_read"')
        assert "read" in out

    def test_unknown_function_reports_error(self, capsys):
        assert main(["dot", "gzip", "--function", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportCommand:
    def test_markdown_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--program", "sed", "--markdown", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("# CMarkov reproduction report")
        assert "## Model accuracy" in content
        assert "sed" in content


class TestServeFailureExit:
    def test_serve_exits_nonzero_on_failed_outcomes(self, tmp_path, capsys):
        """A replay that produces typed ``Failed`` outcomes must exit 1 so
        operators (and CI) see the breakage — not a green run with a
        stderr footnote."""
        import numpy as np

        from repro.hmm import save_model
        from repro.hmm.model import HiddenMarkovModel
        from repro.program import CallKind
        from repro.tracing import CallEvent, Trace, write_traces

        # An alphabet with no <unk> slot: the unknown symbol below cannot
        # encode, so its window resolves Failed instead of absorbing.
        symbols = ("open", "read", "close")
        n = len(symbols)
        uniform = np.full((n, n), 1.0 / n)
        model = HiddenMarkovModel(
            transition=uniform,
            emission=uniform,
            initial=np.full(n, 1.0 / n),
            symbols=symbols,
        )
        model_path = tmp_path / "m.npz"
        save_model(model, model_path)

        trace = Trace(program="p", case_id="c")
        for name in ["open", "read", "mystery", "close", "open"]:
            trace.append(CallEvent(name, "f", CallKind.SYSCALL))
        log_path = tmp_path / "t.log"
        write_traces([trace], log_path)

        capsys.readouterr()
        code = main(
            ["serve", str(model_path), str(log_path), "--length", "5"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "failed to score" in captured.err


class TestGatewayParser:
    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway", "m.npz"])
        assert args.command == "gateway"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.name == "served"
        assert args.shards == 1
        assert args.no_pump is False

    def test_gateway_flags(self):
        args = build_parser().parse_args(
            ["gateway", "m.npz", "--shards", "2", "--queue-depth", "8",
             "--no-pump", "--port", "8125"]
        )
        assert args.shards == 2
        assert args.queue_depth == 8
        assert args.no_pump is True
        assert args.port == 8125
