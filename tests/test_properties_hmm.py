"""Property-based tests: HMM inference invariants on random models."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmm import (
    TrainingConfig,
    backward,
    forward,
    log_likelihood,
    posterior_states,
    random_model,
    train,
)


@st.composite
def model_and_obs(draw):
    n_states = draw(st.integers(min_value=1, max_value=5))
    n_symbols = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    symbols = [f"s{i}" for i in range(n_symbols)]
    model = random_model(symbols, n_states=n_states, seed=seed)
    batch = draw(st.integers(min_value=1, max_value=8))
    length = draw(st.integers(min_value=1, max_value=12))
    rng = np.random.default_rng(seed + 1)
    obs = rng.integers(0, model.n_symbols, size=(batch, length))
    return model, obs


@settings(max_examples=60, deadline=None)
@given(model_and_obs())
def test_loglik_finite_and_nonpositive(case):
    model, obs = case
    ll = log_likelihood(model, obs)
    assert np.all(np.isfinite(ll))
    assert np.all(ll <= 1e-9)


@settings(max_examples=60, deadline=None)
@given(model_and_obs())
def test_alpha_normalized(case):
    model, obs = case
    alpha, scales = forward(model, obs)
    assert np.allclose(alpha.sum(axis=2), 1.0)
    assert np.all(scales > 0)


@settings(max_examples=60, deadline=None)
@given(model_and_obs())
def test_posteriors_are_distributions(case):
    model, obs = case
    gamma = posterior_states(model, obs)
    assert np.allclose(gamma.sum(axis=2), 1.0)
    assert np.all(gamma >= 0)


@settings(max_examples=60, deadline=None)
@given(model_and_obs())
def test_alpha_beta_product_time_invariant(case):
    model, obs = case
    alpha, scales = forward(model, obs)
    beta = backward(model, obs, scales)
    products = (alpha * beta).sum(axis=2)
    for row in products:
        assert np.allclose(row, row[0], rtol=1e-8)


@settings(max_examples=25, deadline=None)
@given(model_and_obs())
def test_one_em_step_never_decreases_training_likelihood(case):
    model, obs = case
    before = float(np.mean(log_likelihood(model, obs)))
    trained, _ = train(
        model,
        obs,
        config=TrainingConfig(
            max_iterations=1,
            patience=100,
            emission_floor=1e-12,
            transition_floor=1e-12,
        ),
    )
    # train() returns the better of {initial, updated} snapshots, so the
    # resulting likelihood cannot be lower than the starting point.
    after = float(np.mean(log_likelihood(trained, obs)))
    assert after >= before - 1e-6
