"""Unit tests for the toy ISA decoder."""

from repro.program import decode_one, decode_window
from repro.program.instructions import (
    OPCODES,
    RET_OPCODE,
    SYSCALL_OPCODE,
)


class TestDecodeOne:
    def test_zero_operand(self):
        ins = decode_one(bytes([0x90]), 0)
        assert ins is not None
        assert ins.mnemonic == "nop"
        assert ins.size == 1

    def test_one_operand(self):
        ins = decode_one(bytes([0xB8, 0x2A]), 0)
        assert ins is not None
        assert ins.mnemonic == "mov_imm"
        assert ins.operands == bytes([0x2A])
        assert ins.size == 2

    def test_two_operand_call(self):
        ins = decode_one(bytes([0xE8, 0x01, 0x02]), 0)
        assert ins is not None
        assert ins.mnemonic == "call"
        assert ins.size == 3

    def test_unknown_opcode_is_none(self):
        assert decode_one(bytes([0xFF]), 0) is None

    def test_truncated_operands_is_none(self):
        assert decode_one(bytes([0xB8]), 0) is None  # mov_imm missing operand

    def test_offset_past_end_is_none(self):
        assert decode_one(bytes([0x90]), 5) is None

    def test_flags(self):
        assert decode_one(bytes([SYSCALL_OPCODE]), 0).is_syscall
        assert decode_one(bytes([RET_OPCODE]), 0).is_ret

    def test_every_opcode_decodes(self):
        for opcode, (mnemonic, operand_count) in OPCODES.items():
            data = bytes([opcode] + [0] * operand_count)
            ins = decode_one(data, 0)
            assert ins is not None and ins.mnemonic == mnemonic


class TestDecodeWindow:
    def test_stops_at_ret(self):
        data = bytes([0x90, RET_OPCODE, 0x90, 0x90])
        window = decode_window(data, 0, 10)
        assert [i.mnemonic for i in window] == ["nop", "ret"]

    def test_stops_at_invalid_byte(self):
        data = bytes([0x90, 0xFF, 0x90])
        window = decode_window(data, 0, 10)
        assert len(window) == 1

    def test_respects_max_instructions(self):
        data = bytes([0x90] * 10)
        assert len(decode_window(data, 0, 3)) == 3

    def test_misaligned_start_desynchronizes(self):
        # mov_imm 0xFF followed by ret: starting at the operand byte (0xFF)
        # is not decodable.
        data = bytes([0xB8, 0xFF, RET_OPCODE])
        assert decode_window(data, 1, 10) == []

    def test_unintended_gadget_at_operand_offset(self):
        # mov_imm 0x05: the operand byte *is* the syscall opcode — decoding
        # from offset 1 yields an unintended SYSCALL, the mechanism behind
        # unintended gadgets.
        data = bytes([0xB8, SYSCALL_OPCODE, RET_OPCODE])
        window = decode_window(data, 1, 10)
        assert [i.mnemonic for i in window] == ["syscall", "ret"]
