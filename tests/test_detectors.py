"""Tests for the detector layer: base API, Regular, STILO, CMarkov."""

import numpy as np
import pytest

from repro.core import (
    ClusterPolicy,
    CMarkovDetector,
    DetectorConfig,
    RegularDetector,
    StiloDetector,
    build_detector,
    threshold_for_fp_budget,
)
from repro.errors import EvaluationError, NotFittedError, TraceError
from repro.hmm import TrainingConfig
from repro.program import CallKind
from repro.tracing import build_segment_set


@pytest.fixture(scope="module")
def gzip_syscall_segments(gzip_program):
    from repro.tracing import run_workload

    workload = run_workload(gzip_program, n_cases=25, seed=4)
    return build_segment_set(workload.traces, CallKind.SYSCALL, context=True)


@pytest.fixture(scope="module")
def fitted_cmarkov(gzip_program, gzip_syscall_segments):
    detector = CMarkovDetector(
        gzip_program,
        kind=CallKind.SYSCALL,
        config=DetectorConfig(
            training=TrainingConfig(max_iterations=5),
            max_training_segments=500,
            seed=0,
        ),
    )
    detector.fit(gzip_syscall_segments)
    return detector


class TestDetectorLifecycle:
    def test_score_before_fit_raises(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(NotFittedError):
            detector.score([("read",) * 15])

    def test_fit_result_before_fit_raises(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(NotFittedError):
            detector.fit_result

    def test_empty_training_raises(self, gzip_program):
        from repro.tracing import SegmentSet

        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(TraceError):
            detector.fit(SegmentSet(length=15))

    def test_fit_populates_result(self, fitted_cmarkov):
        result = fitted_cmarkov.fit_result
        assert result.n_states > 0
        assert result.train_seconds > 0
        assert result.report.iterations >= 1

    def test_is_fitted_flag(self, gzip_program, fitted_cmarkov):
        assert fitted_cmarkov.is_fitted
        assert not StiloDetector(gzip_program, kind=CallKind.SYSCALL).is_fitted


class TestScoring:
    def test_scores_shape(self, fitted_cmarkov, gzip_syscall_segments):
        segments = gzip_syscall_segments.segments()[:10]
        scores = fitted_cmarkov.score(segments)
        assert scores.shape == (10,)

    def test_scores_are_per_symbol(self, fitted_cmarkov, gzip_syscall_segments):
        # Per-symbol normalization keeps scores in a narrow sane band.
        scores = fitted_cmarkov.score(gzip_syscall_segments.segments()[:50])
        assert np.all(scores <= 0.0)
        assert np.all(scores > -200.0)

    def test_empty_scores(self, fitted_cmarkov):
        assert fitted_cmarkov.score([]).shape == (0,)

    def test_normal_scores_above_garbage(self, fitted_cmarkov, gzip_syscall_segments):
        normal = gzip_syscall_segments.segments()[:50]
        garbage = [tuple(["<nonsense>"] * 15)] * 10
        assert np.mean(fitted_cmarkov.score(normal)) > np.mean(
            fitted_cmarkov.score(garbage)
        )

    def test_classify_uses_threshold(self, fitted_cmarkov, gzip_syscall_segments):
        segments = gzip_syscall_segments.segments()[:20]
        scores = fitted_cmarkov.score(segments)
        threshold = float(np.median(scores))
        verdicts = fitted_cmarkov.classify(segments, threshold)
        assert verdicts.sum() == np.sum(scores < threshold)


class TestRegularDetector:
    def test_states_match_observed_alphabet(self, gzip_syscall_segments):
        detector = RegularDetector(
            kind=CallKind.SYSCALL,
            context=True,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=2), seed=0
            ),
        )
        detector.fit(gzip_syscall_segments)
        train_part, _ = gzip_syscall_segments.split([0.8, 0.2], seed=0)
        assert detector.fit_result.n_states == len(train_part.alphabet())

    def test_names(self):
        assert RegularDetector(CallKind.SYSCALL, context=False).name == "regular-basic"
        assert RegularDetector(CallKind.SYSCALL, context=True).name == "regular-context"


class TestStaticDetectors:
    def test_stilo_is_context_insensitive(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        assert not detector.context
        assert detector.name == "stilo"

    def test_cmarkov_is_context_sensitive(self, gzip_program):
        detector = CMarkovDetector(gzip_program, kind=CallKind.SYSCALL)
        assert detector.context
        assert detector.name == "cmarkov"

    def test_cmarkov_states_match_static_labels(self, fitted_cmarkov, gzip_program):
        expected = len(gzip_program.distinct_calls(CallKind.SYSCALL, context=True))
        assert fitted_cmarkov.fit_result.n_states == expected

    def test_cluster_policy_triggers_reduction(
        self, gzip_program, gzip_syscall_segments
    ):
        detector = CMarkovDetector(
            gzip_program,
            kind=CallKind.SYSCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=2), seed=0
            ),
            cluster_policy=ClusterPolicy(ratio=0.5, min_states=5),
        )
        detector.fit(gzip_syscall_segments)
        static = len(gzip_program.distinct_calls(CallKind.SYSCALL, context=True))
        assert detector.fit_result.n_states == round(static * 0.5)
        assert detector.clustering is not None

    def test_cluster_policy_below_threshold_is_noop(self, fitted_cmarkov):
        # Default policy has min_states=800; gzip stays unclustered.
        assert fitted_cmarkov.clustering is None

    def test_analysis_cached(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        assert detector.analysis is detector.analysis


class TestSubsampling:
    def test_cap_marks_result(self, gzip_program, gzip_syscall_segments):
        detector = CMarkovDetector(
            gzip_program,
            kind=CallKind.SYSCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=2),
                max_training_segments=10,
                seed=0,
            ),
        )
        result = detector.fit(gzip_syscall_segments)
        assert result.subsampled
        assert result.n_train_segments <= 10


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("cmarkov", CMarkovDetector),
            ("stilo", StiloDetector),
            ("regular-basic", RegularDetector),
            ("regular-context", RegularDetector),
        ],
    )
    def test_factory_types(self, gzip_program, name, cls):
        detector = build_detector(name, gzip_program, CallKind.SYSCALL)
        assert isinstance(detector, cls)
        assert detector.name == name

    def test_unknown_model_raises(self, gzip_program):
        with pytest.raises(EvaluationError):
            build_detector("svm", gzip_program, CallKind.SYSCALL)


class TestThresholds:
    def test_fp_budget_threshold(self):
        scores = np.linspace(-10, -1, 100)
        threshold = threshold_for_fp_budget(scores, 0.05)
        assert np.mean(scores < threshold) <= 0.05

    def test_zero_budget(self):
        scores = np.array([-3.0, -1.0, -2.0])
        threshold = threshold_for_fp_budget(scores, 0.0)
        assert threshold == -3.0

    def test_invalid_budget(self):
        with pytest.raises(EvaluationError):
            threshold_for_fp_budget(np.array([1.0]), -0.1)


class TestPretrainedLoading:
    def test_load_pretrained_enables_scoring(self, gzip_program, fitted_cmarkov, tmp_path):
        from repro.core import CMarkovDetector
        from repro.hmm import load_model, save_model
        from repro.program import CallKind

        path = tmp_path / "m.npz"
        save_model(fitted_cmarkov.model, path)
        fresh = CMarkovDetector(gzip_program, kind=CallKind.SYSCALL)
        assert not fresh.is_fitted
        fresh.load_pretrained(load_model(path))
        assert fresh.is_fitted
        segment = (("read",) * 15,)
        assert fresh.score(list(segment)).shape == (1,)

    def test_load_pretrained_validates(self, gzip_program, fitted_cmarkov):
        from repro.core import CMarkovDetector
        from repro.errors import ModelError
        from repro.program import CallKind

        broken = fitted_cmarkov.model.copy()
        broken.transition[0, 0] += 1.0
        fresh = CMarkovDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(ModelError):
            fresh.load_pretrained(broken)
