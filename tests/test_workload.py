"""Tests for workload generation and coverage accounting (Table I role)."""

from repro.program import load_program
from repro.tracing import PAPER_CASE_COUNTS, run_workload


class TestCoverage:
    def test_coverage_in_unit_interval(self, gzip_program, gzip_workload):
        report = gzip_workload.coverage(gzip_program)
        assert 0.0 <= report.branch_coverage <= 1.0
        assert 0.0 <= report.line_coverage <= 1.0

    def test_more_cases_never_reduce_coverage(self, gzip_program):
        small = run_workload(gzip_program, n_cases=5, seed=2).coverage(gzip_program)
        # Same seed => the first 5 cases are a prefix of the larger suite.
        large = run_workload(gzip_program, n_cases=40, seed=2).coverage(gzip_program)
        assert large.branch_coverage >= small.branch_coverage
        assert large.line_coverage >= small.line_coverage

    def test_substantial_coverage_at_table1_scale(self, gzip_program):
        report = run_workload(gzip_program, n_cases=60, seed=0).coverage(gzip_program)
        # Table I reports 31-99% branch coverage; the suite must land in a
        # comparable band, not at a degenerate extreme.
        assert report.branch_coverage > 0.3
        assert report.line_coverage > 0.3

    def test_report_row_format(self, gzip_program, gzip_workload):
        row = gzip_workload.coverage(gzip_program).row()
        assert row[0] == "gzip"
        assert row[1] == len(gzip_workload.results)
        assert row[2].endswith("%")

    def test_visited_blocks_bounded(self, gzip_program, gzip_workload):
        report = gzip_workload.coverage(gzip_program)
        assert report.visited_blocks <= report.total_blocks


class TestWorkloadResult:
    def test_traces_property(self, gzip_workload):
        assert len(gzip_workload.traces) == len(gzip_workload.results)

    def test_traces_nonempty(self, gzip_workload):
        assert all(len(t) > 0 for t in gzip_workload.traces)

    def test_paper_case_counts_catalogued(self):
        assert set(PAPER_CASE_COUNTS) >= {"flex", "grep", "gzip", "sed", "bash", "vim"}


class TestDeterminism:
    def test_same_seed_same_coverage(self):
        program = load_program("sed")
        a = run_workload(program, n_cases=10, seed=5).coverage(program)
        b = run_workload(program, n_cases=10, seed=5).coverage(program)
        assert a == b
