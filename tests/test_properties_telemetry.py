"""Property-based tests (hypothesis) for the telemetry layer.

Three families of invariants:

* histograms — bucket counts always sum to the observation count, no
  matter where the boundaries sit or what values arrive;
* registry merge — addition-like: commutative and associative over
  counters, histograms, and span aggregates (the property the parallel
  executor's worker merge-back relies on);
* spans — a fully nested child never reports more wall time than its
  parent, at any nesting depth.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.telemetry import Histogram, MetricsRegistry

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)

boundaries_strategy = st.lists(
    finite_floats, min_size=1, max_size=8, unique=True
).map(lambda values: tuple(sorted(values)))


@st.composite
def registries(draw) -> MetricsRegistry:
    """A registry with arbitrary counters, histograms, and span records,
    drawn from small shared name pools so merges overlap keys."""
    registry = MetricsRegistry()
    names = ("a", "b", "c")
    for _ in range(draw(st.integers(0, 5))):
        registry.counter(draw(st.sampled_from(names))).inc(
            draw(st.integers(0, 1000))
        )
    boundaries = (0.0, 10.0)  # shared so merged histograms are compatible
    for _ in range(draw(st.integers(0, 5))):
        registry.histogram(draw(st.sampled_from(names)), boundaries).observe(
            draw(finite_floats)
        )
    # Span durations are drawn as dyadic rationals (k/16) so their sums are
    # exact and the associativity property can be asserted bit-for-bit.
    for _ in range(draw(st.integers(0, 3))):
        registry.record_span(
            draw(st.sampled_from(names)),
            wall_s=draw(st.integers(0, 160)) / 16,
            cpu_s=draw(st.integers(0, 160)) / 16,
        )
    return registry


class TestHistogramProperties:
    @given(boundaries=boundaries_strategy, values=st.lists(finite_floats))
    def test_counts_sum_to_observation_count(self, boundaries, values):
        histogram = Histogram(boundaries)
        histogram.observe_many(values)
        assert sum(histogram.counts) == len(values) == histogram.count
        assert len(histogram.counts) == len(boundaries) + 1

    @given(boundaries=boundaries_strategy, values=st.lists(finite_floats, min_size=1))
    def test_min_max_sum_track_observations(self, boundaries, values):
        histogram = Histogram(boundaries)
        for value in values:
            histogram.observe(value)
        assert histogram.min == min(values)
        assert histogram.max == max(values)

    @given(
        boundaries=boundaries_strategy,
        left=st.lists(finite_floats),
        right=st.lists(finite_floats),
    )
    def test_merge_equals_observing_everything(self, boundaries, left, right):
        both = MetricsRegistry()
        both.histogram("h", boundaries).observe_many(left + right)
        merged = MetricsRegistry()
        merged.histogram("h", boundaries).observe_many(left)
        other = MetricsRegistry()
        other.histogram("h", boundaries).observe_many(right)
        merged.merge(other.snapshot())
        ours = merged.snapshot()["histograms"]["h"]
        theirs = both.snapshot()["histograms"]["h"]
        # Counts/min/max are order-independent; the float sum is compared
        # with the same tolerance the executor parity test uses.
        assert ours["counts"] == theirs["counts"]
        assert ours["min"] == theirs["min"]
        assert ours["max"] == theirs["max"]


def _merged(*snapshots: dict) -> dict:
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def _order_free(snapshot: dict) -> dict:
    """Merge-order-independent projection: everything except gauge values
    (last-writer-wins by design) and histogram float sums."""
    return {
        "counters": snapshot["counters"],
        "histograms": {
            name: {k: v for k, v in payload.items() if k != "sum"}
            for name, payload in snapshot["histograms"].items()
        },
        "spans": snapshot["spans"],
    }


class TestMergeAlgebra:
    @settings(max_examples=50)
    @given(left=registries(), right=registries())
    def test_merge_is_commutative(self, left, right):
        ab = _merged(left.snapshot(), right.snapshot())
        ba = _merged(right.snapshot(), left.snapshot())
        assert _order_free(ab) == _order_free(ba)

    @settings(max_examples=50)
    @given(a=registries(), b=registries(), c=registries())
    def test_merge_is_associative(self, a, b, c):
        left_first = _merged(_merged(a.snapshot(), b.snapshot()), c.snapshot())
        right_first = _merged(a.snapshot(), _merged(b.snapshot(), c.snapshot()))
        assert _order_free(left_first) == _order_free(right_first)

    @settings(max_examples=50)
    @given(registry=registries())
    def test_empty_is_identity(self, registry):
        assert _merged(registry.snapshot()) == _merged(
            MetricsRegistry().snapshot(), registry.snapshot()
        )


class TestSpanNesting:
    @given(depth=st.integers(min_value=1, max_value=6))
    def test_child_wall_never_exceeds_parent(self, depth):
        with telemetry.session():
            spans = [telemetry.span(f"level{i}") for i in range(depth)]
            for span in spans:
                span.__enter__()
            for span in reversed(spans):
                span.__exit__(None, None, None)
            tree = telemetry.get().tracer.trees()[0]
        node = tree
        while node["children"]:
            child = node["children"][0]
            assert child["wall_s"] <= node["wall_s"]
            node = child
        assert node["name"] == f"level{depth - 1}"
