"""Tests for program complexity metrics."""

import pytest

from repro.program import CallKind, FunctionCFG, ProgramBuilder, load_program
from repro.program.builder import FunctionBuilder
from repro.program.metrics import function_metrics, program_metrics


def _fn(build) -> FunctionCFG:
    builder = FunctionBuilder(FunctionCFG("f"))
    build(builder)
    return builder.finish()


class TestFunctionMetrics:
    def test_straight_line_complexity_is_one(self):
        cfg = _fn(lambda b: b.seq("read", "write"))
        metrics = function_metrics(cfg)
        # Linear chain: E = N - 1 -> complexity = 1.
        assert metrics.cyclomatic_complexity == 1
        assert metrics.n_loops == 0
        assert metrics.n_branches == 0

    def test_branch_adds_one(self):
        cfg = _fn(lambda b: b.branch(["read"], ["write"]))
        metrics = function_metrics(cfg)
        assert metrics.cyclomatic_complexity == 2
        assert metrics.n_branches == 1

    def test_loop_counted(self):
        cfg = _fn(lambda b: b.loop(["read"]))
        metrics = function_metrics(cfg)
        assert metrics.n_loops == 1
        assert metrics.cyclomatic_complexity >= 2

    def test_call_kind_counts(self):
        pb = ProgramBuilder("p")
        pb.function("helper").seq("read")
        pb.function("main").seq("read", "malloc", "helper").indirect("helper")
        program = pb.build()
        metrics = function_metrics(program.function("main"))
        assert metrics.calls_by_kind == {
            "syscall": 1,
            "libcall": 1,
            "internal": 1,
            "indirect": 1,
        }
        assert metrics.total_call_sites == 4


class TestProgramMetrics:
    @pytest.fixture(scope="class")
    def gzip_metrics(self):
        return program_metrics(load_program("gzip"))

    def test_every_function_measured(self, gzip_metrics):
        program = load_program("gzip")
        assert set(gzip_metrics.functions) == set(program.functions)

    def test_aggregates_positive(self, gzip_metrics):
        assert gzip_metrics.total_complexity > len(gzip_metrics.functions)
        assert gzip_metrics.mean_complexity > 1.0
        assert gzip_metrics.max_complexity >= 2

    def test_caller_diversity_counts(self):
        pb = ProgramBuilder("p")
        pb.function("a").seq("malloc")
        pb.function("b").seq("malloc")
        pb.function("main").seq("a", "b", "malloc", "read")
        metrics = program_metrics(pb.build())
        assert metrics.caller_diversity["malloc"] == 3
        assert metrics.caller_diversity["read"] == 1

    def test_paper_asymmetry_on_corpus(self, gzip_metrics):
        """The corpus realism check the results rest on: libcalls have more
        diverse callers than (wrapped) syscalls."""
        libcall = gzip_metrics.mean_caller_diversity(CallKind.LIBCALL)
        syscall = gzip_metrics.mean_caller_diversity(CallKind.SYSCALL)
        assert libcall > 1.5 * syscall

    def test_realistic_complexity_band(self, gzip_metrics):
        # Generated functions are program-shaped: nontrivial but bounded.
        assert 1.0 < gzip_metrics.mean_complexity < 20.0
