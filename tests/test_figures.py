"""Tests for figure-series export (CSV + ASCII curves)."""

import csv

import pytest

from repro.core.metrics import CurvePoint
from repro.errors import EvaluationError
from repro.eval import ascii_curve, write_curves_csv


def _points():
    return [
        CurvePoint(threshold=-5.0, false_positive_rate=0.0, false_negative_rate=1.0),
        CurvePoint(threshold=-3.0, false_positive_rate=0.2, false_negative_rate=0.4),
        CurvePoint(threshold=-1.0, false_positive_rate=1.0, false_negative_rate=0.0),
    ]


class TestCsvExport:
    def test_rows_and_header(self, tmp_path):
        path = tmp_path / "curves.csv"
        rows = write_curves_csv({"cmarkov": _points(), "stilo": _points()}, path)
        assert rows == 6
        with path.open() as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == [
            "model",
            "threshold",
            "false_positive_rate",
            "false_negative_rate",
        ]
        assert len(parsed) == 7

    def test_values_preserved(self, tmp_path):
        path = tmp_path / "curves.csv"
        write_curves_csv({"m": _points()}, path)
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert float(parsed[1]["false_positive_rate"]) == pytest.approx(0.2)
        assert float(parsed[1]["false_negative_rate"]) == pytest.approx(0.4)


class TestAsciiCurve:
    def test_dimensions(self):
        art = ascii_curve(_points(), width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 10  # label + 8 rows + axis
        assert lines[-1].startswith("+")

    def test_extreme_points_plotted(self):
        art = ascii_curve(_points(), width=40, height=8)
        lines = art.splitlines()[1:-1]
        # (FP=0, FN=1) -> top-left; (FP=1, FN=0) -> bottom-right.
        assert lines[0][1] == "*"
        assert lines[-1][-1] == "*"

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            ascii_curve([])


class TestCurvesOfIntegration:
    def test_curves_from_comparison(self):
        from repro.eval import FAST_CONFIG, curves_of, run_accuracy_comparison
        from repro.program import CallKind

        comparison = run_accuracy_comparison(
            "sed", CallKind.SYSCALL, FAST_CONFIG, models=("stilo",)
        )
        curves = curves_of(comparison, n_points=25)
        assert set(curves) == {"stilo"}
        assert len(curves["stilo"]) == 25
