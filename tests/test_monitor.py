"""Tests for the online monitoring API."""

import numpy as np
import pytest

from repro import telemetry
from repro.core import CMarkovDetector, DetectorConfig, OnlineMonitor, StiloDetector
from repro.core import threshold_for_fp_budget
from repro.errors import NotFittedError, TraceError
from repro.hmm import TrainingConfig
from repro.program import CallKind, layout_program
from repro.tracing import CallEvent, build_segment_set, run_workload


@pytest.fixture(scope="module")
def monitoring_setup(gzip_program):
    workload = run_workload(gzip_program, n_cases=40, seed=17)
    segments = build_segment_set(workload.traces, CallKind.SYSCALL, context=True)
    detector = CMarkovDetector(
        gzip_program,
        kind=CallKind.SYSCALL,
        config=DetectorConfig(
            training=TrainingConfig(max_iterations=8),
            max_training_segments=1000,
            seed=3,
        ),
    )
    train_part, holdout = segments.split([0.8, 0.2], seed=0)
    detector.fit(train_part)
    threshold = threshold_for_fp_budget(detector.score(holdout.segments()), 0.02)
    return gzip_program, workload, detector, threshold


class TestConstruction:
    def test_unfitted_detector_rejected(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(NotFittedError):
            OnlineMonitor(detector, threshold=-5.0)

    def test_bad_segment_length(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        with pytest.raises(TraceError):
            OnlineMonitor(detector, threshold, segment_length=0)


class TestStreaming:
    def test_no_alerts_before_window_fills(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        for i in range(14):
            assert monitor.observe_symbol(f"s{i}") is None
        assert monitor.stats.windows_scored == 0

    def test_normal_stream_is_quiet(self, monitoring_setup):
        _, workload, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold)
        # Feed a normal trace the detector trained on similar data from.
        events = workload.traces[1].events
        alerts = monitor.observe_many(events)
        flagged = len(alerts) / max(monitor.stats.windows_scored, 1)
        assert flagged < 0.1

    def test_attack_stream_raises_alert(self, monitoring_setup):
        program, workload, detector, threshold = monitoring_setup
        from repro.attacks import rop_chain_events

        monitor = OnlineMonitor(detector, threshold)
        # Establish a normal prefix, then splice the ROP chain.
        monitor.observe_many(workload.traces[2].events[:40])
        baseline_alerts = monitor.stats.alerts
        image = layout_program(program)
        chain = rop_chain_events(image, n_calls=20, seed=1, context_fidelity=0.1)
        alerts = monitor.observe_many(chain)
        assert monitor.stats.alerts > baseline_alerts
        assert alerts, "the ROP chain must raise at least one alert"
        assert all(a.score < a.threshold for a in alerts)

    def test_wrong_kind_events_ignored(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold)
        libcall_event = CallEvent("malloc", "main", CallKind.LIBCALL)
        assert monitor.observe_event(libcall_event) is None
        assert monitor.stats.events == 0

    def test_cooldown_suppresses_alert_storm(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        # 30 garbage symbols -> ~16 bad windows, but cooldown batches them.
        alerts = [
            a
            for a in (monitor.observe_symbol("<garbage>") for _ in range(30))
            if a is not None
        ]
        assert monitor.stats.suppressed > 0
        assert len(alerts) <= 2

    def test_reset_clears_window(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=5)
        for i in range(4):
            monitor.observe_symbol(f"s{i}")
        monitor.reset()
        assert monitor.observe_symbol("s4") is None  # window restarted
        assert monitor.stats.windows_scored == 0

    def test_alert_records_window(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        alert = None
        for _ in range(15):
            alert = monitor.observe_symbol("<garbage>") or alert
        assert alert is not None
        assert alert.window == ("<garbage>",) * 15
        assert alert.threshold == threshold


class ScriptedDetector:
    """Stub detector returning a pre-scripted score per window, so cooldown
    arithmetic can be pinned without a trained model in the loop."""

    name = "scripted"
    kind = CallKind.SYSCALL
    context = False
    is_fitted = True

    def __init__(self, scores):
        self._scores = iter(scores)

    def score(self, segments):
        return np.array([next(self._scores) for _ in segments])


def _monitor(scores, cooldown, segment_length=3) -> OnlineMonitor:
    # Threshold 0.0: negative scores are anomalous, positive are normal.
    return OnlineMonitor(
        ScriptedDetector(scores),
        threshold=0.0,
        segment_length=segment_length,
        cooldown=cooldown,
    )


def _feed(monitor: OnlineMonitor, n_windows: int) -> list:
    """Fill the window, then slide it ``n_windows - 1`` more times."""
    alerts = []
    for i in range(monitor.segment_length + n_windows - 1):
        alert = monitor.observe_symbol(f"s{i}")
        if alert is not None:
            alerts.append(alert)
    return alerts


class TestCooldownBoundaries:
    """Exact cooldown arithmetic at its edges (the PR's hardening pass)."""

    def test_cooldown_expires_exactly_at_boundary(self):
        # Alert, two suppressed anomalous windows (cooldown=2), and the
        # very next anomalous window must alert again — not one later.
        monitor = _monitor([-1.0, -1.0, -1.0, -1.0], cooldown=2)
        alerts = _feed(monitor, 4)
        assert len(alerts) == 2
        assert monitor.stats.suppressed == 2
        assert [a.event_index for a in alerts] == [2, 5]

    def test_normal_windows_consume_cooldown(self):
        # Alert, then exactly `cooldown` quiet windows: the next anomalous
        # window fires because the cooldown budget is fully spent.
        monitor = _monitor([-1.0, 1.0, 1.0, -1.0], cooldown=2)
        alerts = _feed(monitor, 4)
        assert len(alerts) == 2
        assert monitor.stats.suppressed == 0

    def test_one_window_short_of_expiry_still_suppresses(self):
        # Same stream, but only cooldown-1 quiet windows in between: the
        # anomalous window lands one short of the boundary -> suppressed.
        monitor = _monitor([-1.0, 1.0, -1.0], cooldown=2)
        alerts = _feed(monitor, 3)
        assert len(alerts) == 1
        assert monitor.stats.suppressed == 1

    def test_back_to_back_anomalous_windows(self):
        # A continuous anomalous stream alerts every cooldown+1 windows.
        monitor = _monitor([-1.0] * 7, cooldown=2)
        alerts = _feed(monitor, 7)
        assert len(alerts) == 3  # windows 0, 3, 6
        assert monitor.stats.suppressed == 4

    def test_zero_cooldown_alerts_every_window(self):
        monitor = _monitor([-1.0] * 5, cooldown=0)
        alerts = _feed(monitor, 5)
        assert len(alerts) == 5
        assert monitor.stats.suppressed == 0

    def test_reset_clears_pending_cooldown(self):
        monitor = _monitor([-1.0, -1.0], cooldown=5)
        _feed(monitor, 1)
        monitor.reset()
        alerts = _feed(monitor, 1)  # would be suppressed without reset
        assert len(alerts) == 1

    def test_stats_match_emitted_alert_records(self):
        scores = [-1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0]
        monitor = _monitor(scores, cooldown=1)
        alerts = _feed(monitor, len(scores))
        assert monitor.stats.alerts == len(alerts)
        assert monitor.stats.windows_scored == len(scores)
        n_anomalous = sum(1 for s in scores if s < 0)
        assert monitor.stats.suppressed == n_anomalous - len(alerts)
        assert monitor.stats.min_score == -1.0
        assert all(a.score < a.threshold for a in alerts)

    def test_telemetry_counters_mirror_stats(self):
        scores = [-1.0] * 6
        with telemetry.session() as registry:
            monitor = _monitor(scores, cooldown=2)
            alerts = _feed(monitor, len(scores))
            counters = registry.snapshot()["counters"]
            histogram = registry.snapshot()["histograms"]["monitor.score"]
        assert counters["monitor.alerts"] == monitor.stats.alerts == len(alerts)
        assert counters["monitor.suppressed"] == monitor.stats.suppressed
        assert counters["monitor.windows_scored"] == len(scores)
        assert counters["monitor.events"] == monitor.stats.events
        assert histogram["count"] == len(scores)
