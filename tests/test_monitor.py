"""Tests for the online monitoring API."""

import pytest

from repro.core import CMarkovDetector, DetectorConfig, OnlineMonitor, StiloDetector
from repro.core import threshold_for_fp_budget
from repro.errors import NotFittedError, TraceError
from repro.hmm import TrainingConfig
from repro.program import CallKind, layout_program
from repro.tracing import CallEvent, build_segment_set, run_workload


@pytest.fixture(scope="module")
def monitoring_setup(gzip_program):
    workload = run_workload(gzip_program, n_cases=40, seed=17)
    segments = build_segment_set(workload.traces, CallKind.SYSCALL, context=True)
    detector = CMarkovDetector(
        gzip_program,
        kind=CallKind.SYSCALL,
        config=DetectorConfig(
            training=TrainingConfig(max_iterations=8),
            max_training_segments=1000,
            seed=3,
        ),
    )
    train_part, holdout = segments.split([0.8, 0.2], seed=0)
    detector.fit(train_part)
    threshold = threshold_for_fp_budget(detector.score(holdout.segments()), 0.02)
    return gzip_program, workload, detector, threshold


class TestConstruction:
    def test_unfitted_detector_rejected(self, gzip_program):
        detector = StiloDetector(gzip_program, kind=CallKind.SYSCALL)
        with pytest.raises(NotFittedError):
            OnlineMonitor(detector, threshold=-5.0)

    def test_bad_segment_length(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        with pytest.raises(TraceError):
            OnlineMonitor(detector, threshold, segment_length=0)


class TestStreaming:
    def test_no_alerts_before_window_fills(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        for i in range(14):
            assert monitor.observe_symbol(f"s{i}") is None
        assert monitor.stats.windows_scored == 0

    def test_normal_stream_is_quiet(self, monitoring_setup):
        _, workload, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold)
        # Feed a normal trace the detector trained on similar data from.
        events = workload.traces[1].events
        alerts = monitor.observe_many(events)
        flagged = len(alerts) / max(monitor.stats.windows_scored, 1)
        assert flagged < 0.1

    def test_attack_stream_raises_alert(self, monitoring_setup):
        program, workload, detector, threshold = monitoring_setup
        from repro.attacks import rop_chain_events

        monitor = OnlineMonitor(detector, threshold)
        # Establish a normal prefix, then splice the ROP chain.
        monitor.observe_many(workload.traces[2].events[:40])
        baseline_alerts = monitor.stats.alerts
        image = layout_program(program)
        chain = rop_chain_events(image, n_calls=20, seed=1, context_fidelity=0.1)
        alerts = monitor.observe_many(chain)
        assert monitor.stats.alerts > baseline_alerts
        assert alerts, "the ROP chain must raise at least one alert"
        assert all(a.score < a.threshold for a in alerts)

    def test_wrong_kind_events_ignored(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold)
        libcall_event = CallEvent("malloc", "main", CallKind.LIBCALL)
        assert monitor.observe_event(libcall_event) is None
        assert monitor.stats.events == 0

    def test_cooldown_suppresses_alert_storm(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        # 30 garbage symbols -> ~16 bad windows, but cooldown batches them.
        alerts = [
            a
            for a in (monitor.observe_symbol("<garbage>") for _ in range(30))
            if a is not None
        ]
        assert monitor.stats.suppressed > 0
        assert len(alerts) <= 2

    def test_reset_clears_window(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=5)
        for i in range(4):
            monitor.observe_symbol(f"s{i}")
        monitor.reset()
        assert monitor.observe_symbol("s4") is None  # window restarted
        assert monitor.stats.windows_scored == 0

    def test_alert_records_window(self, monitoring_setup):
        _, _, detector, threshold = monitoring_setup
        monitor = OnlineMonitor(detector, threshold, segment_length=15)
        alert = None
        for _ in range(15):
            alert = monitor.observe_symbol("<garbage>") or alert
        assert alert is not None
        assert alert.window == ("<garbage>",) * 15
        assert alert.threshold == threshold
