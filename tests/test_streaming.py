"""Tests for the incremental streaming scorer."""

import numpy as np
import pytest

from repro.core.streaming import StreamingScorer
from repro.errors import ModelError
from repro.hmm import HiddenMarkovModel, log_likelihood, random_model


@pytest.fixture()
def simple_model() -> HiddenMarkovModel:
    return HiddenMarkovModel(
        transition=np.array([[0.8, 0.2], [0.3, 0.7]]),
        emission=np.array([[0.9, 0.1], [0.2, 0.8]]),
        initial=np.array([0.5, 0.5]),
        symbols=("a", "b"),
    )


class TestEquivalence:
    def test_cumulative_surprise_equals_batch_loglik(self, simple_model):
        """The stream's total surprise must equal -log P(O | λ) computed by
        the batch forward pass — the scaled-forward identity."""
        sequence = ["a", "b", "b", "a", "b", "a", "a"]
        scorer = StreamingScorer(simple_model)
        total_surprise = sum(scorer.observe(s) for s in sequence)
        obs = simple_model.encode([sequence])
        batch = float(log_likelihood(simple_model, obs)[0])
        assert total_surprise == pytest.approx(-batch, rel=1e-10)

    def test_equivalence_on_random_models(self):
        rng = np.random.default_rng(4)
        for seed in range(5):
            model = random_model(["x", "y", "z"], n_states=4, seed=seed)
            sequence = [
                ["x", "y", "z"][i] for i in rng.integers(0, 3, size=20)
            ]
            scorer = StreamingScorer(model)
            streaming = sum(scorer.observe(s) for s in sequence)
            batch = float(log_likelihood(model, model.encode([sequence]))[0])
            assert streaming == pytest.approx(-batch, rel=1e-9)


class TestWindowedScore:
    def test_windowed_score_scale(self, simple_model):
        scorer = StreamingScorer(simple_model, window=3)
        for symbol in ["a", "a", "a"]:
            scorer.observe(symbol)
        assert scorer.window_full
        assert scorer.windowed_score <= 0.0

    def test_window_not_full_initially(self, simple_model):
        scorer = StreamingScorer(simple_model, window=5)
        scorer.observe("a")
        assert not scorer.window_full

    def test_score_before_events_raises(self, simple_model):
        with pytest.raises(ModelError):
            StreamingScorer(simple_model).windowed_score

    def test_anomalous_burst_drops_windowed_score(self, simple_model):
        scorer = StreamingScorer(simple_model, window=4)
        for _ in range(8):
            scorer.observe("a")
        calm = scorer.windowed_score
        # 'b' after a long run of 'a' is surprising under this model.
        for _ in range(4):
            scorer.observe("b")
        assert scorer.windowed_score < calm


class TestLifecycle:
    def test_reset_restores_initial_behaviour(self, simple_model):
        scorer = StreamingScorer(simple_model)
        first = scorer.observe("a")
        scorer.observe("b")
        scorer.reset()
        assert scorer.events == 0
        assert scorer.observe("a") == pytest.approx(first)

    def test_unknown_symbol_uses_unk_slot(self):
        model = random_model(["a", "b"], seed=0)
        scorer = StreamingScorer(model)
        surprise = scorer.observe("never_seen_before")
        assert np.isfinite(surprise)

    def test_bad_window_rejected(self, simple_model):
        with pytest.raises(ModelError):
            StreamingScorer(simple_model, window=0)


class TestCostAdvantage:
    def test_streaming_is_cheaper_than_rescoring(self, gzip_program):
        """Sanity check of the complexity claim: per-event streaming update
        beats re-scoring a full window (both produce usable scores)."""
        import time

        from repro.analysis import aggregate_program
        from repro.program import CallKind
        from repro.reduction import initialize_hmm

        summary = aggregate_program(
            gzip_program, CallKind.LIBCALL, context=True
        ).program_summary
        model = initialize_hmm(summary)
        symbols = list(summary.space.labels[:15])

        scorer = StreamingScorer(model)
        started = time.perf_counter()
        for _ in range(30):
            for symbol in symbols:
                scorer.observe(symbol)
        streaming_time = time.perf_counter() - started

        started = time.perf_counter()
        window = [tuple(symbols)]
        for _ in range(30 * len(symbols)):
            log_likelihood(model, model.encode(window))
        rescoring_time = time.perf_counter() - started
        assert streaming_time < rescoring_time
