"""Property-based tests: static-analysis invariants on random programs.

Strategy: generate random (but structurally valid) single-function CFGs out
of the builder's three elements, then check the conservation laws that
Section IV's probability forecast must obey on *every* program:

* entry mass + pass-through = 1 (each path has exactly one first call or none);
* exit mass = emitting mass (each emitting path has exactly one last call);
* all probability mass is non-negative;
* reachability mass at the exits sums to 1.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LabelSpace, reachability, summarize_function
from repro.program import CallKind, FunctionCFG
from repro.program.builder import FunctionBuilder

CALLS = ["read", "write", "close", "open", "brk"]

call_lists = st.lists(st.sampled_from(CALLS), min_size=1, max_size=3)

element = st.one_of(
    st.tuples(st.just("seq"), call_lists),
    st.tuples(
        st.just("branch"),
        st.lists(call_lists, min_size=1, max_size=3),
        st.booleans(),
    ),
    st.tuples(st.just("loop"), call_lists, st.booleans()),
)


@st.composite
def random_cfg(draw) -> FunctionCFG:
    builder = FunctionBuilder(FunctionCFG("f"))
    for item in draw(st.lists(element, min_size=1, max_size=6)):
        if item[0] == "seq":
            builder.seq(*item[1])
        elif item[0] == "branch":
            builder.branch(*item[1], empty_arm=item[2])
        else:
            builder.loop(item[1], may_skip=item[2])
    return builder.finish()


def _space_for(cfg: FunctionCFG) -> LabelSpace:
    labels = sorted({f"{s.name}@f" for s in cfg.calls(CallKind.SYSCALL)})
    return LabelSpace(kind=CallKind.SYSCALL, context=True, labels=tuple(labels))


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_entry_mass_conservation(cfg: FunctionCFG):
    summary = summarize_function(cfg, _space_for(cfg))
    assert summary.entry.sum() + summary.passthrough == np.float64(1.0).item() or abs(
        summary.entry.sum() + summary.passthrough - 1.0
    ) < 1e-6


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_exit_mass_matches_emitting_mass(cfg: FunctionCFG):
    summary = summarize_function(cfg, _space_for(cfg))
    assert abs(summary.exit.sum() - summary.emitting_mass) < 1e-6


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_all_mass_nonnegative(cfg: FunctionCFG):
    summary = summarize_function(cfg, _space_for(cfg))
    assert np.all(summary.trans >= -1e-12)
    assert np.all(summary.entry >= -1e-12)
    assert np.all(summary.exit >= -1e-12)
    assert summary.passthrough >= -1e-12


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_reachability_exit_mass_is_one(cfg: FunctionCFG):
    visits = reachability(cfg)
    exit_mass = sum(visits[b] for b in cfg.exit_blocks())
    assert abs(exit_mass - 1.0) < 1e-6


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_entry_block_visited_exactly_once_unless_looped(cfg: FunctionCFG):
    visits = reachability(cfg)
    # The entry is visited at least once; more only if a back edge targets it.
    back_targets = {dst for _, dst in cfg.back_edges()}
    if cfg.entry not in back_targets:
        assert abs(visits[cfg.entry] - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(random_cfg())
def test_transition_vectors_shape(cfg: FunctionCFG):
    space = _space_for(cfg)
    if len(space) == 0:
        return
    summary = summarize_function(cfg, space)
    vectors = summary.transition_vectors()
    assert vectors.shape == (len(space), 2 * len(space))
    for index in range(len(space)):
        assert np.allclose(vectors[index], summary.transition_vector(index))
