"""Unit tests for call-graph derivation and aggregation ordering."""

import pytest

from repro.errors import ProgramStructureError
from repro.program import ProgramBuilder, build_call_graph


def _chain_program():
    pb = ProgramBuilder("chain")
    pb.function("main").call("a")
    pb.function("a").call("b")
    pb.function("b").call("read")
    return pb.build()


class TestDerivation:
    def test_edges_follow_internal_calls(self):
        cg = build_call_graph(_chain_program())
        assert cg.callees("main") == ["a"]
        assert cg.callees("a") == ["b"]
        assert cg.callees("b") == []

    def test_callers(self):
        cg = build_call_graph(_chain_program())
        assert cg.callers("b") == ["a"]
        assert cg.callers("main") == []

    def test_observable_calls_do_not_create_edges(self):
        pb = ProgramBuilder("p")
        pb.function("main").seq("read", "malloc")
        cg = build_call_graph(pb.build())
        assert cg.callees("main") == []

    def test_undefined_callee_raises(self):
        pb = ProgramBuilder("p")
        pb.function("main").call("ghost_function")
        with pytest.raises(ProgramStructureError, match="undefined function"):
            build_call_graph(pb.build())


class TestBottomUpOrder:
    def test_callees_precede_callers(self):
        cg = build_call_graph(_chain_program())
        order = cg.bottom_up_order()
        assert order.index("b") < order.index("a") < order.index("main")

    def test_all_functions_present(self):
        cg = build_call_graph(_chain_program())
        assert set(cg.bottom_up_order()) == {"main", "a", "b"}


class TestRecursion:
    def test_self_recursion_marked(self):
        pb = ProgramBuilder("p")
        pb.function("main").call("rec")
        pb.function("rec").seq("read", "rec")
        cg = build_call_graph(pb.build())
        assert cg.is_recursive_edge("rec", "rec")
        assert not cg.is_recursive_edge("main", "rec")

    def test_mutual_recursion_marked(self):
        pb = ProgramBuilder("p")
        pb.function("main").call("even")
        pb.function("even").seq("read", "odd")
        pb.function("odd").seq("write", "even")
        cg = build_call_graph(pb.build())
        assert cg.is_recursive_edge("even", "odd")
        assert cg.is_recursive_edge("odd", "even")

    def test_recursive_program_still_orders(self):
        pb = ProgramBuilder("p")
        pb.function("main").call("rec")
        pb.function("rec").seq("read", "rec")
        cg = build_call_graph(pb.build())
        order = cg.bottom_up_order()
        assert order.index("rec") < order.index("main")

    def test_acyclic_program_has_no_recursive_edges(self):
        cg = build_call_graph(_chain_program())
        assert not cg.recursive_edges
