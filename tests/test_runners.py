"""Unit tests for the evaluation runners (structure and invariants)."""

import dataclasses

import pytest

from repro.eval import (
    FAST_CONFIG,
    prepare_program,
    run_accuracy_comparison,
    run_clustering_reduction,
    run_exploit_detection,
)
from repro.errors import EvaluationError
from repro.program import CallKind


@pytest.fixture(scope="module")
def sed_syscall_comparison():
    return run_accuracy_comparison("sed", CallKind.SYSCALL, FAST_CONFIG)


class TestPrepareProgram:
    def test_segment_sets_cached(self):
        data = prepare_program("gzip", FAST_CONFIG)
        first = data.segment_set(CallKind.SYSCALL, True, 15)
        second = data.segment_set(CallKind.SYSCALL, True, 15)
        assert first is second

    def test_distinct_modes_distinct_sets(self):
        data = prepare_program("gzip", FAST_CONFIG)
        ctx = data.segment_set(CallKind.SYSCALL, True, 15)
        bare = data.segment_set(CallKind.SYSCALL, False, 15)
        assert ctx is not bare
        assert set(ctx.alphabet()) != set(bare.alphabet())


class TestAccuracyComparison:
    def test_all_models_present(self, sed_syscall_comparison):
        assert set(sed_syscall_comparison.results) == {
            "cmarkov",
            "stilo",
            "regular-basic",
            "regular-context",
        }

    def test_fields_populated(self, sed_syscall_comparison):
        for result in sed_syscall_comparison.results.values():
            assert result.n_states > 0
            assert 0.0 <= result.auc <= 1.0
            assert result.train_seconds > 0
            for target in FAST_CONFIG.fp_targets:
                assert 0.0 <= result.fn_by_fp[target] <= 1.0

    def test_fold_count_matches_config(self, sed_syscall_comparison):
        for result in sed_syscall_comparison.results.values():
            assert len(result.cross_validation.folds) == FAST_CONFIG.folds

    def test_improvement_factor_finite(self, sed_syscall_comparison):
        for baseline in ("stilo", "regular-basic"):
            factor = sed_syscall_comparison.improvement_factor(baseline, 0.05)
            assert factor >= 0.0
            assert factor < float("inf")

    def test_subset_of_models(self):
        comparison = run_accuracy_comparison(
            "sed", CallKind.SYSCALL, FAST_CONFIG, models=("stilo",)
        )
        assert set(comparison.results) == {"stilo"}

    def test_too_few_folds_rejected(self):
        tiny = dataclasses.replace(FAST_CONFIG, n_cases=10, folds=2)
        # With a handful of cases there are still enough segments; force the
        # failure path by requesting absurd folds.
        impossible = dataclasses.replace(tiny, folds=10_000)
        with pytest.raises((EvaluationError, Exception)):
            run_accuracy_comparison("sed", CallKind.SYSCALL, impossible)


class TestClusteringRunner:
    def test_unmeasured_rows(self):
        rows = run_clustering_reduction(("vim",), FAST_CONFIG, measure=False)
        row = rows[0]
        assert row.measured_time_reduction is None
        assert 0 < row.n_states_after < row.n_distinct_calls
        assert 0 < row.estimated_time_reduction < 1

    def test_ratio_controls_states(self):
        half = run_clustering_reduction(
            ("vim",), FAST_CONFIG, ratio=1 / 2, measure=False
        )[0]
        third = run_clustering_reduction(
            ("vim",), FAST_CONFIG, ratio=1 / 3, measure=False
        )[0]
        assert third.n_states_after < half.n_states_after


class TestExploitRunner:
    @pytest.fixture(scope="class")
    def studies(self):
        return run_exploit_detection(("gzip",), FAST_CONFIG)

    def test_gzip_payload_set(self, studies):
        names = {o.spec.name for o in studies[0].outcomes}
        assert names == {"rop", "syscall_chain", "stealth_code_reuse"}

    def test_outcome_fields(self, studies):
        for outcome in studies[0].outcomes:
            assert 0.0 <= outcome.abnormal_context_fraction <= 1.0
            assert outcome.min_segment_score < 0.0

    def test_all_detected_property(self, studies):
        study = studies[0]
        assert study.all_detected == all(
            o.detected_by_cmarkov for o in study.outcomes
        )
