"""Robustness and failure-injection tests across module boundaries.

Each test feeds a component degenerate-but-reachable input — the kind a
downstream user will eventually produce — and checks the failure is loud,
typed, and contained (no wrong-but-plausible output).
"""

import numpy as np
import pytest

from repro.analysis import (
    LabelSpace,
    aggregate_program,
    build_label_space,
    summarize_function,
)
from repro.core import (
    CMarkovDetector,
    DetectorConfig,
    RegularDetector,
    cross_validate,
    detector_spec,
)
from repro.errors import (
    AnalysisError,
    EvaluationError,
    ReproError,
    TraceError,
)
from repro.hmm import TrainingConfig
from repro.program import CallKind, FunctionCFG, ProgramBuilder, load_program
from repro.tracing import SegmentSet, TraceExecutor, build_segment_set, run_workload


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            "AnalysisError",
            "EvaluationError",
            "ModelError",
            "NotFittedError",
            "ProgramStructureError",
            "TraceError",
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        import repro.errors as errors

        assert issubclass(getattr(errors, exc), ReproError)

    def test_not_fitted_is_model_error(self):
        from repro.errors import ModelError, NotFittedError

        assert issubclass(NotFittedError, ModelError)


class TestAnalysisDegenerateInputs:
    def test_label_space_rejects_internal_kind(self):
        pb = ProgramBuilder("p")
        pb.function("main").seq("helper")
        pb.function("helper").seq("read")
        program = pb.build()
        # No libcalls at all -> label space construction must refuse.
        with pytest.raises(AnalysisError, match="no libcall"):
            build_label_space(program, CallKind.LIBCALL, context=True)

    def test_summary_with_foreign_label_space(self):
        cfg = FunctionCFG("f")
        cfg.add_block(call="read")
        space = LabelSpace(
            kind=CallKind.SYSCALL, context=True, labels=("write@g",)
        )
        with pytest.raises(AnalysisError, match="missing from label space"):
            summarize_function(cfg, space)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            LabelSpace(
                kind=CallKind.SYSCALL, context=True, labels=("a", "a")
            )

    def test_single_call_program_analyzes(self):
        pb = ProgramBuilder("tiny")
        pb.function("main").call("read")
        result = aggregate_program(pb.build(), CallKind.SYSCALL, context=True)
        assert result.program_summary.entry.sum() == pytest.approx(1.0)


class TestDetectorDegenerateInputs:
    def test_training_on_single_segment(self, gzip_program):
        segments = SegmentSet(length=15)
        segments.add(("read@sys_read",) * 15)
        detector = CMarkovDetector(
            gzip_program,
            kind=CallKind.SYSCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=2), seed=0
            ),
        )
        fit = detector.fit(segments)
        assert fit.n_train_segments == 1
        assert np.isfinite(detector.score([("read@sys_read",) * 15])[0])

    def test_scoring_segment_of_all_unknowns(self, gzip_program):
        segments = SegmentSet(length=15)
        segments.add(("read@sys_read",) * 15)
        detector = CMarkovDetector(
            gzip_program,
            kind=CallKind.SYSCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=1), seed=0
            ),
        )
        detector.fit(segments)
        score = detector.score([("<alien>",) * 15])[0]
        assert np.isfinite(score)
        assert score < detector.score([("read@sys_read",) * 15])[0]

    def test_regular_detector_with_two_symbols(self):
        segments = SegmentSet(length=15)
        segments.add(("a", "b") * 7 + ("a",))
        segments.add(("b", "a") * 7 + ("b",))
        detector = RegularDetector(
            kind=CallKind.SYSCALL,
            context=False,
            config=DetectorConfig(training=TrainingConfig(max_iterations=2)),
        )
        fit = detector.fit(segments)
        assert fit.n_states >= 1

    def test_cross_validate_rejects_empty_abnormal(self, gzip_program):
        workload = run_workload(gzip_program, n_cases=5, seed=0)
        segments = build_segment_set(workload.traces, CallKind.SYSCALL, True)
        factory = detector_spec("stilo", gzip_program, CallKind.SYSCALL)
        with pytest.raises(EvaluationError):
            cross_validate(factory, segments, [], k=2)


class TestExecutorDegenerateInputs:
    def test_program_with_no_observable_calls(self):
        pb = ProgramBuilder("silent")
        pb.function("main").seq("helper")
        pb.function("helper").branch([], empty_arm=True)
        executor = TraceExecutor(pb.build())
        result = executor.run("case", seed=0)
        assert len(result.trace) == 0

    def test_immediate_return_program(self):
        pb = ProgramBuilder("empty")
        pb.function("main").branch(empty_arm=True)
        result = TraceExecutor(pb.build()).run("case", seed=0)
        assert result.steps > 0
        assert len(result.trace) == 0

    def test_zero_case_workload(self, gzip_program):
        workload = run_workload(gzip_program, n_cases=0 + 1, seed=0)
        assert len(workload.traces) == 1


class TestScaleSanity:
    def test_double_scale_corpus_still_valid(self):
        program = load_program("gzip", scale=2.0)
        program.validate()
        # Scaling preserves the structural properties the results rely on.
        ctx = len(program.distinct_calls(CallKind.LIBCALL, context=True))
        bare = len(program.distinct_calls(CallKind.LIBCALL, context=False))
        assert ctx >= 3 * bare

    def test_scaled_analysis_completes(self):
        program = load_program("sed", scale=1.5)
        result = aggregate_program(program, CallKind.SYSCALL, context=True)
        result.program_summary.validate()
