"""Unit tests for the telemetry layer: registry, spans, profiler hooks,
module-level switch, snapshot export, and executor merge-back parity."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.core import DetectorConfig
from repro.core.crossval import cross_validate
from repro.core.registry import detector_spec
from repro.hmm import TrainingConfig
from repro.program import CallKind
from repro.runtime import ParallelExecutor
from repro.telemetry import (
    CollectingProfiler,
    Histogram,
    MetricsRegistry,
    SlowSpanProfiler,
)
from repro.tracing import build_segment_set, run_workload


@pytest.fixture(autouse=True)
def _telemetry_off_before_and_after():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.get() is None

    def test_span_is_shared_noop(self):
        assert telemetry.span("a") is telemetry.span("b")
        with telemetry.span("a") as span:
            span.set_attribute("k", 1)  # must not raise

    def test_writers_are_noops(self):
        telemetry.counter_add("c")
        telemetry.gauge_set("g", 1.0)
        telemetry.observe("h", -1.0)
        telemetry.observe_many("h", [-1.0, -2.0])
        snap = telemetry.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}

    def test_add_profiler_requires_enabled(self):
        with pytest.raises(RuntimeError):
            telemetry.add_profiler(CollectingProfiler())


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(3)
        registry.gauge("g").set(-2.5)
        registry.histogram("h", (0.0, 1.0)).observe_many([-1, 0.5, 99])
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == {"value": -2.5, "updates": 1}
        assert snap["histograms"]["h"]["counts"] == [1, 1, 1]
        assert snap["histograms"]["h"]["min"] == -1
        assert snap["histograms"]["h"]["max"] == 99

    def test_counters_never_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_boundary_is_inclusive_upper(self):
        histogram = Histogram((0.0,))
        histogram.observe(0.0)
        assert histogram.counts == [1, 0]
        histogram.observe(1e-9)
        assert histogram.counts == [1, 1]

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_merge_rejects_mismatched_boundaries(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0.0, 1.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", (0.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            registry.merge(other.snapshot())

    def test_snapshot_is_json_and_pickle_safe(self):
        with telemetry.session():
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    telemetry.counter_add("c")
                    telemetry.observe("h", -3.0)
            snap = telemetry.snapshot()
        json.dumps(snap)  # JSON-safe
        assert pickle.loads(pickle.dumps(snap)) == snap
        # The registry itself crosses process boundaries too.
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(-1.0)
        restored = pickle.loads(pickle.dumps(registry))
        assert restored.snapshot() == registry.snapshot()

    def test_merge_of_empty_snapshot_is_identity(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        before = registry.snapshot()
        registry.merge(MetricsRegistry().snapshot())
        assert registry.snapshot() == before


class TestSpans:
    def test_nesting_builds_tree(self):
        with telemetry.session():
            with telemetry.span("root", stage="x"):
                with telemetry.span("child"):
                    pass
                with telemetry.span("child"):
                    pass
            trees = telemetry.get().tracer.trees()
        assert len(trees) == 1
        assert trees[0]["name"] == "root"
        assert trees[0]["attributes"] == {"stage": "x"}
        assert [c["name"] for c in trees[0]["children"]] == ["child", "child"]

    def test_aggregates_accumulate(self):
        with telemetry.session() as registry:
            for _ in range(3):
                with telemetry.span("s"):
                    pass
        aggregate = registry.snapshot()["spans"]["s"]
        assert aggregate["count"] == 3
        assert aggregate["wall_s"] >= 0
        assert aggregate["max_wall_s"] <= aggregate["wall_s"]

    def test_span_exits_on_exception(self):
        with telemetry.session():
            with pytest.raises(RuntimeError):
                with telemetry.span("outer"):
                    with telemetry.span("inner"):
                        raise RuntimeError("boom")
            assert telemetry.get().tracer.active is None
            assert len(telemetry.get().tracer.trees()) == 1

    def test_root_retention_is_bounded(self):
        with telemetry.session(max_roots=4):
            for i in range(10):
                with telemetry.span(f"s{i}"):
                    pass
            trees = telemetry.get().tracer.trees()
        assert [t["name"] for t in trees] == ["s6", "s7", "s8", "s9"]


class TestProfiler:
    def test_collecting_profiler_sees_events(self):
        with telemetry.session():
            hook = telemetry.add_profiler(CollectingProfiler())
            with telemetry.span("s"):
                telemetry.counter_add("c", 2)
                telemetry.gauge_set("g", 1.5)
                telemetry.observe("h", -1.0)
        kinds = [event[0] for event in hook.events]
        assert kinds == [
            "span_start", "metric_counter", "metric_gauge",
            "metric_histogram", "span_end",
        ]
        assert ("metric_counter", "c", 2.0) in hook.events

    def test_remove_profiler(self):
        with telemetry.session():
            hook = telemetry.add_profiler(CollectingProfiler())
            telemetry.remove_profiler(hook)
            telemetry.counter_add("c")
        assert hook.events == []

    def test_slow_span_profiler_thresholds(self):
        with telemetry.session():
            hook = telemetry.add_profiler(SlowSpanProfiler(threshold_s=0.0))
            with telemetry.span("always-slow"):
                pass
            fussy = telemetry.add_profiler(SlowSpanProfiler(threshold_s=3600.0))
            with telemetry.span("never-slow"):
                pass
        assert ("always-slow", hook.slow[0][1]) in hook.slow
        assert fussy.slow == []


class TestSessionIsolation:
    def test_session_restores_previous_state(self):
        outer = telemetry.enable()
        with telemetry.session():
            assert telemetry.get() is not outer
        assert telemetry.get() is outer

    def test_write_snapshot(self, tmp_path):
        with telemetry.session():
            telemetry.counter_add("c")
            path = telemetry.write_snapshot(tmp_path / "metrics.json")
        snap = json.loads(path.read_text())
        assert snap["counters"]["c"] == 1
        assert snap["enabled"] is True


def _comparable(snapshot: dict) -> dict:
    """The scheduling-independent projection of a snapshot.

    Excluded: wall/CPU durations and span trees (timing), the
    ``executor.jobs`` gauge (reports the actual job count, so it *should*
    differ), and histogram float sums (float addition is not associative,
    so serial one-by-one accumulation and parallel per-task merge can
    differ in the last ulp; the bucket counts and min/max cannot).
    """
    return {
        "counters": snapshot["counters"],
        "gauges": {
            name: payload
            for name, payload in snapshot["gauges"].items()
            if name != "executor.jobs"
        },
        "histograms": {
            name: {k: v for k, v in payload.items() if k != "sum"}
            for name, payload in snapshot["histograms"].items()
        },
        "span_counts": {
            name: payload["count"] for name, payload in snapshot["spans"].items()
        },
    }


class TestJobsParity:
    """--jobs 2 and --jobs 1 must produce identical merged counters (the
    PR's bugfix satellite: worker registries merge back cleanly)."""

    @pytest.fixture(scope="class")
    def cv_inputs(self, gzip_program):
        workload = run_workload(gzip_program, n_cases=30, seed=5)
        segments = build_segment_set(
            workload.traces, CallKind.SYSCALL, context=True
        )
        abnormal = segments.segments()[:20]
        factory = detector_spec(
            "stilo",
            gzip_program,
            CallKind.SYSCALL,
            config=DetectorConfig(
                training=TrainingConfig(max_iterations=3),
                max_training_segments=200,
                seed=2,
            ),
        )
        return factory, segments, abnormal

    def _run(self, cv_inputs, jobs: int) -> tuple[dict, object]:
        factory, segments, abnormal = cv_inputs
        with telemetry.session():
            result = cross_validate(
                factory,
                segments,
                abnormal,
                k=4,
                seed=0,
                executor=ParallelExecutor(jobs=jobs),
            )
            snap = telemetry.snapshot()
        return snap, result

    def test_parallel_counters_match_serial(self, cv_inputs):
        serial_snap, serial_result = self._run(cv_inputs, jobs=1)
        parallel_snap, parallel_result = self._run(cv_inputs, jobs=2)
        assert _comparable(parallel_snap) == _comparable(serial_snap)
        # Sanity: fold counters actually recorded, and scores unchanged.
        assert serial_snap["counters"]["crossval.folds"] == 4
        for fold_a, fold_b in zip(serial_result.folds, parallel_result.folds):
            assert np.array_equal(fold_a.normal_scores, fold_b.normal_scores)

    def test_worker_span_timings_travel_back(self, cv_inputs):
        parallel_snap, _ = self._run(cv_inputs, jobs=2)
        spans = parallel_snap["spans"]
        assert spans["executor.task"]["count"] == 4
        # Fold work happened in worker processes, yet its wall time made it
        # back to the coordinator through snapshot merge-back.
        assert spans["crossval.fold"]["count"] == 4
        assert spans["crossval.fold"]["wall_s"] > 0
