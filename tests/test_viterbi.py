"""Tests for Viterbi decoding and anomaly explanation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hmm import (
    HiddenMarkovModel,
    explain_segment,
    most_suspicious_positions,
    viterbi,
)


@pytest.fixture()
def deterministic_hmm() -> HiddenMarkovModel:
    """Two states that cycle deterministically, each emitting its symbol."""
    return HiddenMarkovModel(
        transition=np.array([[0.0, 1.0], [1.0, 0.0]]),
        emission=np.array([[1.0, 0.0], [0.0, 1.0]]),
        initial=np.array([1.0, 0.0]),
        symbols=("a", "b"),
        state_labels=("state-a", "state-b"),
    )


@pytest.fixture()
def noisy_hmm() -> HiddenMarkovModel:
    return HiddenMarkovModel(
        transition=np.array([[0.9, 0.1], [0.2, 0.8]]),
        emission=np.array([[0.8, 0.2], [0.3, 0.7]]),
        initial=np.array([0.7, 0.3]),
        symbols=("a", "b"),
    )


class TestViterbi:
    def test_deterministic_path_recovered(self, deterministic_hmm):
        obs = np.array([[0, 1, 0, 1]])
        path = viterbi(deterministic_hmm, obs)[0]
        assert list(path.states) == [0, 1, 0, 1]
        assert path.log_probability == pytest.approx(0.0, abs=1e-9)

    def test_impossible_sequence_has_floor_probability(self, deterministic_hmm):
        obs = np.array([[0, 0]])  # state 0 cannot follow itself
        path = viterbi(deterministic_hmm, obs)[0]
        assert path.log_probability < -1e20

    def test_path_probability_matches_manual(self, noisy_hmm):
        obs = np.array([[0, 1]])
        path = viterbi(noisy_hmm, obs)[0]
        # Manually enumerate all 4 paths and take the best.
        best = max(
            np.log(noisy_hmm.initial[s0])
            + np.log(noisy_hmm.emission[s0, 0])
            + np.log(noisy_hmm.transition[s0, s1])
            + np.log(noisy_hmm.emission[s1, 1])
            for s0 in range(2)
            for s1 in range(2)
        )
        assert path.log_probability == pytest.approx(best)

    def test_batch_decoding(self, noisy_hmm):
        obs = np.array([[0, 1, 0], [1, 1, 1]])
        paths = viterbi(noisy_hmm, obs)
        assert len(paths) == 2
        assert all(p.states.shape == (3,) for p in paths)

    def test_single_sequence_input(self, noisy_hmm):
        paths = viterbi(noisy_hmm, np.array([0, 1, 0]))
        assert len(paths) == 1


@pytest.fixture()
def near_deterministic_hmm() -> HiddenMarkovModel:
    """Like ``deterministic_hmm`` but with soft zeros, so Viterbi has no
    degenerate ties between impossible-transition and impossible-emission
    paths."""
    return HiddenMarkovModel(
        transition=np.array([[0.01, 0.99], [0.99, 0.01]]),
        emission=np.array([[0.99, 0.01], [0.01, 0.99]]),
        initial=np.array([0.99, 0.01]),
        symbols=("a", "b"),
        state_labels=("state-a", "state-b"),
    )


class TestExplanation:
    def test_positions_align_with_segment(self, deterministic_hmm):
        explanations = explain_segment(deterministic_hmm, ["a", "b", "a"])
        assert [e.position for e in explanations] == [0, 1, 2]
        assert [e.symbol for e in explanations] == ["a", "b", "a"]

    def test_state_labels_exposed(self, deterministic_hmm):
        explanations = explain_segment(deterministic_hmm, ["a", "b"])
        assert explanations[0].state_label == "state-a"
        assert explanations[1].state_label == "state-b"

    def test_out_of_place_symbol_has_low_local_prob(self, near_deterministic_hmm):
        # In "a a" the second 'a' is out of place: the decoded path pays
        # either a low-emission or a low-transition price there, captured by
        # the combined local cost.
        explanations = explain_segment(near_deterministic_hmm, ["a", "a"])
        assert explanations[1].local_log_prob < np.log(0.05)
        assert explanations[0].local_log_prob > np.log(0.5)

    def test_most_suspicious_ranks_bad_position_first(self, near_deterministic_hmm):
        suspicious = most_suspicious_positions(
            near_deterministic_hmm, ["a", "b", "a", "a"], top=1
        )
        assert suspicious[0].position == 3

    def test_empty_segment_raises(self, deterministic_hmm):
        with pytest.raises(ModelError):
            explain_segment(deterministic_hmm, [])


class TestExplanationOnRealModel:
    def test_wrong_context_call_is_most_suspicious(self, paper_example):
        from repro.analysis import aggregate_program
        from repro.program import CallKind
        from repro.reduction import initialize_hmm

        summary = aggregate_program(
            paper_example, CallKind.SYSCALL, context=True
        ).program_summary
        model = initialize_hmm(summary)
        attack = ["read@g", "read@f", "write@f", "execve@nonexistent"]
        suspicious = most_suspicious_positions(model, attack, top=1)
        assert suspicious[0].position == 3
        assert suspicious[0].symbol == "execve@nonexistent"
